//! `dreamcoder` — command-line driver for the DreamCoder-rs reproduction.
//!
//! ```sh
//! dreamcoder run --domain list --cycles 4 --condition full --wake-ms 700
//! dreamcoder domains
//! dreamcoder solve --domain list --task "add1 to each" --timeout-ms 3000
//! ```

use std::process::ExitCode;
use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::grammar::Grammar;
use dreamcoder::tasks::domains::list::ListDomain;
use dreamcoder::tasks::domains::logo::LogoDomain;
use dreamcoder::tasks::domains::origami::OrigamiDomain;
use dreamcoder::tasks::domains::physics::PhysicsDomain;
use dreamcoder::tasks::domains::regex::RegexDomain;
use dreamcoder::tasks::domains::symreg::SymRegDomain;
use dreamcoder::tasks::domains::text::TextDomain;
use dreamcoder::tasks::domains::tower::TowerDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{
    latest_checkpoint, search_task, Checkpoint, Condition, DreamCoder, DreamCoderConfig, Guide,
    RecognitionConfig,
};
use std::sync::Arc;

const DOMAINS: &[&str] = &[
    "list", "text", "logo", "tower", "regex", "symreg", "physics", "origami",
];

fn make_domain(name: &str, seed: u64) -> Option<Box<dyn Domain>> {
    Some(match name {
        "list" => Box::new(ListDomain::new(seed)),
        "text" => Box::new(TextDomain::new(seed)),
        "logo" => Box::new(LogoDomain::new(seed)),
        "tower" => Box::new(TowerDomain::new(seed)),
        "regex" => Box::new(RegexDomain::new(seed)),
        "symreg" => Box::new(SymRegDomain::new(seed)),
        "physics" => Box::new(PhysicsDomain::new(seed)),
        "origami" => Box::new(OrigamiDomain::new(seed)),
        _ => return None,
    })
}

fn parse_condition(name: &str) -> Option<Condition> {
    Some(match name {
        "full" => Condition::Full,
        "no-recognition" | "no-rec" => Condition::NoRecognition,
        "no-compression" | "no-lib" => Condition::NoCompression,
        "memorize" => Condition::Memorize {
            with_recognition: false,
        },
        "memorize-rec" => Condition::Memorize {
            with_recognition: true,
        },
        "ec" => Condition::Ec,
        "ec2" => Condition::Ec2,
        "enumeration" => Condition::EnumerationOnly,
        "neural" => Condition::NeuralOnly,
        _ => return None,
    })
}

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<String> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .cloned()
    }
    fn flag_u64(&self, name: &str, default: u64) -> u64 {
        self.flag(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
    fn flag_f64(&self, name: &str, default: f64) -> f64 {
        self.flag(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
    /// Boolean flag: present or not, takes no value.
    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n\
         dreamcoder run --domain <name> [--cycles N] [--condition full|no-rec|no-lib|memorize|ec|ec2|enumeration|neural]\n\
         \x20              [--wake-ms MS] [--test-ms MS] [--minibatch N] [--seed N] [--events FILE] [--threads N]\n\
         \x20              [--checkpoint-dir DIR] [--checkpoint-keep N] [--resume] [--summary-out FILE]\n\
         \x20              [--deterministic] [--wake-nats B] [--test-nats B]\n\
         \x20              [--map-fantasies] [--fantasy-nats B]\n\
         \x20              [--status-addr HOST:PORT] [--trace-out FILE] [--log-level debug|info|warn]\n\
         dreamcoder solve --domain <name> --task <task name> [--timeout-ms MS]\n\
         dreamcoder domains\n\
         \n\
         worker threads default to the machine's parallelism; cap them with\n\
         --threads N or the DC_THREADS env var (--threads wins).\n\
         \n\
         --checkpoint-dir writes a crash-safe checkpoint after every cycle;\n\
         --resume restarts from the newest one. --deterministic replaces the\n\
         wall-clock enumeration budgets with nats budgets (--wake-nats,\n\
         --test-nats) and zeroes timing metrics, making a seeded run byte-\n\
         reproducible (DESIGN.md \u{a7}8). --map-fantasies trains dreams on\n\
         each dreamed task's MAP program (Appendix Alg. 3); combined with\n\
         --deterministic that search is bounded by --fantasy-nats B.\n\
         \n\
         --status-addr serves live run introspection over HTTP while the\n\
         run is in flight: GET /metrics (Prometheus text), /status (JSON),\n\
         /healthz. --trace-out additionally records every span as a Chrome\n\
         trace-event file loadable in Perfetto / chrome://tracing.\n\
         --log-level (or the DC_LOG env var; the flag wins) sets the\n\
         minimum severity written to the --events JSONL file."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        return usage();
    };
    let args = Args(argv);
    match cmd.as_str() {
        "domains" => {
            println!("available domains:");
            for name in DOMAINS {
                let d = make_domain(name, 0).expect("known");
                println!(
                    "  {name:<8} {:>3} train / {:>2} test tasks, {} primitives",
                    d.train_tasks().len(),
                    d.test_tasks().len(),
                    d.primitives().len()
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(domain_name) = args.flag("--domain") else {
                return usage();
            };
            if let Some(threads) = args.flag("--threads") {
                match threads.parse::<usize>() {
                    Ok(n) if n > 0 => rayon::set_max_threads(Some(n)),
                    _ => {
                        eprintln!("--threads must be a positive integer, got {threads:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let Some(domain) = make_domain(&domain_name, args.flag_u64("--seed", 0)) else {
                eprintln!("unknown domain {domain_name:?}; try `dreamcoder domains`");
                return ExitCode::FAILURE;
            };
            let condition = match args.flag("--condition") {
                None => Condition::Full,
                Some(c) => match parse_condition(&c) {
                    Some(c) => c,
                    None => {
                        eprintln!("unknown condition {c:?}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let deterministic = args.has("--deterministic");
            let (enumeration, test_enumeration) = if deterministic {
                // Nats budgets instead of wall clock: seeded runs become
                // byte-reproducible (DESIGN.md §8).
                (
                    EnumerationConfig {
                        timeout: None,
                        max_budget: args.flag_f64("--wake-nats", 11.0),
                        ..EnumerationConfig::default()
                    },
                    EnumerationConfig {
                        timeout: None,
                        max_budget: args.flag_f64("--test-nats", 9.0),
                        ..EnumerationConfig::default()
                    },
                )
            } else {
                (
                    EnumerationConfig {
                        timeout: Some(Duration::from_millis(args.flag_u64("--wake-ms", 700))),
                        ..EnumerationConfig::default()
                    },
                    EnumerationConfig {
                        timeout: Some(Duration::from_millis(args.flag_u64("--test-ms", 300))),
                        ..EnumerationConfig::default()
                    },
                )
            };
            let checkpoint_dir = args.flag("--checkpoint-dir").map(std::path::PathBuf::from);
            let recognition = RecognitionConfig {
                map_fantasies: args.has("--map-fantasies"),
                // Under --deterministic the MAP-fantasy enumeration is
                // bounded by nats, not wall clock (DESIGN.md §9).
                map_fantasy_budget: if deterministic {
                    Some(args.flag_f64("--fantasy-nats", 6.5))
                } else {
                    None
                },
                ..RecognitionConfig::default()
            };
            let config = DreamCoderConfig {
                condition,
                cycles: args.flag_u64("--cycles", 3) as usize,
                minibatch: args.flag_u64("--minibatch", 12) as usize,
                enumeration,
                test_enumeration,
                recognition,
                seed: args.flag_u64("--seed", 0),
                checkpoint_dir: checkpoint_dir.clone(),
                checkpoint_keep: args.flag_u64("--checkpoint-keep", 3) as usize,
                deterministic_timing: deterministic,
                ..DreamCoderConfig::default()
            };
            // Metrics are on for every run; `--events FILE` additionally
            // streams structured JSONL events to FILE at the severity
            // chosen by --log-level / DC_LOG (flag beats env beats info).
            dreamcoder::telemetry::enable();
            let log_level = dreamcoder::telemetry::resolve_level(
                args.flag("--log-level").as_deref(),
                std::env::var("DC_LOG").ok().as_deref(),
            );
            if let Some(events) = args.flag("--events") {
                if let Err(e) =
                    dreamcoder::telemetry::set_event_file(std::path::Path::new(&events), log_level)
                {
                    eprintln!("cannot open event log {events:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let telemetry_path = std::path::PathBuf::from("results/telemetry.json");
            let trace_out = args.flag("--trace-out").map(std::path::PathBuf::from);
            if trace_out.is_some() {
                dreamcoder::telemetry::enable_trace_collection();
            }
            // Ctrl-C finishes the current phase, then the run loop exits
            // cleanly (checkpoints, telemetry and the summary still land);
            // a panic anywhere still flushes events and profiles.
            dreamcoder::telemetry::install_sigint_handler();
            dreamcoder::telemetry::install_abort_flush(
                Some(telemetry_path.clone()),
                trace_out.clone(),
            );
            let status_server = match args.flag("--status-addr") {
                None => None,
                Some(addr) => match dreamcoder::telemetry::start_status_server(&addr) {
                    Ok(server) => {
                        eprintln!("[status server listening on {}]", server.addr());
                        Some(server)
                    }
                    Err(e) => {
                        eprintln!("cannot bind status server on {addr:?}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let mut dc = if args.has("--resume") {
                let Some(dir) = checkpoint_dir.as_deref() else {
                    eprintln!("--resume requires --checkpoint-dir");
                    return ExitCode::FAILURE;
                };
                match latest_checkpoint(dir) {
                    Err(e) => {
                        eprintln!("cannot scan checkpoint dir {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                    // Nothing to resume yet: start fresh (so the same
                    // command line works for the first and every later
                    // launch of a long run).
                    Ok(None) => {
                        eprintln!("no checkpoint in {}; starting a fresh run", dir.display());
                        DreamCoder::new(domain.as_ref(), config)
                    }
                    Ok(Some(path)) => {
                        let ckpt = match Checkpoint::read(&path) {
                            Ok(c) => c,
                            Err(e) => {
                                eprintln!("cannot read checkpoint {}: {e}", path.display());
                                return ExitCode::FAILURE;
                            }
                        };
                        eprintln!(
                            "resuming from {} (after cycle {})",
                            path.display(),
                            ckpt.cycles_completed
                        );
                        match DreamCoder::resume(domain.as_ref(), config, &ckpt) {
                            Ok(dc) => dc,
                            Err(e) => {
                                eprintln!("cannot resume: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
            } else {
                DreamCoder::new(domain.as_ref(), config)
            };
            let summary = dc.run();
            if let Some(out) = args.flag("--summary-out") {
                let json = match serde_json::to_string(&summary) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("cannot serialize summary: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = std::fs::write(&out, json) {
                    eprintln!("cannot write summary to {out:?}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[summary written to {out}]");
            }
            match dreamcoder::telemetry::export_to_file(&telemetry_path) {
                Ok(()) => println!("[telemetry written to {}]", telemetry_path.display()),
                Err(e) => eprintln!("could not write telemetry: {e}"),
            }
            if let Some(trace) = &trace_out {
                match dreamcoder::telemetry::export_chrome_trace(trace) {
                    Ok(()) => println!("[trace written to {}]", trace.display()),
                    Err(e) => eprintln!("could not write trace: {e}"),
                }
            }
            if let Some(server) = status_server {
                server.shutdown();
            }
            dreamcoder::telemetry::clear_event_sink();
            println!(
                "{} on {}: final held-out accuracy {:.1}%",
                summary.condition,
                summary.domain,
                100.0 * summary.final_test_solved
            );
            for c in &summary.cycles {
                println!(
                    "  cycle {}: train {} test {:.1}% |D|={} depth={}",
                    c.cycle,
                    c.train_solved,
                    100.0 * c.test_solved,
                    c.library_size,
                    c.library_depth
                );
                for inv in &c.new_inventions {
                    println!("    invented {inv}");
                }
            }
            if dreamcoder::telemetry::interrupt_requested() {
                // Conventional 128 + SIGINT so wrappers can tell a clean
                // early stop from a normal completion.
                eprintln!("[run interrupted; partial results written]");
                return ExitCode::from(130);
            }
            ExitCode::SUCCESS
        }
        "solve" => {
            let Some(domain_name) = args.flag("--domain") else {
                return usage();
            };
            let Some(task_name) = args.flag("--task") else {
                return usage();
            };
            let Some(domain) = make_domain(&domain_name, 0) else {
                eprintln!("unknown domain {domain_name:?}");
                return ExitCode::FAILURE;
            };
            let Some(task) = domain
                .train_tasks()
                .iter()
                .chain(domain.test_tasks())
                .find(|t| t.name == task_name)
            else {
                eprintln!("no task named {task_name:?}; available:");
                for t in domain.train_tasks().iter().chain(domain.test_tasks()) {
                    eprintln!("  {:?}", t.name);
                }
                return ExitCode::FAILURE;
            };
            let grammar = Grammar::uniform(Arc::clone(&domain.initial_library()));
            let config = EnumerationConfig {
                timeout: Some(Duration::from_millis(args.flag_u64("--timeout-ms", 5000))),
                ..EnumerationConfig::default()
            };
            let result = search_task(
                task,
                &Guide::Generative(grammar.clone()),
                &grammar,
                5,
                &config,
            );
            match result.frontier.best() {
                Some(best) => {
                    println!(
                        "solved {:?} in {:.2}s after {} programs:\n  {}",
                        task.name,
                        result.solve_time.unwrap_or_default(),
                        result.programs_enumerated,
                        best.expr
                    );
                    ExitCode::SUCCESS
                }
                None => {
                    println!(
                        "not solved within budget ({} programs tried)",
                        result.programs_enumerated
                    );
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
