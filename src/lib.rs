//! # DreamCoder-rs
//!
//! A from-scratch Rust reproduction of **DreamCoder: Bootstrapping
//! Inductive Program Synthesis with Wake-Sleep Library Learning**
//! (Ellis et al., PLDI 2021).
//!
//! DreamCoder inputs a corpus of synthesis problems, each specified by a
//! few examples, and jointly learns
//!
//! 1. a **library** of reusable program components (via version-space
//!    refactoring and MDL compression — "abstraction sleep", [`vspace`]);
//! 2. a **neural search policy** mapping tasks to bigram transition
//!    tensors over that library ("dream sleep", [`recognition`]);
//!
//! which bootstrap each other through the wake/sleep loop in
//! [`wakesleep`].
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`lambda`] | typed λ-calculus: terms, Hindley–Milner types, fuel-limited evaluation |
//! | [`grammar`] | probabilistic grammars `P[ρ\|D,θ]`, best-first enumeration, sampling |
//! | [`vspace`] | version spaces, inverse β-reduction, library compression |
//! | [`recognition`] | the MLP recognition model emitting `Q_ijk` tensors |
//! | [`tasks`] | the eight evaluation domains + their simulator substrates |
//! | [`wakesleep`] | the wake/sleep driver, baselines, and metrics |
//! | [`telemetry`] | counters, gauges, timing histograms, JSONL events |
//!
//! ## Quickstart
//!
//! ```no_run
//! use dreamcoder::tasks::domains::list::ListDomain;
//! use dreamcoder::wakesleep::{DreamCoder, DreamCoderConfig};
//!
//! let domain = ListDomain::new(0);
//! let mut dc = DreamCoder::new(&domain, DreamCoderConfig::default());
//! let summary = dc.run();
//! for invention in &summary.library {
//!     println!("learned {invention}");
//! }
//! ```

#![warn(missing_docs)]

pub use dc_grammar as grammar;
pub use dc_lambda as lambda;
pub use dc_recognition as recognition;
pub use dc_tasks as tasks;
pub use dc_telemetry as telemetry;
pub use dc_vspace as vspace;
pub use dc_wakesleep as wakesleep;
