//! End-to-end integration: a miniature DreamCoder run on the list domain,
//! exercising wake search, abstraction sleep, dream sleep, and held-out
//! evaluation together.

use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::tasks::domains::list::ListDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{Condition, DreamCoder, DreamCoderConfig};

fn tiny_config(condition: Condition, seed: u64) -> DreamCoderConfig {
    DreamCoderConfig {
        condition,
        cycles: 2,
        minibatch: 8,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(400)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(200)),
            ..EnumerationConfig::default()
        },
        compression: dreamcoder::vspace::CompressionConfig {
            refactor_steps: 1,
            top_candidates: 15,
            max_inventions: 2,
            ..dreamcoder::vspace::CompressionConfig::default()
        },
        recognition: dreamcoder::wakesleep::RecognitionConfig {
            fantasies: 5,
            epochs: 2,
            ..dreamcoder::wakesleep::RecognitionConfig::default()
        },
        seed,
        ..DreamCoderConfig::default()
    }
}

#[test]
fn full_condition_solves_and_stays_semantically_sound() {
    let domain = ListDomain::new(0);
    let mut dc = DreamCoder::new(&domain, tiny_config(Condition::Full, 1));
    let summary = dc.run();
    let last = summary.cycles.last().unwrap();
    assert!(last.train_solved >= 2, "solved only {}", last.train_solved);

    // Every stored frontier member must still solve its task — through
    // compression rewrites and re-scoring.
    for (idx, frontier) in &dc.frontiers {
        let task = &domain.train_tasks()[*idx];
        for entry in &frontier.entries {
            assert!(
                task.check(&entry.expr),
                "frontier entry {} no longer solves {:?}",
                entry.expr,
                task.name
            );
        }
    }
}

#[test]
fn conditions_report_consistent_metrics() {
    let domain = ListDomain::new(0);
    for condition in [Condition::EnumerationOnly, Condition::NoCompression] {
        let mut dc = DreamCoder::new(&domain, tiny_config(condition, 2));
        let summary = dc.run();
        assert_eq!(summary.condition, condition.label());
        assert_eq!(summary.domain, "list");
        for c in &summary.cycles {
            assert!(c.test_solved >= 0.0 && c.test_solved <= 1.0);
            assert!(c.library_size >= domain.initial_library().len());
        }
    }
}

#[test]
fn summary_serializes_to_json() {
    let domain = ListDomain::new(0);
    let mut dc = DreamCoder::new(&domain, tiny_config(Condition::EnumerationOnly, 3));
    let summary = dc.run();
    let json = serde_json::to_string(&summary).expect("serializable");
    assert!(json.contains("\"condition\""));
    assert!(json.contains("\"cycles\""));
}
