//! Cross-domain integration checks: every domain exposes a coherent
//! (primitives, tasks, featurizer, dream) bundle that the wake/sleep
//! machinery can drive — enumeration produces well-typed candidates for
//! each domain's request types, oracles accept ground truth, and dreams
//! round-trip.

use std::sync::Arc;
use std::time::Duration;

use dreamcoder::grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dreamcoder::grammar::Grammar;
use dreamcoder::tasks::domains::{
    list::ListDomain, logo::LogoDomain, origami::OrigamiDomain, physics::PhysicsDomain,
    regex::RegexDomain, symreg::SymRegDomain, text::TextDomain, tower::TowerDomain,
};
use dreamcoder::tasks::Domain;
use rand::SeedableRng;

fn all_domains() -> Vec<Box<dyn Domain>> {
    vec![
        Box::new(ListDomain::new(0)),
        Box::new(TextDomain::new(0)),
        Box::new(LogoDomain::new(0)),
        Box::new(TowerDomain::new(0)),
        Box::new(RegexDomain::new(0)),
        Box::new(SymRegDomain::new(0)),
        Box::new(PhysicsDomain::new(0)),
        Box::new(OrigamiDomain::new(0)),
    ]
}

#[test]
fn every_domain_has_coherent_tasks_and_features() {
    for domain in all_domains() {
        let total = domain.train_tasks().len() + domain.test_tasks().len();
        assert!(total >= 10, "{} has only {total} tasks", domain.name());
        for task in domain.train_tasks().iter().chain(domain.test_tasks()) {
            assert_eq!(
                task.features.len(),
                domain.feature_dim(),
                "{}/{} feature dim mismatch",
                domain.name(),
                task.name
            );
            assert!(
                task.features.iter().all(|f| f.is_finite()),
                "{}/{} has non-finite features",
                domain.name(),
                task.name
            );
        }
        assert!(!domain.dream_requests().is_empty());
    }
}

#[test]
fn enumeration_typechecks_on_every_domain_request() {
    for domain in all_domains() {
        let grammar = Grammar::uniform(Arc::clone(&domain.initial_library()));
        for request in domain.dream_requests() {
            let cfg = EnumerationConfig {
                timeout: Some(Duration::from_millis(150)),
                ..EnumerationConfig::default()
            };
            let mut n = 0;
            enumerate_programs(&grammar, &request, &cfg, &mut |e, _| {
                n += 1;
                assert!(
                    e.infer().is_ok(),
                    "{}: enumerated ill-typed {} at {}",
                    domain.name(),
                    e,
                    request
                );
                n < 50
            });
            assert!(
                n > 0,
                "{}: nothing enumerable at request {}",
                domain.name(),
                request
            );
        }
    }
}

#[test]
fn dreams_round_trip_on_every_domain() {
    // For each domain, sample programs from the base grammar until one
    // dreams successfully, then check that the dreamed task accepts its
    // own generating program.
    for domain in all_domains() {
        let grammar = Grammar::uniform(Arc::clone(&domain.initial_library()));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let mut ok = false;
        'outer: for request in domain.dream_requests() {
            for _ in 0..200 {
                let Some(p) = dreamcoder::grammar::sample_program_with_retries(
                    &grammar, &request, &mut rng, 8, 5,
                ) else {
                    continue;
                };
                if let Some(task) = domain.dream(&p, &request, &mut rng) {
                    assert!(
                        task.check(&p),
                        "{}: dreamed task rejects its own program {}",
                        domain.name(),
                        p
                    );
                    ok = true;
                    break 'outer;
                }
            }
        }
        assert!(ok, "{}: no dream could be generated", domain.name());
    }
}

#[test]
fn oracles_reject_trivially_wrong_programs() {
    // A program of the right type that does nothing interesting must not
    // be accepted by nontrivial tasks.
    let list = ListDomain::new(0);
    let prims = list.primitives();
    let identity = dreamcoder::lambda::Expr::parse("(lambda $0)", prims).unwrap();
    let mut rejections = 0;
    for task in list.train_tasks() {
        if task.request.to_string() == "list(int) -> list(int)"
            && task.name != "identity"
            && !task.check(&identity)
        {
            rejections += 1;
        }
    }
    assert!(rejections > 10, "identity fooled too many list tasks");
}
