//! Integration: the recognition model actually guides search — after
//! training on replays, the predicted bigram tensor ranks the true
//! program higher than an untrained/uniform model does.

use std::sync::Arc;
use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::grammar::{Grammar, Library};
use dreamcoder::lambda::primitives::base_primitives;
use dreamcoder::lambda::Expr;
use dreamcoder::recognition::{Objective, Parameterization, RecognitionModel, TrainingExample};
use dreamcoder::tasks::domains::list::ListDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{search_task, Guide};
use rand::SeedableRng;

#[test]
fn trained_recognition_prefers_the_right_programs_per_task() {
    let domain = ListDomain::new(0);
    let lib = domain.initial_library();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
    let mut model = RecognitionModel::new(
        Arc::clone(&lib),
        domain.feature_dim(),
        32,
        Parameterization::Bigram,
        Objective::Map,
        0.01,
        &mut rng,
    );
    let prims = base_primitives();
    // Two distinguishable task families with known solutions.
    let add1 = Expr::parse("(lambda (map (lambda (+ $0 1)) $0))", &prims).unwrap();
    let tail = Expr::parse("(lambda (cdr $0))", &prims).unwrap();
    let t_add = domain
        .train_tasks()
        .iter()
        .find(|t| t.name == "add1 to each")
        .unwrap();
    let t_tail = domain
        .train_tasks()
        .iter()
        .chain(domain.test_tasks())
        .find(|t| t.name == "tail")
        .unwrap();
    let examples = vec![
        TrainingExample {
            features: t_add.features.clone(),
            request: t_add.request.clone(),
            programs: vec![(add1.clone(), 1.0)],
        },
        TrainingExample {
            features: t_tail.features.clone(),
            request: t_tail.request.clone(),
            programs: vec![(tail.clone(), 1.0)],
        },
    ];
    model.train(&examples, 200, &mut rng);
    let q_add = model.predict(&t_add.features);
    let q_tail = model.predict(&t_tail.features);
    // Conditioned on the add-task features, the add program must beat the
    // prior it gets under the tail-task features, and vice versa.
    assert!(
        q_add.log_prior(&t_add.request, &add1) > q_tail.log_prior(&t_add.request, &add1),
        "recognition failed to condition on task features"
    );
    assert!(q_tail.log_prior(&t_tail.request, &tail) > q_add.log_prior(&t_tail.request, &tail));
}

#[test]
fn guided_search_still_solves_tasks() {
    // A sanity end-to-end path: predict → enumerate under the tensor →
    // verify the solution against the oracle.
    let domain = ListDomain::new(0);
    let lib = domain.initial_library();
    let scorer = Grammar::uniform(Arc::clone(&lib));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let model = RecognitionModel::new(
        Arc::clone(&lib),
        domain.feature_dim(),
        16,
        Parameterization::Bigram,
        Objective::Map,
        0.01,
        &mut rng,
    );
    let task = domain
        .train_tasks()
        .iter()
        .chain(domain.test_tasks())
        .find(|t| t.name == "head")
        .unwrap();
    let config = EnumerationConfig {
        timeout: Some(Duration::from_secs(3)),
        ..EnumerationConfig::default()
    };
    let result = search_task(
        task,
        &Guide::Recognition(model.predict(&task.features)),
        &scorer,
        5,
        &config,
    );
    if let Some(best) = result.frontier.best() {
        assert!(task.check(&best.expr));
        // Frontier priors are scored under the *generative* model, not Q.
        assert!((best.log_prior - scorer.log_prior(&task.request, &best.expr)).abs() < 1e-9);
    }
}

#[test]
fn unigram_and_bigram_heads_share_the_library() {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    for param in [Parameterization::Unigram, Parameterization::Bigram] {
        let model = RecognitionModel::new(
            Arc::clone(&lib),
            8,
            8,
            param,
            Objective::Posterior,
            0.01,
            &mut rng,
        );
        let cg = model.predict(&[0.0; 8]);
        assert_eq!(cg.library.len(), lib.len());
    }
}

#[test]
fn untrained_residual_model_matches_generative_prior() {
    // With the prior bias installed, an untrained network's predicted
    // tensor stays close to the fitted generative grammar — the property
    // that makes brief recognition training safe at small budgets.
    let domain = ListDomain::new(0);
    let lib = domain.initial_library();
    let mut grammar = Grammar::uniform(Arc::clone(&lib));
    // Non-uniform weights so the test is not vacuous.
    grammar.weights.log_variable = 0.8;
    for (i, w) in grammar.weights.log_productions.iter_mut().enumerate() {
        *w = (i as f64 * 0.37).sin();
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let mut model = RecognitionModel::new(
        Arc::clone(&lib),
        domain.feature_dim(),
        32,
        Parameterization::Bigram,
        Objective::Map,
        0.01,
        &mut rng,
    );
    model.set_prior_bias(Some(grammar.weights.clone()));
    let prims = base_primitives();
    let q = model.predict(&domain.train_tasks()[0].features);
    for src in [
        "(lambda (map (lambda (+ $0 1)) $0))",
        "(lambda (cons 0 $0))",
        "(lambda (cdr $0))",
    ] {
        let e = Expr::parse(src, &prims).unwrap();
        let t = dreamcoder::lambda::types::Type::arrow(
            dreamcoder::lambda::types::tlist(dreamcoder::lambda::types::tint()),
            dreamcoder::lambda::types::tlist(dreamcoder::lambda::types::tint()),
        );
        let gp = grammar.log_prior(&t, &e);
        let qp = q.log_prior(&t, &e);
        if gp.is_finite() && qp.is_finite() {
            assert!(
                (gp - qp).abs() < 1.5,
                "untrained residual drifted: {gp} vs {qp} for {src}"
            );
        }
    }
}
