//! End-to-end smoke test: one tiny wake-sleep run on the list domain must
//! produce a well-formed `telemetry.json` containing the headline metrics
//! (programs enumerated, evaluations run, compression candidates, and the
//! per-cycle phase breakdown). CI runs this as its smoke gate.

use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::tasks::domains::list::ListDomain;
use dreamcoder::wakesleep::{Condition, DreamCoder, DreamCoderConfig};

#[test]
fn tiny_run_produces_well_formed_telemetry_json() {
    // Version-space refactoring recurses deeply enough to overflow the
    // default test-thread stack in unoptimized builds.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(run_and_check)
        .expect("spawn test thread")
        .join()
        .expect("smoke run panicked");
}

fn run_and_check() {
    dreamcoder::telemetry::enable();
    let config = DreamCoderConfig {
        condition: Condition::NoRecognition,
        cycles: 2,
        minibatch: 6,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(300)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(150)),
            ..EnumerationConfig::default()
        },
        compression: dreamcoder::vspace::CompressionConfig {
            refactor_steps: 1,
            top_candidates: 20,
            max_inventions: 2,
            ..dreamcoder::vspace::CompressionConfig::default()
        },
        seed: 1,
        ..DreamCoderConfig::default()
    };
    let domain = ListDomain::new(0);
    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();
    assert_eq!(summary.cycles.len(), 2);

    let path = std::env::temp_dir().join(format!("telemetry_smoke_{}.json", std::process::id()));
    dreamcoder::telemetry::export_to_file(&path).expect("telemetry export succeeds");
    let raw = std::fs::read_to_string(&path).expect("telemetry.json readable");
    let _ = std::fs::remove_file(&path);
    dreamcoder::telemetry::disable();

    let json: serde_json::Value = serde_json::from_str(&raw).expect("telemetry.json parses");
    let counters = &json["counters"];
    assert!(
        counters["enumeration.programs"].as_u64().unwrap_or(0) > 0,
        "wake search must enumerate programs: {raw}"
    );
    assert!(
        counters["enumeration.budget_windows"].as_u64().unwrap_or(0) > 0,
        "enumeration must open budget windows"
    );
    assert!(
        counters["eval.runs"].as_u64().unwrap_or(0) > 0,
        "checking candidate programs must run the evaluator"
    );
    assert!(
        counters["compression.candidates_proposed"]
            .as_u64()
            .is_some(),
        "abstraction sleep must report its candidate count: {raw}"
    );
    // Per-cycle phase breakdown: every phase histogram saw both cycles.
    let histograms = &json["histograms"];
    for phase in [
        "cycle.total",
        "cycle.wake",
        "cycle.compression",
        "cycle.eval",
    ] {
        assert_eq!(
            histograms[phase]["count"].as_u64(),
            Some(2),
            "phase {phase} must record one sample per cycle: {raw}"
        );
        assert!(
            histograms[phase]["total_ms"].as_f64().unwrap_or(-1.0) >= 0.0,
            "phase {phase} must report milliseconds"
        );
    }
}
