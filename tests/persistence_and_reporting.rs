//! Integration: a learned grammar survives a save/load round trip, and
//! the reporting helpers render run summaries.

use std::sync::Arc;
use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::grammar::{load_grammar, save_grammar, Grammar};
use dreamcoder::lambda::{pretty, Expr, Invented};
use dreamcoder::tasks::domains::list::ListDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{
    comparison_table, learning_curve, Condition, DreamCoder, DreamCoderConfig,
};

#[test]
fn learned_grammar_round_trips_with_inventions() {
    let domain = ListDomain::new(0);
    let prims = domain.primitives();
    // Build a grammar with a hand-made invention (as compression would).
    let mut lib = (*domain.initial_library()).clone();
    let body = Expr::parse("(lambda (map (lambda (+ $0 1)) $0))", prims).unwrap();
    let inv = Invented::new(&format!("#{body}"), body).unwrap();
    lib.push_invented(inv);
    let mut grammar = Grammar::uniform(Arc::new(lib));
    grammar.weights.log_productions[0] = 0.7;

    let saved = save_grammar(&grammar);
    let json = serde_json::to_string_pretty(&saved).unwrap();
    let reparsed: dreamcoder::grammar::SavedGrammar = serde_json::from_str(&json).unwrap();
    let loaded = load_grammar(&reparsed, prims).unwrap();

    // Identical priors over a spread of programs/requests.
    use dreamcoder::lambda::types::{tint, tlist, Type};
    let t = Type::arrow(tlist(tint()), tlist(tint()));
    for src in [
        "(lambda (map (lambda (+ $0 1)) $0))",
        "(lambda (cons 0 $0))",
        "(lambda $0)",
    ] {
        let e = Expr::parse(src, prims).unwrap();
        let a = grammar.log_prior(&t, &e);
        let b = loaded.log_prior(&t, &e);
        assert!(
            (a - b).abs() < 1e-12 || (a.is_infinite() && b.is_infinite()),
            "prior mismatch for {src}: {a} vs {b}"
        );
    }
}

#[test]
fn pretty_printer_names_learned_solutions() {
    let prims = ListDomain::new(0).primitives().clone();
    let e = Expr::parse("(lambda (fold $0 0 (lambda (lambda (+ $0 $1)))))", &prims).unwrap();
    let s = pretty(&e);
    assert_eq!(s, "(λ (a) (fold a 0 (λ (b c) (+ c b))))");
}

#[test]
fn reporting_helpers_render_real_runs() {
    let domain = ListDomain::new(0);
    let config = DreamCoderConfig {
        condition: Condition::EnumerationOnly,
        cycles: 2,
        minibatch: 4,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(150)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(80)),
            ..EnumerationConfig::default()
        },
        seed: 5,
        ..DreamCoderConfig::default()
    };
    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();
    let curve = learning_curve(&summary);
    assert!(curve.contains("Enumeration"));
    let table = comparison_table(std::slice::from_ref(&summary));
    assert!(table.contains("condition"));
    assert!(table.contains("cycle 1"));
}
