//! Property tests for the domain substrates: the tower stage's stacking
//! physics, the LOGO rasterizer, and the probabilistic regex scorer.

use dreamcoder::tasks::domains::logo::{rasterize, Segment, CANVAS};
use dreamcoder::tasks::domains::regex::Regex;
use dreamcoder::tasks::domains::tower::TowerState;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every dropped block rests on the ground or on a supporting block
    /// whose top is exactly at its bottom.
    #[test]
    fn tower_blocks_are_always_supported(
        moves in prop::collection::vec((0i64..8, any::<bool>()), 1..20)
    ) {
        let mut stage = TowerState::new();
        for (dx, horizontal) in moves {
            stage.hand = dx;
            stage.drop_block(horizontal).unwrap();
        }
        for (i, b) in stage.blocks.iter().enumerate() {
            if b.y == 0 {
                continue;
            }
            let supported = stage.blocks.iter().take(i).any(|other| {
                let (l, r) = (b.x, b.x + b.width());
                let (ol, or) = (other.x, other.x + other.width());
                l < or && ol < r && other.y + other.height() == b.y
            });
            prop_assert!(supported, "block {i} floats at y={}", b.y);
        }
    }

    /// No two blocks occupy the same cell.
    #[test]
    fn tower_blocks_never_interpenetrate(
        moves in prop::collection::vec((0i64..8, any::<bool>()), 1..16)
    ) {
        let mut stage = TowerState::new();
        for (dx, horizontal) in moves {
            stage.hand = dx;
            stage.drop_block(horizontal).unwrap();
        }
        let mut cells = std::collections::HashSet::new();
        for b in &stage.blocks {
            for x in b.x..b.x + b.width() {
                for y in b.y..b.y + b.height() {
                    prop_assert!(
                        cells.insert((x, y)),
                        "cell ({x},{y}) occupied twice"
                    );
                }
            }
        }
    }

    /// Rasterization stays in bounds and marks both endpoints of any
    /// in-canvas segment.
    #[test]
    fn rasterizer_is_bounded_and_covers_endpoints(
        x1 in -6.0f64..6.0, y1 in -6.0f64..6.0,
        x2 in -6.0f64..6.0, y2 in -6.0f64..6.0,
    ) {
        let seg = Segment { from: (x1, y1), to: (x2, y2) };
        let pixels = rasterize(&[seg]);
        prop_assert!(!pixels.is_empty());
        for &(px, py) in &pixels {
            prop_assert!((px as usize) < CANVAS && (py as usize) < CANVAS);
        }
        let to_pixel = |x: f64, y: f64| {
            let scale = CANVAS as f64 / 16.0;
            (((x + 8.0) * scale).floor() as u8, ((y + 8.0) * scale).floor() as u8)
        };
        prop_assert!(pixels.contains(&to_pixel(x1, y1)));
        prop_assert!(pixels.contains(&to_pixel(x2, y2)));
    }

    /// Regex sampling and scoring agree: a sample drawn from a regex has
    /// finite log-probability under it.
    #[test]
    fn regex_samples_score_finite(seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // digits, optional sign, star suffix: covers class/maybe/star/concat
        let regex = Regex::Concat(
            Arc::new(Regex::Maybe(Arc::new(Regex::Const('-')))),
            Arc::new(Regex::Concat(
                Arc::new(Regex::Digit),
                Arc::new(Regex::Star(Arc::new(Regex::Digit))),
            )),
        );
        let mut s = String::new();
        let mut budget = 40usize;
        regex.sample(&mut rng, &mut s, &mut budget);
        prop_assume!(budget > 0); // sample not truncated
        prop_assert!(
            regex.log_prob(&s).is_finite(),
            "sample {s:?} scored -inf"
        );
    }

    /// Probabilities are really probabilities: for a regex with finitely
    /// many outputs, the exponentiated log-probs sum to 1.
    #[test]
    fn regex_distribution_normalizes(c1 in proptest::char::range('a', 'c')) {
        // (c1 | d)(x)? has exactly 4 outcomes.
        let regex = Regex::Concat(
            Arc::new(Regex::Or(
                Arc::new(Regex::Const(c1)),
                Arc::new(Regex::Const('d')),
            )),
            Arc::new(Regex::Maybe(Arc::new(Regex::Const('x')))),
        );
        let outcomes = [
            format!("{c1}"),
            format!("{c1}x"),
            "d".to_owned(),
            "dx".to_owned(),
        ];
        let total: f64 = outcomes.iter().map(|s| regex.log_prob(s).exp()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }
}
