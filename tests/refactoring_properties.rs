//! Property-based tests of the core invariants, spanning `dc-lambda`,
//! `dc-grammar`, and `dc-vspace`:
//!
//! * **Consistency** (Theorem G.5): every member of `Iβ(ρ)`'s extension
//!   β-reduces back to `ρ`;
//! * extraction of a singleton space is the identity;
//! * η-long form is idempotent and semantics-preserving;
//! * enumeration emits exactly the prior that `log_prior` recomputes.

use std::sync::Arc;

use dreamcoder::grammar::enumeration::{enumerate_top, EnumerationConfig};
use dreamcoder::grammar::{eta_long, Grammar, Library};
use dreamcoder::lambda::eval::run_program;
use dreamcoder::lambda::primitives::base_primitives;
use dreamcoder::lambda::types::{tint, tlist, Type};
use dreamcoder::lambda::{Expr, Value};
use dreamcoder::vspace::{ExtractionMemo, SpaceArena};
use proptest::prelude::*;

/// A strategy over small closed integer expressions built from the base
/// primitives `+ - * 0 1`.
fn int_expr() -> impl Strategy<Value = Expr> {
    let prims = base_primitives();
    let leaf = prop_oneof![
        Just(Expr::parse("0", &prims).unwrap()),
        Just(Expr::parse("1", &prims).unwrap()),
    ];
    let plus = Expr::parse("+", &prims).unwrap();
    let minus = Expr::parse("-", &prims).unwrap();
    let times = Expr::parse("*", &prims).unwrap();
    leaf.prop_recursive(3, 12, 2, move |inner| {
        (
            prop_oneof![Just(plus.clone()), Just(minus.clone()), Just(times.clone())],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::apply_all(op, [a, b]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn refactorings_are_consistent(e in int_expr()) {
        let mut arena = SpaceArena::new();
        let space = arena.refactor(&e, 1);
        // Original always in the space.
        prop_assert!(arena.contains(space, &e));
        // A sample of members must all reduce to the original.
        for member in arena.extension_sample(space, 60) {
            let nf = member.beta_normal_form(10_000);
            prop_assert_eq!(nf.as_ref(), Some(&e), "member {} broke", member);
        }
    }

    #[test]
    fn extraction_recovers_singletons(e in int_expr()) {
        let mut arena = SpaceArena::new();
        let v = arena.incorporate(&e);
        let got = arena
            .minimal_inhabitant(v, None, &mut ExtractionMemo::new())
            .expect("singleton extractable");
        prop_assert_eq!(got.expr, e.clone());
        prop_assert_eq!(got.cost, e.size());
    }

    #[test]
    fn refactored_members_evaluate_identically(e in int_expr()) {
        let want = run_program(&e, &[], 100_000).ok();
        let mut arena = SpaceArena::new();
        let space = arena.refactor(&e, 1);
        for member in arena.extension_sample(space, 20) {
            let got = run_program(&member, &[], 200_000).ok();
            prop_assert_eq!(&got, &want, "{} evaluates differently", member);
        }
    }

    #[test]
    fn eta_long_is_idempotent_and_semantics_preserving(e in int_expr()) {
        let long = eta_long(&e, &tint()).expect("closed int expr normalizes");
        let again = eta_long(&long, &tint()).expect("idempotent");
        prop_assert_eq!(&long, &again);
        let a = run_program(&e, &[], 100_000).ok();
        let b = run_program(&long, &[], 100_000).ok();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn priors_are_monotone_in_size_for_chains(n in 1usize..6) {
        // (+ 1 (+ 1 (... 1))) chains: longer chains have lower prior.
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(lib);
        let mut chain = Expr::parse("1", &prims).unwrap();
        let plus = Expr::parse("+", &prims).unwrap();
        let one = Expr::parse("1", &prims).unwrap();
        let mut last = g.log_prior(&tint(), &chain);
        for _ in 0..n {
            chain = Expr::apply_all(plus.clone(), [one.clone(), chain]);
            let lp = g.log_prior(&tint(), &chain);
            prop_assert!(lp < last);
            last = lp;
        }
    }
}

#[test]
fn enumerated_programs_round_trip_through_eta_long() {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(lib);
    let t = Type::arrow(tlist(tint()), tlist(tint()));
    for (e, lp) in enumerate_top(&g, &t, &EnumerationConfig::default(), 60) {
        // Enumerated programs are already η-long: eta_long is identity.
        let long = eta_long(&e, &t).expect("well-typed");
        assert_eq!(long, e, "enumeration emitted non-η-long {e}");
        assert!(lp.is_finite());
    }
}

#[test]
fn rewriting_with_invention_preserves_io_behaviour() {
    // A miniature version of the abstraction-sleep pipeline: refactor,
    // extract with a candidate, check behaviour on concrete inputs.
    let prims = base_primitives();
    let e = Expr::parse("(lambda (map (lambda (+ $0 $0)) $0))", &prims).unwrap();
    let mut arena = SpaceArena::new();
    let space = arena.refactor(&e, 2);
    let body = Expr::parse("(lambda (+ $0 $0))", &prims).unwrap();
    let inv = dreamcoder::lambda::Invented::new("#double", body).unwrap();
    let mut matcher = dreamcoder::vspace::Matcher::new(inv);
    let rewritten = arena
        .minimal_inhabitant(space, Some(&mut matcher), &mut ExtractionMemo::new())
        .expect("extractable");
    let input = Value::list(vec![Value::Int(3), Value::Int(4)]);
    let want = run_program(&e, std::slice::from_ref(&input), 100_000).unwrap();
    let got = run_program(&rewritten.expr, &[input], 100_000).unwrap();
    assert_eq!(got, want);
    assert!(rewritten.expr.to_string().contains("#double"));
}
