//! Property tests for the probabilistic-grammar machinery: samples score
//! finitely, traces match priors, fitted grammars dominate uniform ones
//! on their training corpus, and bigram contexts normalize.

use std::sync::Arc;

use dreamcoder::grammar::library::BigramParent;
use dreamcoder::grammar::{
    candidates, fit_grammar, generation_trace, ContextualGrammar, Frontier, FrontierEntry, Grammar,
    Library,
};
use dreamcoder::lambda::primitives::base_primitives;
use dreamcoder::lambda::types::{tint, tlist, Context, Type};
use dreamcoder::lambda::Expr;
use proptest::prelude::*;
use rand::SeedableRng;

fn setup() -> (Grammar, dreamcoder::lambda::PrimitiveSet) {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    (Grammar::uniform(lib), prims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Sampling then scoring always gives a finite prior, across requests
    /// and seeds, for both unigram and bigram grammars.
    #[test]
    fn samples_always_score_finite(seed in 0u64..1000, which in 0usize..3) {
        let (g, _) = setup();
        let cg = ContextualGrammar::uniform(Arc::clone(&g.library));
        let request = match which {
            0 => tint(),
            1 => Type::arrow(tint(), tint()),
            _ => Type::arrow(tlist(tint()), tlist(tint())),
        };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        if let Some(e) =
            dreamcoder::grammar::sample_program(&g, &request, &mut rng, 8)
        {
            prop_assert!(g.log_prior(&request, &e).is_finite(), "unigram -inf for {e}");
            prop_assert!(cg.log_prior(&request, &e).is_finite(), "bigram -inf for {e}");
        }
    }

    /// The generation trace's event count equals the number of
    /// non-abstraction nodes chosen, and its total equals log_prior.
    #[test]
    fn traces_are_consistent_with_priors(seed in 0u64..500) {
        let (g, _) = setup();
        let request = Type::arrow(tlist(tint()), tint());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        if let Some(e) = dreamcoder::grammar::sample_program(&g, &request, &mut rng, 8) {
            let (ll, events) = generation_trace(&g, &request, &e).expect("generable");
            prop_assert!((ll - g.log_prior(&request, &e)).abs() < 1e-9);
            prop_assert!(!events.is_empty());
            // Every event's chosen production must be in its feasible set.
            for ev in &events {
                match ev.chosen {
                    Some(j) => prop_assert!(ev.feasible_prods.contains(&j)),
                    None => prop_assert!(ev.feasible_vars > 0),
                }
            }
        }
    }
}

#[test]
fn candidate_probabilities_normalize_in_every_context() {
    let (g, _) = setup();
    let cg = ContextualGrammar::uniform(Arc::clone(&g.library));
    let ctx = Context::new();
    let env = [tint(), tlist(tint())];
    for parent in [
        BigramParent::Start,
        BigramParent::Var,
        BigramParent::Prod(0),
    ] {
        for arg in 0..2 {
            for request in [tint(), tlist(tint())] {
                let cands = candidates(&cg, parent, arg, &ctx, &env, &request);
                assert!(!cands.is_empty());
                let z: f64 = cands.iter().map(|c| c.log_prob.exp()).sum();
                assert!(
                    (z - 1.0).abs() < 1e-9,
                    "candidates at {parent:?}/{arg}/{request} sum to {z}"
                );
            }
        }
    }
}

#[test]
fn fitting_improves_corpus_likelihood() {
    let (g0, prims) = setup();
    let t = Type::arrow(tlist(tint()), tlist(tint()));
    let corpus = [
        "(lambda (map (lambda (+ $0 1)) $0))",
        "(lambda (map (lambda (+ $0 $0)) $0))",
        "(lambda (map (lambda (* $0 $0)) $0))",
    ];
    let frontiers: Vec<Frontier> = corpus
        .iter()
        .map(|src| {
            let e = Expr::parse(src, &prims).unwrap();
            let mut f = Frontier::new(t.clone());
            f.insert(
                FrontierEntry {
                    log_prior: g0.log_prior(&t, &e),
                    log_likelihood: 0.0,
                    expr: e,
                },
                5,
            );
            f
        })
        .collect();
    let g1 = fit_grammar(&g0.library, &frontiers, 1.0);
    let mut before = 0.0;
    let mut after = 0.0;
    for src in &corpus {
        let e = Expr::parse(src, &prims).unwrap();
        before += g0.log_prior(&t, &e);
        after += g1.log_prior(&t, &e);
    }
    assert!(
        after > before,
        "fitting should raise corpus log-prior: {before} -> {after}"
    );
}

#[test]
fn deeper_requests_have_strictly_smaller_candidate_sets_when_constrained() {
    // Sanity: at a `bool` request the int-only arithmetic heads drop out.
    let (g, _) = setup();
    let ctx = Context::new();
    let ints = candidates(&g, BigramParent::Start, 0, &ctx, &[], &tint());
    let bools = candidates(
        &g,
        BigramParent::Start,
        0,
        &ctx,
        &[],
        &dreamcoder::lambda::types::tbool(),
    );
    let int_names: Vec<String> = ints.iter().map(|c| c.expr.to_string()).collect();
    let bool_names: Vec<String> = bools.iter().map(|c| c.expr.to_string()).collect();
    assert!(int_names.contains(&"+".to_owned()));
    assert!(!bool_names.contains(&"+".to_owned()));
    assert!(bool_names.contains(&"is-prime".to_owned()));
}
