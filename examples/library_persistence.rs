//! Persisting a learned library: run a short wake/sleep loop, save the
//! resulting grammar (library + weights) to JSON, reload it, and use the
//! reloaded grammar to solve a task — the workflow a downstream user
//! needs to ship what DreamCoder learned.
//!
//! ```sh
//! cargo run --release --example library_persistence
//! ```

use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::grammar::{load_grammar, save_grammar};
use dreamcoder::lambda::pretty;
use dreamcoder::tasks::domains::list::ListDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{search_task, Condition, DreamCoder, DreamCoderConfig, Guide};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = ListDomain::new(0);
    let config = DreamCoderConfig {
        condition: Condition::NoRecognition,
        cycles: 2,
        minibatch: 12,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(600)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(200)),
            ..EnumerationConfig::default()
        },
        seed: 0,
        ..DreamCoderConfig::default()
    };
    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();
    println!(
        "trained {} cycles; {} inventions",
        summary.cycles.len(),
        summary.library.len()
    );

    // Save the learned grammar.
    let saved = save_grammar(&dc.grammar);
    let json = serde_json::to_string_pretty(&saved)?;
    std::fs::create_dir_all("results")?;
    std::fs::write("results/learned_list_grammar.json", &json)?;
    println!(
        "saved grammar to results/learned_list_grammar.json ({} bytes)",
        json.len()
    );

    // Reload it against the same primitive set and solve a task with it.
    let reloaded: dreamcoder::grammar::SavedGrammar = serde_json::from_str(&json)?;
    let grammar = load_grammar(&reloaded, domain.primitives())?;
    println!("reloaded library of {} productions", grammar.library.len());

    let task = domain
        .train_tasks()
        .iter()
        .chain(domain.test_tasks())
        .find(|t| t.name == "sum")
        .expect("sum task exists");
    let result = search_task(
        task,
        &Guide::Generative(grammar.clone()),
        &grammar,
        5,
        &EnumerationConfig {
            timeout: Some(Duration::from_secs(3)),
            ..EnumerationConfig::default()
        },
    );
    match result.frontier.best() {
        Some(best) => println!(
            "reloaded grammar solves {:?}:\n  {}\n  pretty: {}",
            task.name,
            best.expr,
            pretty(&best.expr)
        ),
        None => println!("not solved within the demo budget"),
    }
    Ok(())
}
