//! Inverse graphics with LOGO turtle programs: render the task gallery as
//! ASCII art, then solve one task by enumeration and show that the
//! recovered program redraws the target exactly.
//!
//! ```sh
//! cargo run --release --example logo_graphics
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

use dreamcoder::grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dreamcoder::grammar::Grammar;
use dreamcoder::tasks::domains::logo::{rasterize, run_logo_program, LogoDomain, CANVAS};
use dreamcoder::tasks::Domain;
use std::sync::Arc;

fn ascii(pixels: &BTreeSet<(u8, u8)>) -> String {
    let mut out = String::new();
    for y in (0..CANVAS as u8).rev().step_by(2) {
        for x in 0..CANVAS as u8 {
            let lit = pixels.contains(&(x, y)) || pixels.contains(&(x, y.saturating_sub(1)));
            out.push(if lit { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let domain = LogoDomain::new(0);
    println!(
        "LOGO domain: {} train + {} test image tasks",
        domain.train_tasks().len(),
        domain.test_tasks().len()
    );

    // Render a couple of targets.
    for (name, src) in dreamcoder::tasks::domains::logo::ground_truth_programs()
        .iter()
        .filter(|(n, _)| *n == "square" || *n == "four spokes")
    {
        let program = dreamcoder::lambda::Expr::parse(src, domain.primitives()).unwrap();
        let state = run_logo_program(&program, 100_000).unwrap();
        println!("\n{name}:\n{}", ascii(&rasterize(&state.segments)));
    }

    // Solve image tasks by searching program space, easiest first.
    let grammar = Grammar::uniform(Arc::clone(&domain.initial_library()));
    let config = EnumerationConfig {
        timeout: Some(Duration::from_secs(8)),
        ..EnumerationConfig::default()
    };
    for name in ["line", "right angle", "triangle"] {
        let task = domain
            .train_tasks()
            .iter()
            .chain(domain.test_tasks())
            .find(|t| t.name == name)
            .expect("task exists");
        let mut found = None;
        enumerate_programs(&grammar, &task.request, &config, &mut |expr, _| {
            if task.oracle.log_likelihood(&expr).is_finite() {
                found = Some(expr);
                false
            } else {
                true
            }
        });
        match found {
            Some(program) => {
                println!("solved {name:?} with:\n  {program}");
                let state = run_logo_program(&program, 100_000).unwrap();
                println!("{}", ascii(&rasterize(&state.segments)));
            }
            None => println!(
                "{name:?} not found within {}s (polygons need minutes; see fig8_logo)",
                8
            ),
        }
    }
}
