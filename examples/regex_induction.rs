//! Generative regex induction (the Fig 10 workflow): observe a handful of
//! strings, search for the MAP probabilistic regex, then *sample* from it
//! to imagine new examples of the same text concept.
//!
//! ```sh
//! cargo run --release --example regex_induction
//! ```

use std::time::Duration;

use dreamcoder::grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dreamcoder::grammar::Grammar;
use dreamcoder::tasks::domains::regex::{run_regex_program, RegexDomain};
use dreamcoder::tasks::Domain;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let domain = RegexDomain::new(0);
    let library = domain.initial_library();
    let grammar = Grammar::uniform(Arc::clone(&library));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);

    let config = EnumerationConfig {
        timeout: Some(Duration::from_secs(10)),
        ..EnumerationConfig::default()
    };

    // Demo on the lighter concepts; the long ones (phone numbers) need
    // minutes of search — see the fig10_regex bench.
    let wanted = ["integer list entry", "lowercase word", "price"];
    let tasks: Vec<_> = wanted
        .iter()
        .filter_map(|name| {
            domain
                .train_tasks()
                .iter()
                .chain(domain.test_tasks())
                .find(|t| t.name == *name)
        })
        .collect();
    for task in tasks {
        println!("concept {:?}", task.name);
        println!("  observed:");
        for ex in &task.examples {
            println!("    {:?}", ex.output);
        }
        // Search for the maximum-a-posteriori generative regex.
        let mut best: Option<(dreamcoder::lambda::Expr, f64)> = None;
        enumerate_programs(&grammar, &task.request, &config, &mut |expr, prior| {
            let ll = task.oracle.log_likelihood(&expr);
            if ll.is_finite() {
                let posterior = ll + prior;
                if best.as_ref().is_none_or(|(_, b)| posterior > *b) {
                    best = Some((expr, posterior));
                }
            }
            true
        });
        match best {
            Some((program, _)) => {
                let regex = run_regex_program(&program, 10_000).expect("found regex runs");
                println!("  MAP program: {}", regex.display());
                println!("  imagined samples:");
                for _ in 0..4 {
                    let mut s = String::new();
                    let mut budget = 30;
                    regex.sample(&mut rng, &mut s, &mut budget);
                    println!("    {s:?}");
                }
            }
            None => println!("  (no regex found within the budget)"),
        }
        println!();
    }
}
