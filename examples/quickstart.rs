//! Quickstart: run a few wake/sleep cycles on the list-processing domain
//! and print what DreamCoder learned.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::tasks::domains::list::ListDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{Condition, DreamCoder, DreamCoderConfig};

fn main() {
    let domain = ListDomain::new(0);
    println!(
        "list domain: {} train tasks, {} held-out test tasks",
        domain.train_tasks().len(),
        domain.test_tasks().len()
    );

    // Budgets here are laptop-scale (this reproduction runs on a single
    // CPU; the paper used 20-100). Raise the timeouts for better results.
    let config = DreamCoderConfig {
        condition: Condition::Full,
        cycles: 3,
        minibatch: 10,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(700)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(300)),
            ..EnumerationConfig::default()
        },
        compression: dreamcoder::vspace::CompressionConfig {
            top_candidates: 25,
            structure_penalty: 1.0,
            ..dreamcoder::vspace::CompressionConfig::default()
        },
        seed: 0,
        ..DreamCoderConfig::default()
    };

    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();

    println!("\ncycle | train solved | test solved | library size | depth");
    for c in &summary.cycles {
        println!(
            "{:>5} | {:>12} | {:>10.0}% | {:>12} | {:>5}",
            c.cycle,
            c.train_solved,
            100.0 * c.test_solved,
            c.library_size,
            c.library_depth
        );
    }

    println!("\nlearned library routines:");
    if summary.library.is_empty() {
        println!("  (none this run — try more cycles or longer timeouts)");
    }
    for inv in &summary.library {
        println!("  {inv}");
    }

    // Show a solution to one solved task in terms of the learned library.
    if let Some((idx, frontier)) = dc.frontiers.iter().next() {
        let task = &domain.train_tasks()[*idx];
        if let Some(best) = frontier.best() {
            println!(
                "\nexample solution for task {:?}:\n  {}",
                task.name, best.expr
            );
        }
    }
}
