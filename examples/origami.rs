//! Origami programming (§5.2, Fig 11B): bootstrap functional programming
//! from a 1959-Lisp basis (plus the fixed-point combinator), letting
//! abstraction sleep rediscover recursion schemes like fold.
//!
//! ```sh
//! cargo run --release --example origami
//! ```

use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::tasks::domains::origami::OrigamiDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{Condition, DreamCoder, DreamCoderConfig};

fn main() {
    let domain = OrigamiDomain::new(0);
    println!(
        "origami: {} tasks from the 1959-Lisp basis (no recognition model, as in the paper)",
        domain.train_tasks().len()
    );

    let config = DreamCoderConfig {
        condition: Condition::NoRecognition,
        cycles: 4,
        minibatch: 20,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(1500)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(200)),
            ..EnumerationConfig::default()
        },
        compression: dreamcoder::vspace::CompressionConfig {
            refactor_steps: 2,
            structure_penalty: 0.5,
            top_candidates: 30,
            ..dreamcoder::vspace::CompressionConfig::default()
        },
        seed: 3,
        ..DreamCoderConfig::default()
    };

    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();

    for c in &summary.cycles {
        println!(
            "cycle {}: solved {}/20, library {} routines (depth {})",
            c.cycle, c.train_solved, c.library_size, c.library_depth
        );
        for inv in &c.new_inventions {
            println!("  invented {inv}");
        }
    }

    if dc.frontiers.is_empty() {
        println!(
            "\nno tasks solved: the first fix-programs here are ~14 nodes deep,\n\
             which the paper reached with ~5 days x 64 CPUs of search. Run\n\
             `cargo run --release -p dc-bench --bin fig11_origami` for the\n\
             seeded reproduction of the fold-discovery result."
        );
        return;
    }
    println!("\nsolutions in terms of the learned library:");
    let mut idxs: Vec<&usize> = dc.frontiers.keys().collect();
    idxs.sort();
    for idx in idxs.into_iter().take(8) {
        if let Some(best) = dc.frontiers[idx].best() {
            println!("  {:<28} {}", domain.train_tasks()[*idx].name, best.expr);
        }
    }
}
