//! Learning a language for physical laws (§5.2, Fig 11A): starting from
//! recursive sequence primitives and arithmetic, solve laws by search and
//! let abstraction sleep invent vector-algebra building blocks.
//!
//! ```sh
//! cargo run --release --example physics_discovery
//! ```

use std::time::Duration;

use dreamcoder::grammar::enumeration::EnumerationConfig;
use dreamcoder::tasks::domains::physics::PhysicsDomain;
use dreamcoder::tasks::Domain;
use dreamcoder::wakesleep::{Condition, DreamCoder, DreamCoderConfig};

fn main() {
    let domain = PhysicsDomain::new(0);
    println!(
        "physics domain: {} laws to explain",
        domain.train_tasks().len()
    );

    let config = DreamCoderConfig {
        condition: Condition::NoRecognition, // abstraction is the star here
        cycles: 3,
        minibatch: 20,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(800)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis(300)),
            ..EnumerationConfig::default()
        },
        compression: dreamcoder::vspace::CompressionConfig {
            top_candidates: 25,
            structure_penalty: 0.5,
            ..dreamcoder::vspace::CompressionConfig::default()
        },
        seed: 7,
        ..DreamCoderConfig::default()
    };

    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();

    let last = summary.cycles.last().unwrap();
    println!(
        "\nsolved {}/{} laws after {} cycles",
        last.train_solved,
        domain.train_tasks().len(),
        summary.cycles.len()
    );
    println!("learned mathematical vocabulary:");
    for inv in &summary.library {
        println!("  {inv}");
    }

    println!("\nexample solved laws:");
    let mut shown = 0;
    for (idx, frontier) in &dc.frontiers {
        if shown >= 5 {
            break;
        }
        if let Some(best) = frontier.best() {
            println!("  {:<35} {}", domain.train_tasks()[*idx].name, best.expr);
            shown += 1;
        }
    }
}
