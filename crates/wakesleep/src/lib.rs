//! # dc-wakesleep
//!
//! The wake/sleep driver of DreamCoder-rs: minibatched wake-phase search
//! (§2.4), abstraction sleep (§3, via `dc-vspace`), dream sleep (§4, via
//! `dc-recognition`), the experimental conditions/baselines of Fig 7, and
//! the metrics the paper plots (solve rates, library depth/size, solve
//! times).
//!
//! # Example
//!
//! ```no_run
//! use dc_tasks::domains::list::ListDomain;
//! use dc_wakesleep::{Condition, DreamCoder, DreamCoderConfig};
//!
//! let domain = ListDomain::new(0);
//! let mut dc = DreamCoder::new(&domain, DreamCoderConfig::default());
//! let summary = dc.run();
//! println!("solved {:.0}% of held-out tasks", 100.0 * summary.final_test_solved);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod report;
pub mod run;
pub mod sleep;
pub mod wake;

pub use checkpoint::{
    latest_checkpoint, prune_checkpoints, Checkpoint, CheckpointError, CHECKPOINT_VERSION,
};
pub use config::{Condition, DreamCoderConfig, RecognitionConfig};
pub use report::{comparison_table, forensics_report, forensics_table, learning_curve, sparkline};
pub use run::{CycleStats, DreamCoder, RunSummary};
pub use sleep::{abstraction_sleep, dream_sleep, generate_fantasies, DreamStats};
pub use wake::{
    search_task, search_task_guarded, wake, Guide, SearchOutcome, SearchTrace, TaskSearchResult,
};
