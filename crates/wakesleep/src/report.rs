//! Plain-text reporting helpers: learning-curve sparklines and aligned
//! tables for run summaries (used by the figure benchmarks and the CLI).

use crate::run::RunSummary;

/// Render a unicode sparkline for a series in `[0, 1]`.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|v| {
            let clamped = v.clamp(0.0, 1.0);
            let idx = ((clamped * (BARS.len() - 1) as f64).round()) as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Render an aligned two-dimensional table. The first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] + 2 {
                out.push(' ');
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// One-line learning curve for a run: test accuracy per cycle.
pub fn learning_curve(summary: &RunSummary) -> String {
    let series: Vec<f64> = summary.cycles.iter().map(|c| c.test_solved).collect();
    format!(
        "{:<18} {} ({:.0}% -> {:.0}%)",
        summary.condition,
        sparkline(&series),
        100.0 * series.first().copied().unwrap_or(0.0),
        100.0 * series.last().copied().unwrap_or(0.0),
    )
}

/// Compare several runs as a table of per-cycle test accuracy.
pub fn comparison_table(summaries: &[RunSummary]) -> String {
    let cycles = summaries.iter().map(|s| s.cycles.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    let mut header = vec!["condition".to_owned()];
    for c in 0..cycles {
        header.push(format!("cycle {c}"));
    }
    header.push("library".to_owned());
    rows.push(header);
    for s in summaries {
        let mut row = vec![s.condition.clone()];
        for c in 0..cycles {
            row.push(s.cycles.get(c).map_or_else(
                || "-".to_owned(),
                |st| format!("{:.1}%", 100.0 * st.test_solved),
            ));
        }
        row.push(s.library.len().to_string());
        rows.push(row);
    }
    table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::CycleStats;

    fn summary(name: &str, accs: &[f64]) -> RunSummary {
        RunSummary {
            condition: name.to_owned(),
            domain: "test".to_owned(),
            cycles: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| CycleStats {
                    cycle: i,
                    train_solved: 0,
                    test_solved: a,
                    library_size: 10,
                    library_depth: 0,
                    mean_solve_time: 0.0,
                    median_solve_time: 0.0,
                    new_inventions: vec![],
                })
                .collect(),
            library: vec!["#f".to_owned()],
            final_test_solved: accs.last().copied().unwrap_or(0.0),
        }
    }

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            vec!["a".into(), "bb".into()],
            vec!["cccc".into(), "d".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3); // header + rule + row
        assert!(lines[1].contains('-'));
    }

    #[test]
    fn curves_and_comparisons_render() {
        let a = summary("A", &[0.1, 0.2, 0.4]);
        let b = summary("B", &[0.1, 0.1, 0.1]);
        let curve = learning_curve(&a);
        assert!(curve.contains("A"));
        assert!(curve.contains("40%"));
        let cmp = comparison_table(&[a, b]);
        assert!(cmp.contains("cycle 2"));
        assert!(cmp.contains("10.0%"));
    }
}
