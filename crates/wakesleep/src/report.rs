//! Plain-text reporting helpers: learning-curve sparklines, aligned
//! tables for run summaries (used by the figure benchmarks and the CLI),
//! and per-task search-forensics rendering.

use crate::run::RunSummary;
use crate::wake::SearchTrace;

/// Render a unicode sparkline for a series in `[0, 1]`.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|v| {
            let clamped = v.clamp(0.0, 1.0);
            let idx = ((clamped * (BARS.len() - 1) as f64).round()) as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Render an aligned two-dimensional table. The first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] + 2 {
                out.push(' ');
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Per-task search forensics for one cycle's wake minibatch, as an
/// aligned table: why each task was or wasn't solved — outcome, nats
/// frontier reached, candidates enumerated/evaluated/typed-out, best
/// log-posterior, and the hit's depth.
pub fn forensics_table(traces: &[SearchTrace]) -> String {
    if traces.is_empty() {
        return String::new();
    }
    let mut rows = vec![vec![
        "task".to_owned(),
        "outcome".to_owned(),
        "nats".to_owned(),
        "enum".to_owned(),
        "eval".to_owned(),
        "typed-out".to_owned(),
        "best logP".to_owned(),
        "depth".to_owned(),
    ]];
    for t in traces {
        rows.push(vec![
            t.task.clone(),
            t.outcome.label().to_owned(),
            format!("{:.1}", t.nats_frontier),
            t.programs_enumerated.to_string(),
            t.programs_evaluated.to_string(),
            t.typed_out.to_string(),
            t.best_log_posterior
                .map_or_else(|| "-".to_owned(), |lp| format!("{lp:.2}")),
            t.hit_depth
                .map_or_else(|| "-".to_owned(), |d| d.to_string()),
        ]);
    }
    table(&rows)
}

/// Forensics across a whole run: one table per cycle that recorded
/// traces, headed by the cycle index.
pub fn forensics_report(summary: &RunSummary) -> String {
    let mut out = String::new();
    for c in &summary.cycles {
        if c.search_traces.is_empty() {
            continue;
        }
        out.push_str(&format!("cycle {}\n", c.cycle));
        out.push_str(&forensics_table(&c.search_traces));
        out.push('\n');
    }
    out
}

/// One-line learning curve for a run: test accuracy per cycle.
pub fn learning_curve(summary: &RunSummary) -> String {
    let series: Vec<f64> = summary.cycles.iter().map(|c| c.test_solved).collect();
    format!(
        "{:<18} {} ({:.0}% -> {:.0}%)",
        summary.condition,
        sparkline(&series),
        100.0 * series.first().copied().unwrap_or(0.0),
        100.0 * series.last().copied().unwrap_or(0.0),
    )
}

/// Compare several runs as a table of per-cycle test accuracy.
pub fn comparison_table(summaries: &[RunSummary]) -> String {
    let cycles = summaries.iter().map(|s| s.cycles.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    let mut header = vec!["condition".to_owned()];
    for c in 0..cycles {
        header.push(format!("cycle {c}"));
    }
    header.push("library".to_owned());
    rows.push(header);
    for s in summaries {
        let mut row = vec![s.condition.clone()];
        for c in 0..cycles {
            row.push(s.cycles.get(c).map_or_else(
                || "-".to_owned(),
                |st| format!("{:.1}%", 100.0 * st.test_solved),
            ));
        }
        row.push(s.library.len().to_string());
        rows.push(row);
    }
    table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::CycleStats;

    fn summary(name: &str, accs: &[f64]) -> RunSummary {
        RunSummary {
            condition: name.to_owned(),
            domain: "test".to_owned(),
            cycles: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| CycleStats {
                    cycle: i,
                    train_solved: 0,
                    test_solved: a,
                    library_size: 10,
                    library_depth: 0,
                    mean_solve_time: 0.0,
                    median_solve_time: 0.0,
                    new_inventions: vec![],
                    search_traces: vec![],
                })
                .collect(),
            library: vec!["#f".to_owned()],
            final_test_solved: accs.last().copied().unwrap_or(0.0),
        }
    }

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            vec!["a".into(), "bb".into()],
            vec!["cccc".into(), "d".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3); // header + rule + row
        assert!(lines[1].contains('-'));
    }

    #[test]
    fn forensics_tables_render() {
        use crate::wake::{SearchOutcome, SearchTrace};
        let traces = vec![
            SearchTrace {
                task: "head".into(),
                outcome: SearchOutcome::Solved,
                nats_frontier: 7.5,
                programs_enumerated: 120,
                programs_evaluated: 120,
                typed_out: 44,
                best_log_posterior: Some(-3.25),
                hit_depth: Some(3),
                solve_time: Some(0.1),
            },
            SearchTrace {
                task: "impossible".into(),
                outcome: SearchOutcome::BudgetExhausted,
                nats_frontier: 8.0,
                programs_enumerated: 900,
                programs_evaluated: 900,
                typed_out: 310,
                best_log_posterior: None,
                hit_depth: None,
                solve_time: None,
            },
        ];
        let t = forensics_table(&traces);
        assert!(t.contains("head"));
        assert!(t.contains("solved"));
        assert!(t.contains("budget"));
        assert!(t.contains("-3.25"));
        assert_eq!(forensics_table(&[]), "");

        let mut s = summary("A", &[0.5]);
        s.cycles[0].search_traces = traces;
        let report = forensics_report(&s);
        assert!(report.contains("cycle 0"));
        assert!(report.contains("impossible"));
    }

    #[test]
    fn curves_and_comparisons_render() {
        let a = summary("A", &[0.1, 0.2, 0.4]);
        let b = summary("B", &[0.1, 0.1, 0.1]);
        let curve = learning_curve(&a);
        assert!(curve.contains("A"));
        assert!(curve.contains("40%"));
        let cmp = comparison_table(&[a, b]);
        assert!(cmp.contains("cycle 2"));
        assert!(cmp.contains("10.0%"));
    }
}
