//! Configuration for a DreamCoder run.

use dc_grammar::enumeration::EnumerationConfig;
use dc_recognition::{Objective, Parameterization};
use dc_vspace::CompressionConfig;

/// Which components are enabled — the experimental conditions of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Full DreamCoder: refactoring compression + bigram recognition.
    Full,
    /// Ablate the recognition model ("Abstraction only" / No Rec).
    NoRecognition,
    /// Ablate library learning ("Dreaming only" / No Lib).
    NoCompression,
    /// Incorporate solutions wholesale instead of refactoring (Memorize).
    Memorize {
        /// Whether the recognition model still trains.
        with_recognition: bool,
    },
    /// EC-style compression: no refactoring (candidates only from surface
    /// subtrees, i.e. zero inverse-β steps), no recognition model.
    Ec,
    /// Minibatched EC2: subtree-based compression plus a *unigram*
    /// recognition model trained on the posterior objective.
    Ec2,
    /// Pure type-directed enumeration, no learning at all.
    EnumerationOnly,
    /// RobustFill-style: train the recognition model on samples from the
    /// *initial* library only; no library learning.
    NeuralOnly,
}

impl Condition {
    /// Does this condition train a recognition model?
    pub fn uses_recognition(&self) -> bool {
        matches!(
            self,
            Condition::Full
                | Condition::NoCompression
                | Condition::Memorize {
                    with_recognition: true
                }
                | Condition::Ec2
                | Condition::NeuralOnly
        )
    }

    /// Does this condition grow the library?
    pub fn uses_compression(&self) -> bool {
        matches!(
            self,
            Condition::Full
                | Condition::NoRecognition
                | Condition::Memorize { .. }
                | Condition::Ec
                | Condition::Ec2
        )
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Condition::Full => "DreamCoder",
            Condition::NoRecognition => "No Recognition",
            Condition::NoCompression => "No Library",
            Condition::Memorize {
                with_recognition: true,
            } => "Memorize + Rec",
            Condition::Memorize {
                with_recognition: false,
            } => "Memorize",
            Condition::Ec => "EC",
            Condition::Ec2 => "EC2 (batched)",
            Condition::EnumerationOnly => "Enumeration",
            Condition::NeuralOnly => "Neural synthesis",
        }
    }
}

/// Hyperparameters of the recognition model and dream sleep.
#[derive(Debug, Clone)]
pub struct RecognitionConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs per dream sleep.
    pub epochs: usize,
    /// Number of fantasy tasks to dream per cycle.
    pub fantasies: usize,
    /// Output head parameterization.
    pub parameterization: Parameterization,
    /// Training objective.
    pub objective: Objective,
    /// Max depth of sampled fantasy programs.
    pub sample_depth: usize,
    /// Appendix Algorithm 3: instead of training on the sampled program
    /// itself (classic wake-sleep), enumerate briefly on each dreamed task
    /// and train on the maximum-a-posteriori program that solves it.
    pub map_fantasies: bool,
    /// Per-dream enumeration budget when `map_fantasies` is on.
    pub map_fantasy_timeout: std::time::Duration,
    /// Optional nats budget for the MAP-fantasy enumeration. When set, the
    /// per-dream search is bounded by description length instead of wall
    /// clock, so MAP fantasies stay deterministic (DESIGN.md §8); the
    /// timeout above is ignored.
    pub map_fantasy_budget: Option<f64>,
}

impl Default for RecognitionConfig {
    fn default() -> RecognitionConfig {
        RecognitionConfig {
            hidden_dim: 32,
            learning_rate: 0.01,
            epochs: 30,
            fantasies: 40,
            parameterization: Parameterization::Bigram,
            objective: Objective::Map,
            sample_depth: 10,
            map_fantasies: false,
            map_fantasy_timeout: std::time::Duration::from_millis(100),
            map_fantasy_budget: None,
        }
    }
}

/// Full configuration of a wake/sleep run.
#[derive(Debug, Clone)]
pub struct DreamCoderConfig {
    /// Experimental condition.
    pub condition: Condition,
    /// Number of wake/sleep cycles.
    pub cycles: usize,
    /// Beam size `|B_x|` (the paper uses 5).
    pub beam_size: usize,
    /// How many beam entries per task feed abstraction sleep (≤ beam_size;
    /// a single-CPU scaling knob — the paper compresses the full beams).
    pub compression_beam: usize,
    /// Tasks per wake minibatch (the paper's random minibatching; §2.4).
    pub minibatch: usize,
    /// Enumeration budget during waking.
    pub enumeration: EnumerationConfig,
    /// Enumeration budget when evaluating held-out tasks.
    pub test_enumeration: EnumerationConfig,
    /// Abstraction-sleep hyperparameters.
    pub compression: CompressionConfig,
    /// Dream-sleep hyperparameters.
    pub recognition: RecognitionConfig,
    /// RNG seed.
    pub seed: u64,
    /// Directory to write per-cycle checkpoints into (`None` disables
    /// checkpointing). See DESIGN.md §8.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// How many most-recent checkpoints to retain (older ones are pruned
    /// after each write; a value of 0 still keeps the newest).
    pub checkpoint_keep: usize,
    /// Report solve-time metrics as zero instead of wall-clock seconds.
    /// Wall clock is the only nondeterministic input to a seeded run, so
    /// with this set (and enumeration bounded by nats budget rather than
    /// timeout) the `RunSummary` is byte-reproducible — the determinism
    /// contract of DESIGN.md §8.
    pub deterministic_timing: bool,
    /// Record per-task [`crate::SearchTrace`] forensics into each cycle's
    /// stats (and thus the summary and checkpoints). On by default; turn
    /// off to keep summaries small on very large task sets.
    pub collect_search_traces: bool,
}

impl Default for DreamCoderConfig {
    fn default() -> DreamCoderConfig {
        DreamCoderConfig {
            condition: Condition::Full,
            cycles: 5,
            beam_size: 5,
            compression_beam: 5,
            minibatch: 20,
            enumeration: EnumerationConfig {
                timeout: Some(std::time::Duration::from_millis(500)),
                ..EnumerationConfig::default()
            },
            test_enumeration: EnumerationConfig {
                timeout: Some(std::time::Duration::from_millis(500)),
                ..EnumerationConfig::default()
            },
            compression: CompressionConfig::default(),
            recognition: RecognitionConfig::default(),
            seed: 0,
            checkpoint_dir: None,
            checkpoint_keep: 3,
            deterministic_timing: false,
            collect_search_traces: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_flags_are_consistent() {
        assert!(Condition::Full.uses_recognition());
        assert!(Condition::Full.uses_compression());
        assert!(!Condition::NoRecognition.uses_recognition());
        assert!(Condition::NoRecognition.uses_compression());
        assert!(Condition::NoCompression.uses_recognition());
        assert!(!Condition::NoCompression.uses_compression());
        assert!(!Condition::EnumerationOnly.uses_recognition());
        assert!(!Condition::EnumerationOnly.uses_compression());
        assert!(!Condition::NeuralOnly.uses_compression());
        assert!(Condition::NeuralOnly.uses_recognition());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Condition::Full.label(),
            Condition::NoRecognition.label(),
            Condition::NoCompression.label(),
            Condition::Memorize {
                with_recognition: true,
            }
            .label(),
            Condition::Memorize {
                with_recognition: false,
            }
            .label(),
            Condition::Ec.label(),
            Condition::Ec2.label(),
            Condition::EnumerationOnly.label(),
            Condition::NeuralOnly.label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }
}
