//! The wake phase (§2.4): search for programs with high posterior
//! `P[ρ|x] ∝ P[x|ρ] P[ρ|D,θ]` for each task in the minibatch, guided
//! either by the generative grammar or by the recognition model's
//! predicted bigram tensor. Tasks search in parallel (the paper's
//! multi-CPU wake; see DESIGN.md).

use std::time::Instant;

use dc_grammar::enumeration::{enumerate_programs_stats, EnumerationConfig};
use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::{ContextualGrammar, Grammar, ProgramPrior};
use dc_tasks::task::Task;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// What guides the search for one task.
#[derive(Debug, Clone)]
pub enum Guide {
    /// Search in decreasing prior under the generative grammar.
    Generative(Grammar),
    /// Search under a task-conditioned bigram tensor `Q(·|x)`.
    Recognition(ContextualGrammar),
}

impl Guide {
    fn prior(&self) -> &dyn ProgramPrior {
        match self {
            Guide::Generative(g) => g,
            Guide::Recognition(c) => c,
        }
    }
}

/// Why one task's search ended the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchOutcome {
    /// At least one program hit the task's examples.
    Solved,
    /// The nats budget ran out with no hit.
    BudgetExhausted,
    /// The wall-clock deadline fired with no hit.
    Timeout,
    /// The task's evaluator panicked; the search was abandoned.
    EvalPanic,
}

impl SearchOutcome {
    /// Short display label (`solved`, `budget`, `timeout`, `panic`).
    pub fn label(&self) -> &'static str {
        match self {
            SearchOutcome::Solved => "solved",
            SearchOutcome::BudgetExhausted => "budget",
            SearchOutcome::Timeout => "timeout",
            SearchOutcome::EvalPanic => "panic",
        }
    }
}

/// Per-task, per-cycle search forensics: enough to explain *why* a task
/// was or wasn't solved without re-running the cycle. Recorded by every
/// wake search and surfaced in the per-cycle report JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Task name.
    pub task: String,
    /// How the search ended.
    pub outcome: SearchOutcome,
    /// Nats frontier completed: every program cheaper than this bound
    /// (under the guiding prior) was enumerated.
    pub nats_frontier: f64,
    /// Candidate programs enumerated.
    pub programs_enumerated: usize,
    /// Candidates actually run against the task's examples.
    pub programs_evaluated: usize,
    /// Candidate heads rejected by unification before enumeration.
    pub typed_out: u64,
    /// Best `log P[ρ|D,θ] + log P[x|ρ]` in the final beam, if any.
    pub best_log_posterior: Option<f64>,
    /// Syntactic depth of the best hit, if any.
    pub hit_depth: Option<usize>,
    /// Seconds until the first hit, if any (`None` under
    /// `deterministic_timing`, where wall-clock may not reach results).
    pub solve_time: Option<f64>,
}

impl SearchTrace {
    fn evaluator_panic(task: &Task) -> SearchTrace {
        SearchTrace {
            task: task.name.clone(),
            outcome: SearchOutcome::EvalPanic,
            nats_frontier: 0.0,
            programs_enumerated: 0,
            programs_evaluated: 0,
            typed_out: 0,
            best_log_posterior: None,
            hit_depth: None,
            solve_time: None,
        }
    }
}

/// Result of searching one task.
#[derive(Debug, Clone)]
pub struct TaskSearchResult {
    /// The beam of solutions found (possibly empty).
    pub frontier: Frontier,
    /// Seconds until the *first* solution, if any (Appendix Fig 20).
    pub solve_time: Option<f64>,
    /// Programs enumerated.
    pub programs_enumerated: usize,
    /// Search forensics for this task.
    pub trace: SearchTrace,
}

/// Search one task: enumerate programs under `guide`, score hits under the
/// generative `scorer` (frontier priors are always `log P[ρ|D,θ]`, per the
/// beam objective of Eq. 3).
pub fn search_task(
    task: &Task,
    guide: &Guide,
    scorer: &Grammar,
    beam_size: usize,
    config: &EnumerationConfig,
) -> TaskSearchResult {
    let mut frontier = Frontier::new(task.request.clone());
    let mut solve_time = None;
    let started = Instant::now();
    let mut evaluated = 0usize;
    let stats = enumerate_programs_stats(guide.prior(), &task.request, config, &mut |expr, _ll| {
        evaluated += 1;
        let log_likelihood = task.oracle.log_likelihood(&expr);
        if log_likelihood.is_finite() {
            if solve_time.is_none() {
                solve_time = Some(started.elapsed().as_secs_f64());
            }
            let log_prior = scorer.log_prior(&task.request, &expr);
            frontier.insert(
                FrontierEntry {
                    expr,
                    log_likelihood,
                    log_prior,
                },
                beam_size,
            );
        }
        true
    });
    let best = frontier.best();
    let outcome = if best.is_some() {
        SearchOutcome::Solved
    } else if stats.timed_out {
        SearchOutcome::Timeout
    } else {
        SearchOutcome::BudgetExhausted
    };
    let trace = SearchTrace {
        task: task.name.clone(),
        outcome,
        nats_frontier: stats.frontier_nats,
        programs_enumerated: stats.programs,
        programs_evaluated: evaluated,
        typed_out: stats.typed_out,
        best_log_posterior: best.map(|e| e.log_posterior()),
        hit_depth: best.map(|e| e.expr.depth()),
        solve_time,
    };
    TaskSearchResult {
        frontier,
        solve_time,
        programs_enumerated: stats.programs,
        trace,
    }
}

/// Best-effort human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// [`search_task`] with per-task panic isolation: a panicking evaluator
/// (a poisoned oracle, an arithmetic edge case deep in a domain) yields
/// an **empty frontier** plus a telemetry event instead of unwinding
/// through the cycle and killing the whole run.
pub fn search_task_guarded(
    task: &Task,
    guide: &Guide,
    scorer: &Grammar,
    beam_size: usize,
    config: &EnumerationConfig,
) -> TaskSearchResult {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        search_task(task, guide, scorer, beam_size, config)
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => {
            let message = panic_message(&*payload);
            dc_telemetry::incr("wake.task_panics");
            dc_telemetry::event(
                dc_telemetry::Level::Warn,
                "wake.task_panic",
                &[
                    ("task", task.name.as_str().into()),
                    ("message", message.into()),
                ],
            );
            TaskSearchResult {
                frontier: Frontier::new(task.request.clone()),
                solve_time: None,
                programs_enumerated: 0,
                trace: SearchTrace::evaluator_panic(task),
            }
        }
    }
}

/// Search a batch of tasks in parallel. Each task is panic-isolated via
/// [`search_task_guarded`], so one poisoned evaluator costs its own
/// frontier, not the cycle.
pub fn wake(
    tasks: &[&Task],
    guides: &[Guide],
    scorer: &Grammar,
    beam_size: usize,
    config: &EnumerationConfig,
) -> Vec<TaskSearchResult> {
    assert_eq!(tasks.len(), guides.len(), "one guide per task");
    // Worker threads start with empty span stacks; carry the caller's
    // innermost span in by handle so per-task spans nest under the phase.
    let parent = dc_telemetry::current_span();
    (0..tasks.len())
        .into_par_iter()
        .map(|idx| {
            let _span = dc_telemetry::span_under_with_fields(
                parent,
                "wake.search",
                &[("task", idx.into())],
            );
            search_task_guarded(tasks[idx], &guides[idx], scorer, beam_size, config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_grammar::library::Library;
    use dc_lambda::eval::Value;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist, Type};
    use dc_tasks::task::{Example, Task};
    use std::sync::Arc;
    use std::time::Duration;

    fn setup() -> Grammar {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        Grammar::uniform(lib)
    }

    fn list(vals: &[i64]) -> Value {
        Value::list(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    fn quick(timeout_ms: u64) -> EnumerationConfig {
        EnumerationConfig {
            timeout: Some(Duration::from_millis(timeout_ms)),
            ..EnumerationConfig::default()
        }
    }

    #[test]
    fn wake_solves_an_easy_task() {
        let g = setup();
        let task = Task::io(
            "head",
            Type::arrow(tlist(tint()), tint()),
            vec![
                Example {
                    inputs: vec![list(&[3, 1])],
                    output: Value::Int(3),
                },
                Example {
                    inputs: vec![list(&[7, 2, 2])],
                    output: Value::Int(7),
                },
            ],
            vec![],
        );
        let result = search_task(&task, &Guide::Generative(g.clone()), &g, 5, &quick(2000));
        assert!(!result.frontier.is_empty(), "head should be found quickly");
        let best = result.frontier.best().unwrap();
        assert!(task.check(&best.expr));
        assert!(result.solve_time.is_some());
        assert!(result.programs_enumerated > 0);
    }

    #[test]
    fn beams_are_bounded_and_sorted() {
        let g = setup();
        // Trivial task solvable by many programs: identity on lists.
        let task = Task::io(
            "identity",
            Type::arrow(tlist(tint()), tlist(tint())),
            vec![Example {
                inputs: vec![list(&[1, 2])],
                output: list(&[1, 2]),
            }],
            vec![],
        );
        let result = search_task(&task, &Guide::Generative(g.clone()), &g, 3, &quick(1500));
        assert!(result.frontier.len() <= 3);
        let lp: Vec<f64> = result
            .frontier
            .entries
            .iter()
            .map(|e| e.log_posterior())
            .collect();
        assert!(lp.windows(2).all(|w| w[0] >= w[1]), "beam must be sorted");
    }

    #[test]
    fn unsolvable_tasks_return_empty_frontiers() {
        let g = setup();
        // Output type mismatch with any reasonable small program: ask for a
        // constant that isn't reachable within the budget window.
        let task = Task::io(
            "impossible",
            Type::arrow(tlist(tint()), tint()),
            vec![
                Example {
                    inputs: vec![list(&[1])],
                    output: Value::Int(7919),
                },
                Example {
                    inputs: vec![list(&[2])],
                    output: Value::Int(104729),
                },
            ],
            vec![],
        );
        let result = search_task(&task, &Guide::Generative(g.clone()), &g, 5, &quick(300));
        assert!(result.frontier.is_empty());
        assert!(result.solve_time.is_none());
    }

    #[test]
    fn a_panicking_oracle_degrades_to_an_empty_frontier() {
        use dc_lambda::expr::Expr;
        use dc_tasks::task::TaskOracle;

        struct PoisonedOracle;
        impl TaskOracle for PoisonedOracle {
            fn log_likelihood(&self, _program: &Expr) -> f64 {
                panic!("injected evaluator panic");
            }
        }

        let g = setup();
        let healthy = Task::io(
            "healthy",
            Type::arrow(tlist(tint()), tint()),
            vec![Example {
                inputs: vec![list(&[5, 1])],
                output: Value::Int(5),
            }],
            vec![],
        );
        let poisoned = Task {
            name: "poisoned".into(),
            request: Type::arrow(tlist(tint()), tint()),
            oracle: Arc::new(PoisonedOracle),
            features: vec![],
            examples: vec![],
        };
        // Quiet the default per-panic stderr backtrace for this test.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let tasks = [&healthy, &poisoned];
        let guides = vec![Guide::Generative(g.clone()), Guide::Generative(g.clone())];
        let results = wake(&tasks, &guides, &g, 5, &quick(2000));
        std::panic::set_hook(prev_hook);
        assert_eq!(results.len(), 2);
        assert!(
            !results[0].frontier.is_empty(),
            "healthy task must still be solved"
        );
        assert!(results[1].frontier.is_empty(), "poisoned task yields empty");
        assert!(results[1].solve_time.is_none());
    }

    #[test]
    fn parallel_wake_matches_sequential() {
        let g = setup();
        let task = Task::io(
            "length",
            Type::arrow(tlist(tint()), tint()),
            vec![
                Example {
                    inputs: vec![list(&[3, 1, 4])],
                    output: Value::Int(3),
                },
                Example {
                    inputs: vec![list(&[])],
                    output: Value::Int(0),
                },
            ],
            vec![],
        );
        let tasks = [&task, &task];
        let guides = vec![Guide::Generative(g.clone()), Guide::Generative(g.clone())];
        let results = wake(&tasks, &guides, &g, 5, &quick(2000));
        assert_eq!(results.len(), 2);
        for r in results {
            assert!(!r.frontier.is_empty());
        }
    }
}
