//! The wake phase (§2.4): search for programs with high posterior
//! `P[ρ|x] ∝ P[x|ρ] P[ρ|D,θ]` for each task in the minibatch, guided
//! either by the generative grammar or by the recognition model's
//! predicted bigram tensor. Tasks search in parallel (the paper's
//! multi-CPU wake; see DESIGN.md).

use std::time::Instant;

use dc_grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::{ContextualGrammar, Grammar, ProgramPrior};
use dc_tasks::task::Task;
use rayon::prelude::*;

/// What guides the search for one task.
#[derive(Debug, Clone)]
pub enum Guide {
    /// Search in decreasing prior under the generative grammar.
    Generative(Grammar),
    /// Search under a task-conditioned bigram tensor `Q(·|x)`.
    Recognition(ContextualGrammar),
}

impl Guide {
    fn prior(&self) -> &dyn ProgramPrior {
        match self {
            Guide::Generative(g) => g,
            Guide::Recognition(c) => c,
        }
    }
}

/// Result of searching one task.
#[derive(Debug, Clone)]
pub struct TaskSearchResult {
    /// The beam of solutions found (possibly empty).
    pub frontier: Frontier,
    /// Seconds until the *first* solution, if any (Appendix Fig 20).
    pub solve_time: Option<f64>,
    /// Programs enumerated.
    pub programs_enumerated: usize,
}

/// Search one task: enumerate programs under `guide`, score hits under the
/// generative `scorer` (frontier priors are always `log P[ρ|D,θ]`, per the
/// beam objective of Eq. 3).
pub fn search_task(
    task: &Task,
    guide: &Guide,
    scorer: &Grammar,
    beam_size: usize,
    config: &EnumerationConfig,
) -> TaskSearchResult {
    let mut frontier = Frontier::new(task.request.clone());
    let mut solve_time = None;
    let started = Instant::now();
    let mut enumerated = 0usize;
    enumerate_programs(guide.prior(), &task.request, config, &mut |expr, _ll| {
        enumerated += 1;
        let log_likelihood = task.oracle.log_likelihood(&expr);
        if log_likelihood.is_finite() {
            if solve_time.is_none() {
                solve_time = Some(started.elapsed().as_secs_f64());
            }
            let log_prior = scorer.log_prior(&task.request, &expr);
            frontier.insert(
                FrontierEntry {
                    expr,
                    log_likelihood,
                    log_prior,
                },
                beam_size,
            );
        }
        true
    });
    TaskSearchResult {
        frontier,
        solve_time,
        programs_enumerated: enumerated,
    }
}

/// Best-effort human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// [`search_task`] with per-task panic isolation: a panicking evaluator
/// (a poisoned oracle, an arithmetic edge case deep in a domain) yields
/// an **empty frontier** plus a telemetry event instead of unwinding
/// through the cycle and killing the whole run.
pub fn search_task_guarded(
    task: &Task,
    guide: &Guide,
    scorer: &Grammar,
    beam_size: usize,
    config: &EnumerationConfig,
) -> TaskSearchResult {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        search_task(task, guide, scorer, beam_size, config)
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => {
            let message = panic_message(&*payload);
            dc_telemetry::incr("wake.task_panics");
            dc_telemetry::event(
                dc_telemetry::Level::Warn,
                "wake.task_panic",
                &[
                    ("task", task.name.as_str().into()),
                    ("message", message.into()),
                ],
            );
            TaskSearchResult {
                frontier: Frontier::new(task.request.clone()),
                solve_time: None,
                programs_enumerated: 0,
            }
        }
    }
}

/// Search a batch of tasks in parallel. Each task is panic-isolated via
/// [`search_task_guarded`], so one poisoned evaluator costs its own
/// frontier, not the cycle.
pub fn wake(
    tasks: &[&Task],
    guides: &[Guide],
    scorer: &Grammar,
    beam_size: usize,
    config: &EnumerationConfig,
) -> Vec<TaskSearchResult> {
    assert_eq!(tasks.len(), guides.len(), "one guide per task");
    tasks
        .par_iter()
        .zip(guides.par_iter())
        .map(|(task, guide)| search_task_guarded(task, guide, scorer, beam_size, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_grammar::library::Library;
    use dc_lambda::eval::Value;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist, Type};
    use dc_tasks::task::{Example, Task};
    use std::sync::Arc;
    use std::time::Duration;

    fn setup() -> Grammar {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        Grammar::uniform(lib)
    }

    fn list(vals: &[i64]) -> Value {
        Value::list(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    fn quick(timeout_ms: u64) -> EnumerationConfig {
        EnumerationConfig {
            timeout: Some(Duration::from_millis(timeout_ms)),
            ..EnumerationConfig::default()
        }
    }

    #[test]
    fn wake_solves_an_easy_task() {
        let g = setup();
        let task = Task::io(
            "head",
            Type::arrow(tlist(tint()), tint()),
            vec![
                Example {
                    inputs: vec![list(&[3, 1])],
                    output: Value::Int(3),
                },
                Example {
                    inputs: vec![list(&[7, 2, 2])],
                    output: Value::Int(7),
                },
            ],
            vec![],
        );
        let result = search_task(&task, &Guide::Generative(g.clone()), &g, 5, &quick(2000));
        assert!(!result.frontier.is_empty(), "head should be found quickly");
        let best = result.frontier.best().unwrap();
        assert!(task.check(&best.expr));
        assert!(result.solve_time.is_some());
        assert!(result.programs_enumerated > 0);
    }

    #[test]
    fn beams_are_bounded_and_sorted() {
        let g = setup();
        // Trivial task solvable by many programs: identity on lists.
        let task = Task::io(
            "identity",
            Type::arrow(tlist(tint()), tlist(tint())),
            vec![Example {
                inputs: vec![list(&[1, 2])],
                output: list(&[1, 2]),
            }],
            vec![],
        );
        let result = search_task(&task, &Guide::Generative(g.clone()), &g, 3, &quick(1500));
        assert!(result.frontier.len() <= 3);
        let lp: Vec<f64> = result
            .frontier
            .entries
            .iter()
            .map(|e| e.log_posterior())
            .collect();
        assert!(lp.windows(2).all(|w| w[0] >= w[1]), "beam must be sorted");
    }

    #[test]
    fn unsolvable_tasks_return_empty_frontiers() {
        let g = setup();
        // Output type mismatch with any reasonable small program: ask for a
        // constant that isn't reachable within the budget window.
        let task = Task::io(
            "impossible",
            Type::arrow(tlist(tint()), tint()),
            vec![
                Example {
                    inputs: vec![list(&[1])],
                    output: Value::Int(7919),
                },
                Example {
                    inputs: vec![list(&[2])],
                    output: Value::Int(104729),
                },
            ],
            vec![],
        );
        let result = search_task(&task, &Guide::Generative(g.clone()), &g, 5, &quick(300));
        assert!(result.frontier.is_empty());
        assert!(result.solve_time.is_none());
    }

    #[test]
    fn a_panicking_oracle_degrades_to_an_empty_frontier() {
        use dc_lambda::expr::Expr;
        use dc_tasks::task::TaskOracle;

        struct PoisonedOracle;
        impl TaskOracle for PoisonedOracle {
            fn log_likelihood(&self, _program: &Expr) -> f64 {
                panic!("injected evaluator panic");
            }
        }

        let g = setup();
        let healthy = Task::io(
            "healthy",
            Type::arrow(tlist(tint()), tint()),
            vec![Example {
                inputs: vec![list(&[5, 1])],
                output: Value::Int(5),
            }],
            vec![],
        );
        let poisoned = Task {
            name: "poisoned".into(),
            request: Type::arrow(tlist(tint()), tint()),
            oracle: Arc::new(PoisonedOracle),
            features: vec![],
            examples: vec![],
        };
        // Quiet the default per-panic stderr backtrace for this test.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let tasks = [&healthy, &poisoned];
        let guides = vec![Guide::Generative(g.clone()), Guide::Generative(g.clone())];
        let results = wake(&tasks, &guides, &g, 5, &quick(2000));
        std::panic::set_hook(prev_hook);
        assert_eq!(results.len(), 2);
        assert!(
            !results[0].frontier.is_empty(),
            "healthy task must still be solved"
        );
        assert!(results[1].frontier.is_empty(), "poisoned task yields empty");
        assert!(results[1].solve_time.is_none());
    }

    #[test]
    fn parallel_wake_matches_sequential() {
        let g = setup();
        let task = Task::io(
            "length",
            Type::arrow(tlist(tint()), tint()),
            vec![
                Example {
                    inputs: vec![list(&[3, 1, 4])],
                    output: Value::Int(3),
                },
                Example {
                    inputs: vec![list(&[])],
                    output: Value::Int(0),
                },
            ],
            vec![],
        );
        let tasks = [&task, &task];
        let guides = vec![Guide::Generative(g.clone()), Guide::Generative(g.clone())];
        let results = wake(&tasks, &guides, &g, 5, &quick(2000));
        assert_eq!(results.len(), 2);
        for r in results {
            assert!(!r.frontier.is_empty());
        }
    }
}
