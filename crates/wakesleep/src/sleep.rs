//! The two sleep phases: *abstraction* (grow the library, §3) and
//! *dreaming* (train the recognition model on replays + fantasies, §4).

use std::sync::Arc;

use dc_grammar::frontier::Frontier;
use dc_grammar::grammar::Grammar;
use dc_grammar::inside_outside::fit_grammar;
use dc_grammar::library::Library;
use dc_grammar::sample::sample_program_with_retries;
use dc_lambda::expr::{Expr, Invented};
use dc_lambda::types::Type;
use dc_recognition::{fantasy_example, replay_example, RecognitionModel, TrainingExample};
use dc_tasks::domain::Domain;
use dc_tasks::task::Task;
use dc_vspace::{compress, CompressionConfig, CompressionResult};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::config::Condition;
use crate::wake::panic_message;

/// Run abstraction sleep under the given experimental condition.
///
/// * `Full` / `NoRecognition` — refactoring compression (the paper's).
/// * `Ec` / `Ec2` — compression with **zero** inverse-β steps: candidates
///   come only from surface subtrees of the solutions (EC-style).
/// * `Memorize` — incorporate each task's MAP solution wholesale.
pub fn abstraction_sleep(
    library: &Arc<Library>,
    frontiers: &[Frontier],
    config: &CompressionConfig,
    condition: Condition,
) -> CompressionResult {
    match condition {
        Condition::Memorize { .. } => memorize(library, frontiers, config),
        Condition::Ec | Condition::Ec2 => {
            let cfg = CompressionConfig {
                refactor_steps: 0,
                ..config.clone()
            };
            compress(library, frontiers, &cfg)
        }
        _ => compress(library, frontiers, config),
    }
}

/// The Memorize baseline (§5, cf. [8]): every solved task's best program
/// becomes a library routine verbatim — no refactoring, no sharing.
fn memorize(
    library: &Arc<Library>,
    frontiers: &[Frontier],
    config: &CompressionConfig,
) -> CompressionResult {
    let mut lib = (**library).clone();
    let mut steps = Vec::new();
    for f in frontiers {
        let Some(best) = f.best() else { continue };
        let body = best.expr.clone();
        if body.size() < 2 {
            continue; // single primitives teach nothing
        }
        // Never re-memorize a solution that already calls a memorized (or
        // otherwise invented) routine — Memorize stores raw solutions only.
        if body
            .subexpressions()
            .iter()
            .any(|e| matches!(e, Expr::Invented(_)))
        {
            continue;
        }
        let name = format!("#{body}");
        if lib.items.iter().any(|it| it.name() == name) {
            continue;
        }
        if let Ok(inv) = Invented::new(&name, body) {
            lib.push_invented(Arc::clone(&inv));
            steps.push(dc_vspace::CompressionStep {
                invention: inv,
                score_before: 0.0,
                score_after: 0.0,
            });
        }
    }
    let lib = Arc::new(lib);
    // Rewrite each frontier's best entry as a bare call to its memorized
    // routine, η-expanded so the grammar can score it.
    let mut new_frontiers: Vec<Frontier> = frontiers.to_vec();
    for f in &mut new_frontiers {
        for entry in &mut f.entries {
            let name = format!("#{}", entry.expr);
            if let Some(item) = lib.items.iter().find(|it| it.name() == name) {
                if let Some(long) = dc_grammar::eta_long(&item.expr, &f.request) {
                    entry.expr = long;
                }
            }
        }
    }
    let grammar = fit_grammar(&lib, &new_frontiers, config.pseudocounts);
    for f in &mut new_frontiers {
        let request = f.request.clone();
        f.rescore(|e| grammar.log_prior(&request, e));
    }
    CompressionResult {
        library: lib,
        grammar,
        frontiers: new_frontiers,
        steps,
    }
}

/// Statistics from one dream sleep.
#[derive(Debug, Clone, PartialEq)]
pub struct DreamStats {
    /// Replay examples used.
    pub replays: usize,
    /// Fantasy examples used.
    pub fantasies: usize,
    /// Mean loss of the final training epoch.
    pub final_loss: f64,
}

/// Run dream sleep: train `model` on replays of solved tasks and on
/// fantasies sampled from the generative model and executed by the domain.
#[allow(clippy::too_many_arguments)]
pub fn dream_sleep<R: Rng>(
    model: &mut RecognitionModel,
    domain: &dyn Domain,
    grammar: &Grammar,
    solved: &[(&Task, &Frontier)],
    config: &crate::config::RecognitionConfig,
    rng: &mut R,
) -> DreamStats {
    let mut examples: Vec<TrainingExample> = Vec::new();
    for (task, frontier) in solved {
        if let Some(ex) = replay_example(task.features.clone(), frontier, model.objective()) {
            examples.push(ex);
        }
    }
    let replays = examples.len();
    // The master RNG is consumed exactly once here regardless of thread
    // count, fantasy yield, or panics: a single u64 keys every per-slot
    // substream. Both the dreamed set and the post-dream RNG state are
    // therefore bit-identical across thread counts (DESIGN.md §9).
    let stream_key: u64 = rng.gen();
    let fantasies = {
        let _span = dc_telemetry::span("dream.fantasies");
        generate_fantasies(domain, grammar, config, stream_key)
    };
    let made = fantasies.len();
    examples.extend(fantasies);
    let final_loss = {
        let _span = dc_telemetry::span("dream.train");
        model.train(&examples, config.epochs, rng)
    };
    DreamStats {
        replays,
        fantasies: made,
        final_loss,
    }
}

/// Derive the ChaCha8 substream for one fantasy slot. The 32-byte seed
/// mixes a domain-separation tag, the cycle's master `stream_key`, and the
/// slot index, so a slot's randomness is a pure function of (key, slot) —
/// independent of scheduling, thread count, and sibling outcomes.
fn fantasy_substream(stream_key: u64, slot: u64) -> rand_chacha::ChaCha8Rng {
    let mut seed = [0u8; 32];
    seed[..16].copy_from_slice(b"dc-dream-fantasy");
    seed[16..24].copy_from_slice(&stream_key.to_le_bytes());
    seed[24..].copy_from_slice(&slot.to_le_bytes());
    rand_chacha::ChaCha8Rng::from_seed(seed)
}

/// Generate up to `config.fantasies` fantasy examples, fanned out across
/// threads by slot index (§4's dreaming, parallelized).
///
/// Slots run in waves of `config.fantasies`; each slot samples, dreams,
/// and (optionally) MAP-solves inside its own [`fantasy_substream`], and
/// successes are kept in slot order. The result is a pure function of
/// `(grammar, config, stream_key)` at any thread count. Ten waves bound
/// the work at the serial loop's old `fantasies * 10` attempt budget.
pub fn generate_fantasies(
    domain: &dyn Domain,
    grammar: &Grammar,
    config: &crate::config::RecognitionConfig,
    stream_key: u64,
) -> Vec<TrainingExample> {
    let requests = domain.dream_requests();
    // A domain with no dream requests can't fantasize (and `gen_range`
    // over an empty range would panic): nothing to dream.
    if requests.is_empty() || config.fantasies == 0 {
        return Vec::new();
    }
    let mut examples: Vec<TrainingExample> = Vec::with_capacity(config.fantasies);
    for wave in 0..10u64 {
        let lo = wave * config.fantasies as u64;
        let slots: Vec<u64> = (lo..lo + config.fantasies as u64).collect();
        let parent = dc_telemetry::current_span();
        let produced: Vec<Option<TrainingExample>> = slots
            .par_iter()
            .map(|&slot| {
                let _span = dc_telemetry::span_under(parent, "dream.fantasy");
                fantasy_attempt_guarded(domain, grammar, &requests, config, stream_key, slot)
            })
            .collect();
        examples.extend(produced.into_iter().flatten());
        if examples.len() >= config.fantasies {
            break;
        }
    }
    examples.truncate(config.fantasies);
    examples
}

/// One fantasy attempt in its own substream: sample a program, execute it
/// via `domain.dream`, and (with MAP fantasies) replace the target with
/// the cheapest program solving the dreamed task.
fn fantasy_attempt(
    domain: &dyn Domain,
    grammar: &Grammar,
    requests: &[Type],
    config: &crate::config::RecognitionConfig,
    stream_key: u64,
    slot: u64,
) -> Option<TrainingExample> {
    let mut rng = fantasy_substream(stream_key, slot);
    let request = &requests[rng.gen_range(0..requests.len())];
    let program = sample_program_with_retries(grammar, request, &mut rng, config.sample_depth, 10)?;
    let task = domain.dream(&program, request, &mut rng)?;
    // Appendix Algorithm 3: with MAP fantasies, the training target is the
    // maximum-a-posteriori program found by a short enumeration on the
    // dreamed task, not the sampled program itself.
    let target = if config.map_fantasies {
        map_program_for(grammar, &task, config).unwrap_or(program)
    } else {
        program
    };
    Some(fantasy_example(
        task.features,
        request.clone(),
        vec![(target, 1.0)],
    ))
}

/// [`fantasy_attempt`] with panic isolation: a panicking domain evaluator
/// (in `dream` or in the MAP enumeration's oracle) costs one skipped
/// fantasy and a telemetry event, not the whole dream sleep.
fn fantasy_attempt_guarded(
    domain: &dyn Domain,
    grammar: &Grammar,
    requests: &[Type],
    config: &crate::config::RecognitionConfig,
    stream_key: u64,
    slot: u64,
) -> Option<TrainingExample> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fantasy_attempt(domain, grammar, requests, config, stream_key, slot)
    }))
    .unwrap_or_else(|payload| {
        let message = panic_message(&*payload);
        dc_telemetry::incr("dream.fantasy_panics");
        dc_telemetry::event(
            dc_telemetry::Level::Warn,
            "dream.fantasy_panic",
            &[("slot", slot.into()), ("message", message.into())],
        );
        None
    })
}

/// Algorithm 3's inner step: enumerate in decreasing prior order and keep
/// the program maximizing `P[x|rho] P[rho|D,theta]` for the dreamed task.
///
/// With a `map_fantasy_budget` the search is bounded by description length
/// (deterministic); otherwise by the wall-clock `map_fantasy_timeout`.
fn map_program_for(
    grammar: &Grammar,
    task: &Task,
    config: &crate::config::RecognitionConfig,
) -> Option<dc_lambda::expr::Expr> {
    use dc_grammar::enumeration::{enumerate_programs, EnumerationConfig};
    let cfg = match config.map_fantasy_budget {
        Some(nats) => EnumerationConfig {
            timeout: None,
            max_budget: nats,
            ..EnumerationConfig::default()
        },
        None => EnumerationConfig {
            timeout: Some(config.map_fantasy_timeout),
            ..EnumerationConfig::default()
        },
    };
    let mut best: Option<(dc_lambda::expr::Expr, f64)> = None;
    enumerate_programs(grammar, &task.request, &cfg, &mut |expr, prior| {
        let ll = task.oracle.log_likelihood(&expr);
        if ll.is_finite() {
            let post = ll + prior;
            if best.as_ref().is_none_or(|(_, b)| post > *b) {
                best = Some((expr, post));
            }
        }
        true
    });
    best.map(|(e, _)| e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_grammar::frontier::FrontierEntry;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist, Type};
    use dc_recognition::{Objective, Parameterization};
    use dc_tasks::domains::list::ListDomain;
    use rand::SeedableRng;

    fn frontier_for(g: &Grammar, src: &str, request: Type) -> Frontier {
        let prims = base_primitives();
        let e = Expr::parse(src, &prims).unwrap();
        let mut f = Frontier::new(request.clone());
        f.insert(
            FrontierEntry {
                log_prior: g.log_prior(&request, &e),
                log_likelihood: 0.0,
                expr: e,
            },
            5,
        );
        f
    }

    #[test]
    fn memorize_adds_whole_programs() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(Arc::clone(&lib));
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        let frontiers = vec![
            frontier_for(&g, "(lambda (map (lambda (+ $0 1)) $0))", t.clone()),
            frontier_for(&g, "(lambda (map (lambda (+ $0 $0)) $0))", t.clone()),
        ];
        let result = abstraction_sleep(
            &lib,
            &frontiers,
            &CompressionConfig::default(),
            Condition::Memorize {
                with_recognition: false,
            },
        );
        assert_eq!(result.steps.len(), 2, "both solutions memorized verbatim");
        assert_eq!(result.library.len(), lib.len() + 2);
        // Memorized frontiers collapse to a single call of the routine.
        for f in &result.frontiers {
            assert!(f.entries[0].expr.size() <= 4, "got {}", f.entries[0].expr);
        }
    }

    #[test]
    fn ec_condition_uses_no_refactoring() {
        // With refactor_steps = 0 the map body (a surface subtree) can
        // still be proposed, but refactoring-only candidates cannot.
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(Arc::clone(&lib));
        let t = tint();
        // (+ 1 1) and (+ 0 0) share "double" only via refactoring, so EC
        // must NOT find it.
        let frontiers = vec![
            frontier_for(&g, "(+ 1 1)", t.clone()),
            frontier_for(&g, "(+ 0 0)", t.clone()),
        ];
        let cfg = CompressionConfig {
            structure_penalty: 0.1,
            top_candidates: 50,
            ..CompressionConfig::default()
        };
        let result = abstraction_sleep(&lib, &frontiers, &cfg, Condition::Ec);
        assert!(
            result.steps.is_empty(),
            "EC should not discover refactoring-only abstractions: {:?}",
            result
                .steps
                .iter()
                .map(|s| s.invention.name.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn dream_sleep_survives_a_domain_with_no_dream_requests() {
        use dc_lambda::primitives::PrimitiveSet;
        use dc_lambda::types::Type;
        use rand::RngCore;

        /// A stub domain that offers no request types to dream at.
        struct Dreamless {
            prims: PrimitiveSet,
            tasks: Vec<Task>,
        }
        impl Domain for Dreamless {
            fn name(&self) -> &str {
                "dreamless"
            }
            fn primitives(&self) -> &PrimitiveSet {
                &self.prims
            }
            fn train_tasks(&self) -> &[Task] {
                &self.tasks
            }
            fn test_tasks(&self) -> &[Task] {
                &self.tasks
            }
            fn feature_dim(&self) -> usize {
                2
            }
            fn dream_requests(&self) -> Vec<Type> {
                Vec::new()
            }
            fn dream(&self, _: &Expr, _: &Type, _: &mut dyn RngCore) -> Option<Task> {
                None
            }
        }

        let domain = Dreamless {
            prims: base_primitives(),
            tasks: Vec::new(),
        };
        let lib = domain.initial_library();
        let g = Grammar::uniform(Arc::clone(&lib));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut model = RecognitionModel::new(
            Arc::clone(&lib),
            2,
            8,
            Parameterization::Bigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        let f = frontier_for(&g, "(lambda (map (lambda (+ $0 1)) $0))", t.clone());
        let task = Task::io("replay", t, vec![], vec![0.0, 0.0]);
        let rcfg = crate::config::RecognitionConfig {
            fantasies: 10,
            epochs: 2,
            ..crate::config::RecognitionConfig::default()
        };
        // Former panic site: gen_range(0..0) on the empty request list.
        let stats = dream_sleep(&mut model, &domain, &g, &[(&task, &f)], &rcfg, &mut rng);
        assert_eq!(stats.fantasies, 0, "no requests means no fantasies");
        assert_eq!(stats.replays, 1, "replays still train");
        assert!(stats.final_loss.is_finite());
    }

    #[test]
    fn a_panicking_dream_evaluator_degrades_to_skipped_fantasies() {
        use dc_lambda::primitives::PrimitiveSet;
        use rand::RngCore;

        /// A stub domain whose dream executor always panics.
        struct PoisonedDreams {
            prims: PrimitiveSet,
            tasks: Vec<Task>,
        }
        impl Domain for PoisonedDreams {
            fn name(&self) -> &str {
                "poisoned-dreams"
            }
            fn primitives(&self) -> &PrimitiveSet {
                &self.prims
            }
            fn train_tasks(&self) -> &[Task] {
                &self.tasks
            }
            fn test_tasks(&self) -> &[Task] {
                &self.tasks
            }
            fn feature_dim(&self) -> usize {
                2
            }
            fn dream_requests(&self) -> Vec<Type> {
                vec![tint()]
            }
            fn dream(&self, _: &Expr, _: &Type, _: &mut dyn RngCore) -> Option<Task> {
                panic!("injected dream panic");
            }
        }

        let domain = PoisonedDreams {
            prims: base_primitives(),
            tasks: Vec::new(),
        };
        let lib = domain.initial_library();
        let g = Grammar::uniform(Arc::clone(&lib));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let mut model = RecognitionModel::new(
            Arc::clone(&lib),
            2,
            8,
            Parameterization::Bigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        let f = frontier_for(&g, "(lambda (map (lambda (+ $0 1)) $0))", t.clone());
        let task = Task::io("replay", t, vec![], vec![0.0, 0.0]);
        let rcfg = crate::config::RecognitionConfig {
            fantasies: 5,
            epochs: 2,
            ..crate::config::RecognitionConfig::default()
        };
        // Quiet the default per-panic stderr backtrace for this test.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Former crash site: an unwinding `domain.dream` tore down the
        // whole sleep. Each panic now costs exactly its own slot.
        let stats = dream_sleep(&mut model, &domain, &g, &[(&task, &f)], &rcfg, &mut rng);
        std::panic::set_hook(prev_hook);
        assert_eq!(stats.fantasies, 0, "panicking dreams are skipped");
        assert_eq!(stats.replays, 1, "replays still train");
        assert!(stats.final_loss.is_finite());
    }

    #[test]
    fn dream_sleep_trains_on_replays_and_fantasies() {
        let domain = ListDomain::new(0);
        let lib = domain.initial_library();
        let g = Grammar::uniform(Arc::clone(&lib));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let mut model = RecognitionModel::new(
            Arc::clone(&lib),
            domain.feature_dim(),
            16,
            Parameterization::Bigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        let f = frontier_for(&g, "(lambda (map (lambda (+ $0 1)) $0))", t);
        let task = &domain.train_tasks()[0];
        let rcfg = crate::config::RecognitionConfig {
            fantasies: 10,
            epochs: 3,
            ..crate::config::RecognitionConfig::default()
        };
        let stats = dream_sleep(&mut model, &domain, &g, &[(task, &f)], &rcfg, &mut rng);
        assert_eq!(stats.replays, 1);
        assert!(stats.fantasies > 0, "expected some fantasies to execute");
        assert!(stats.final_loss.is_finite());
    }
}
