//! Crash-safe checkpointing of a wake-sleep run (DESIGN.md §8).
//!
//! At the end of every cycle the driver can serialize a [`Checkpoint`] —
//! the grammar, all stored frontiers (as surface syntax), the recognition
//! model's weights and optimizer moments, the RNG state, and the metrics
//! accumulated so far — and write it atomically (temp file + `fsync` +
//! rename) into a checkpoint directory. [`crate::DreamCoder::resume`]
//! restores the run mid-trajectory; with wall-clock budgets disabled the
//! resumed run is bit-identical to an uninterrupted one.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use dc_grammar::persist::{SavedFrontier, SavedGrammar};
use dc_recognition::SavedRecognitionModel;
use serde::{Deserialize, Serialize};

use crate::run::CycleStats;

/// Version stamp written into every checkpoint. Bump on any change to
/// the serialized shape; loaders refuse other versions outright rather
/// than misinterpreting fields.
///
/// v2: `CycleStats` gained per-task `search_traces` forensics.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Serialized ChaCha8 generator state (see `rand_chacha::ChaCha8State`).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SavedRngState {
    /// Key words (8 entries).
    pub key: Vec<u32>,
    /// Block counter.
    pub counter: u64,
    /// Buffered keystream block (16 entries).
    pub block: Vec<u32>,
    /// Next unread word in `block`.
    pub index: usize,
}

impl SavedRngState {
    /// Snapshot a generator.
    pub fn capture(rng: &rand_chacha::ChaCha8Rng) -> SavedRngState {
        let s = rng.state();
        SavedRngState {
            key: s.key.to_vec(),
            counter: s.counter,
            block: s.block.to_vec(),
            index: s.index,
        }
    }

    /// Rebuild the generator this state was captured from.
    ///
    /// # Errors
    /// [`CheckpointError::Corrupt`] when the word vectors have the wrong
    /// lengths (a mangled or hand-edited checkpoint).
    pub fn restore(&self) -> Result<rand_chacha::ChaCha8Rng, CheckpointError> {
        let key: [u32; 8] = self.key.as_slice().try_into().map_err(|_| {
            CheckpointError::Corrupt(format!("rng key has {} words", self.key.len()))
        })?;
        let block: [u32; 16] = self.block.as_slice().try_into().map_err(|_| {
            CheckpointError::Corrupt(format!("rng block has {} words", self.block.len()))
        })?;
        Ok(rand_chacha::ChaCha8Rng::from_state(
            &rand_chacha::ChaCha8State {
                key,
                counter: self.counter,
                block,
                index: self.index,
            },
        ))
    }
}

/// One stored frontier, keyed by its train-task index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskFrontier {
    /// Index into the domain's `train_tasks()`.
    pub task: usize,
    /// The beam, in surface syntax.
    pub frontier: SavedFrontier,
}

/// Everything needed to restore a wake-sleep run mid-trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Domain name, validated on resume.
    pub domain: String,
    /// Condition label, validated on resume.
    pub condition: String,
    /// The run's RNG seed, validated on resume.
    pub seed: u64,
    /// Cycles fully completed before this checkpoint was taken; resume
    /// continues at this cycle index.
    pub cycles_completed: usize,
    /// The generative model `(D, θ)`.
    pub grammar: SavedGrammar,
    /// All stored frontiers, sorted by task index.
    pub frontiers: Vec<TaskFrontier>,
    /// Recognition-model weights, when the condition trains one.
    pub recognition: Option<SavedRecognitionModel>,
    /// RNG state at the end of the checkpointed cycle.
    pub rng: SavedRngState,
    /// Per-cycle metrics accumulated so far.
    pub stats: Vec<CycleStats>,
    /// Invention names in discovery order.
    pub inventions: Vec<String>,
}

/// Error writing, reading, or restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid checkpoint JSON.
    Corrupt(String),
    /// The file's format version is not supported.
    Version {
        /// Version found in the file.
        found: u32,
    },
    /// The checkpoint does not match the run being resumed (different
    /// domain, condition, or seed — or a task index out of range).
    Mismatch(String),
    /// The grammar or a frontier failed to reload.
    Grammar(dc_grammar::persist::LoadError),
    /// The recognition model failed to reload.
    Recognition(dc_recognition::ModelLoadError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint version {found} (supported: {CHECKPOINT_VERSION})"
            ),
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            CheckpointError::Grammar(e) => write!(f, "checkpoint grammar: {e}"),
            CheckpointError::Recognition(e) => write!(f, "checkpoint recognition model: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// `checkpoint-cycle-00042.json` — zero-padded so lexicographic order is
/// cycle order.
fn file_name(cycles_completed: usize) -> String {
    format!("checkpoint-cycle-{cycles_completed:05}.json")
}

/// Parse the cycle count out of a checkpoint file name.
fn parse_cycle(name: &str) -> Option<usize> {
    name.strip_prefix("checkpoint-cycle-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

impl Checkpoint {
    /// Write this checkpoint into `dir` atomically: serialize to a
    /// temporary file in the same directory, `fsync`, then rename onto
    /// `checkpoint-cycle-NNNNN.json`. A crash at any point leaves either
    /// the previous checkpoint set or the complete new file — never a
    /// torn one. Returns the final path.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn write_atomic(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        let timer = dc_telemetry::time("checkpoint.write_time");
        fs::create_dir_all(dir)?;
        let json = serde_json::to_string(self)
            .map_err(|e| CheckpointError::Corrupt(format!("serialize failed: {e}")))?;
        let final_path = dir.join(file_name(self.cycles_completed));
        let tmp_path = dir.join(format!(".{}.tmp", file_name(self.cycles_completed)));
        {
            let mut tmp = fs::File::create(&tmp_path)?;
            tmp.write_all(json.as_bytes())?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        dc_telemetry::add("checkpoint.bytes_written", json.len() as u64);
        dc_telemetry::incr("checkpoint.writes");
        dc_telemetry::event(
            dc_telemetry::Level::Info,
            "checkpoint.written",
            &[
                ("cycles_completed", self.cycles_completed.into()),
                ("bytes", json.len().into()),
                ("ms", (timer.elapsed().as_millis() as u64).into()),
            ],
        );
        drop(timer);
        Ok(final_path)
    }

    /// Read and validate a checkpoint file.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] / [`CheckpointError::Corrupt`] /
    /// [`CheckpointError::Version`].
    pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = fs::read_to_string(path)?;
        let ckpt: Checkpoint = serde_json::from_str(&text)
            .map_err(|e| CheckpointError::Corrupt(format!("{}: {e}", path.display())))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: ckpt.version,
            });
        }
        Ok(ckpt)
    }
}

/// The newest checkpoint in `dir` (highest completed-cycle count), if any.
///
/// # Errors
/// Propagates directory-listing failures; a missing directory reads as
/// "no checkpoints".
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, std::io::Error> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut best: Option<(usize, PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(cycle) = name.to_str().and_then(parse_cycle) else {
            continue;
        };
        if best.as_ref().is_none_or(|(c, _)| cycle > *c) {
            best = Some((cycle, entry.path()));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// Delete all but the `keep` newest checkpoints in `dir`; returns the
/// paths removed. `keep == 0` is treated as 1 (never delete the only
/// recovery point).
///
/// # Errors
/// Propagates directory-listing and unlink failures.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> Result<Vec<PathBuf>, std::io::Error> {
    let keep = keep.max(1);
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut found: Vec<(usize, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(cycle) = name.to_str().and_then(parse_cycle) {
            found.push((cycle, entry.path()));
        }
    }
    found.sort_by_key(|(c, _)| *c);
    let excess = found.len().saturating_sub(keep);
    let mut removed = Vec::with_capacity(excess);
    for (_, path) in found.into_iter().take(excess) {
        fs::remove_file(&path)?;
        dc_telemetry::incr("checkpoint.pruned");
        removed.push(path);
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    fn dummy(cycles_completed: usize) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            domain: "list".into(),
            condition: "DreamCoder".into(),
            seed: 7,
            cycles_completed,
            grammar: SavedGrammar {
                primitives: vec!["+".into()],
                inventions: vec![],
                log_variable: -0.5,
                log_productions: vec![0.25],
            },
            frontiers: vec![],
            recognition: None,
            rng: SavedRngState::capture(&rand_chacha::ChaCha8Rng::seed_from_u64(7)),
            stats: vec![],
            inventions: vec![],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dc-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_round_trip_and_latest() {
        let dir = tmpdir("roundtrip");
        for c in 1..=3 {
            dummy(c).write_atomic(&dir).unwrap();
        }
        let latest = latest_checkpoint(&dir).unwrap().expect("some checkpoint");
        assert!(latest.ends_with("checkpoint-cycle-00003.json"));
        let back = Checkpoint::read(&latest).unwrap();
        assert_eq!(back.cycles_completed, 3);
        assert_eq!(back.seed, 7);
        // No stray temp files survive a successful write.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_newest() {
        let dir = tmpdir("prune");
        for c in 1..=5 {
            dummy(c).write_atomic(&dir).unwrap();
        }
        let removed = prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(removed.len(), 3);
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"checkpoint-cycle-00004.json".to_owned()));
        assert!(names.contains(&"checkpoint-cycle-00005.json".to_owned()));
        // keep == 0 still retains the newest recovery point.
        let removed = prune_checkpoints(&dir, 0).unwrap();
        assert_eq!(removed.len(), 1);
        assert!(latest_checkpoint(&dir).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_and_corruption_are_rejected() {
        let dir = tmpdir("badfiles");
        let mut bad = dummy(1);
        bad.version = 999;
        let path = bad.write_atomic(&dir).unwrap();
        assert!(matches!(
            Checkpoint::read(&path),
            Err(CheckpointError::Version { found: 999 })
        ));
        fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            Checkpoint::read(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            Checkpoint::read(&dir.join("no-such-file.json")),
            Err(CheckpointError::Io(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rng_state_round_trips_through_json() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        for _ in 0..7 {
            rng.next_u32();
        }
        let saved = SavedRngState::capture(&rng);
        let json = serde_json::to_string(&saved).unwrap();
        let back: SavedRngState = serde_json::from_str(&json).unwrap();
        let mut restored = back.restore().unwrap();
        let a: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| restored.next_u64()).collect();
        assert_eq!(a, b);
        // Wrong-length vectors are rejected, not misread.
        let mangled = SavedRngState {
            key: vec![0; 3],
            ..saved
        };
        assert!(matches!(
            mangled.restore(),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
