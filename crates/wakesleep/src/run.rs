//! The full wake/sleep driver (§2.1): iterate waking, abstraction sleep,
//! and dream sleep over a domain, under any of the experimental
//! conditions of Fig 7, recording the metrics the paper plots.

use std::collections::HashMap;
use std::sync::Arc;

use dc_grammar::enumeration::EnumerationConfig;
use dc_grammar::frontier::Frontier;
use dc_grammar::grammar::Grammar;
use dc_grammar::inside_outside::fit_grammar;
use dc_recognition::RecognitionModel;
use dc_tasks::domain::Domain;
use dc_tasks::task::Task;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::Serialize;

use crate::checkpoint::{self, Checkpoint, CheckpointError, SavedRngState, TaskFrontier};
use crate::config::DreamCoderConfig;
use crate::sleep::{abstraction_sleep, dream_sleep};
use crate::wake::{search_task_guarded, wake, Guide, SearchTrace, TaskSearchResult};
use dc_grammar::persist::{load_frontier, load_grammar, save_frontier, save_grammar};
use serde::Deserialize;

/// Per-cycle metrics (the data behind Fig 7A–D).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleStats {
    /// Wake/sleep cycle index (0-based).
    pub cycle: usize,
    /// Distinct training tasks solved so far (cumulative).
    pub train_solved: usize,
    /// Fraction of held-out test tasks solved this cycle.
    pub test_solved: f64,
    /// Library size (number of productions).
    pub library_size: usize,
    /// Library depth (layers of inventions-calling-inventions).
    pub library_depth: usize,
    /// Mean seconds-to-solve over solved test tasks.
    pub mean_solve_time: f64,
    /// Median seconds-to-solve over solved test tasks.
    pub median_solve_time: f64,
    /// Inventions added this cycle.
    pub new_inventions: Vec<String>,
    /// Per-task search forensics for this cycle's wake minibatch
    /// (empty when `collect_search_traces` is off). Adding this field
    /// changed the checkpoint shape — see `CHECKPOINT_VERSION` v2.
    pub search_traces: Vec<SearchTrace>,
}

/// Summary of a complete run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// The condition's display label.
    pub condition: String,
    /// Domain name.
    pub domain: String,
    /// Metrics per cycle.
    pub cycles: Vec<CycleStats>,
    /// Names of all learned inventions, in discovery order.
    pub library: Vec<String>,
    /// Final held-out accuracy.
    pub final_test_solved: f64,
}

/// A DreamCoder learning run over one domain.
pub struct DreamCoder<'d> {
    domain: &'d dyn Domain,
    config: DreamCoderConfig,
    /// Current generative model `(D, θ)`.
    pub grammar: Grammar,
    /// Current recognition model, if the condition uses one.
    pub recognition: Option<RecognitionModel>,
    /// Best frontiers per train-task index.
    pub frontiers: HashMap<usize, Frontier>,
    rng: rand_chacha::ChaCha8Rng,
    inventions: Vec<String>,
    /// Metrics for cycles completed so far (preloaded on resume).
    stats: Vec<CycleStats>,
    /// First cycle index `run` executes (non-zero after resume).
    start_cycle: usize,
}

impl<'d> DreamCoder<'d> {
    /// Set up a run on `domain`.
    pub fn new(domain: &'d dyn Domain, config: DreamCoderConfig) -> DreamCoder<'d> {
        let library = domain.initial_library();
        let grammar = Grammar::uniform(Arc::clone(&library));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(config.seed);
        let recognition = if config.condition.uses_recognition() {
            Some(RecognitionModel::new(
                library,
                domain.feature_dim(),
                config.recognition.hidden_dim,
                config.recognition.parameterization,
                config.recognition.objective,
                config.recognition.learning_rate,
                &mut rng,
            ))
        } else {
            None
        };
        DreamCoder {
            domain,
            config,
            grammar,
            recognition,
            frontiers: HashMap::new(),
            rng,
            inventions: Vec::new(),
            stats: Vec::new(),
            start_cycle: 0,
        }
    }

    /// Restore a run mid-trajectory from a [`Checkpoint`]: the grammar,
    /// stored frontiers, recognition weights, RNG state, and accumulated
    /// metrics all pick up exactly where the checkpointed run left off.
    /// `run` then continues at cycle `checkpoint.cycles_completed`.
    ///
    /// # Errors
    /// [`CheckpointError::Mismatch`] when the checkpoint was taken under
    /// a different domain, condition, or seed (or references a train task
    /// the domain no longer has); [`CheckpointError::Grammar`] /
    /// [`CheckpointError::Recognition`] when stored state fails to reload
    /// against the domain's primitive set.
    pub fn resume(
        domain: &'d dyn Domain,
        config: DreamCoderConfig,
        ckpt: &Checkpoint,
    ) -> Result<DreamCoder<'d>, CheckpointError> {
        if ckpt.version != checkpoint::CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: ckpt.version,
            });
        }
        if ckpt.domain != domain.name() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for domain {:?}, resuming {:?}",
                ckpt.domain,
                domain.name()
            )));
        }
        if ckpt.condition != config.condition.label() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for condition {:?}, resuming {:?}",
                ckpt.condition,
                config.condition.label()
            )));
        }
        if ckpt.seed != config.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has seed {}, config has {}",
                ckpt.seed, config.seed
            )));
        }
        let grammar =
            load_grammar(&ckpt.grammar, domain.primitives()).map_err(CheckpointError::Grammar)?;
        let train = domain.train_tasks();
        let mut frontiers = HashMap::with_capacity(ckpt.frontiers.len());
        for tf in &ckpt.frontiers {
            let Some(task) = train.get(tf.task) else {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint frontier references train task {} but the domain has {}",
                    tf.task,
                    train.len()
                )));
            };
            let frontier = load_frontier(&tf.frontier, task.request.clone(), domain.primitives())
                .map_err(CheckpointError::Grammar)?;
            frontiers.insert(tf.task, frontier);
        }
        let recognition = if config.condition.uses_recognition() {
            let saved = ckpt.recognition.clone().ok_or_else(|| {
                CheckpointError::Mismatch(
                    "condition uses a recognition model but the checkpoint stores none".into(),
                )
            })?;
            Some(
                RecognitionModel::from_saved(saved, Arc::clone(&grammar.library))
                    .map_err(CheckpointError::Recognition)?,
            )
        } else {
            None
        };
        let rng = ckpt.rng.restore()?;
        dc_telemetry::incr("checkpoint.resumes");
        dc_telemetry::event(
            dc_telemetry::Level::Info,
            "checkpoint.resumed",
            &[
                ("domain", ckpt.domain.as_str().into()),
                ("cycles_completed", ckpt.cycles_completed.into()),
                ("frontiers", ckpt.frontiers.len().into()),
            ],
        );
        Ok(DreamCoder {
            domain,
            config,
            grammar,
            recognition,
            frontiers,
            rng,
            inventions: ckpt.inventions.clone(),
            stats: ckpt.stats.clone(),
            start_cycle: ckpt.cycles_completed,
        })
    }

    /// Snapshot the run's full mutable state after `cycles_completed`
    /// cycles (see DESIGN.md §8 for the format contract).
    pub fn checkpoint(&self, cycles_completed: usize) -> Checkpoint {
        let mut keys: Vec<usize> = self.frontiers.keys().copied().collect();
        keys.sort_unstable();
        Checkpoint {
            version: checkpoint::CHECKPOINT_VERSION,
            domain: self.domain.name().to_owned(),
            condition: self.config.condition.label().to_owned(),
            seed: self.config.seed,
            cycles_completed,
            grammar: save_grammar(&self.grammar),
            frontiers: keys
                .into_iter()
                .map(|k| TaskFrontier {
                    task: k,
                    frontier: save_frontier(&self.frontiers[&k]),
                })
                .collect(),
            recognition: self.recognition.as_ref().map(RecognitionModel::to_saved),
            rng: SavedRngState::capture(&self.rng),
            stats: self.stats.clone(),
            inventions: self.inventions.clone(),
        }
    }

    fn guide_for(&self, task: &Task) -> Guide {
        match &self.recognition {
            Some(model) => Guide::Recognition(model.predict(&task.features)),
            None => Guide::Generative(self.grammar.clone()),
        }
    }

    /// One wake phase over a random minibatch; merges new solutions into
    /// the stored frontiers. Returns the minibatch outcome.
    pub fn wake_cycle(&mut self) -> Vec<(usize, TaskSearchResult)> {
        let train = self.domain.train_tasks();
        let mut indices: Vec<usize> = (0..train.len()).collect();
        indices.shuffle(&mut self.rng);
        indices.truncate(self.config.minibatch.max(1));
        let tasks: Vec<&Task> = indices.iter().map(|&i| &train[i]).collect();
        // `predict` decodes a full bigram tensor per task — parallelize it
        // like the search itself. The collect preserves task order, so the
        // guides (and everything downstream) are thread-count-invariant.
        let guides: Vec<Guide> = {
            let _span = dc_telemetry::span("wake.predict");
            tasks.par_iter().map(|t| self.guide_for(t)).collect()
        };
        let results = wake(
            &tasks,
            &guides,
            &self.grammar,
            self.config.beam_size,
            &self.config.enumeration,
        );
        let paired: Vec<(usize, TaskSearchResult)> = indices.into_iter().zip(results).collect();
        for (i, result) in &paired {
            if result.frontier.is_empty() {
                continue;
            }
            let slot = self
                .frontiers
                .entry(*i)
                .or_insert_with(|| Frontier::new(result.frontier.request.clone()));
            for entry in &result.frontier.entries {
                slot.insert(entry.clone(), self.config.beam_size);
            }
        }
        paired
    }

    /// One abstraction sleep over all stored frontiers.
    pub fn abstraction_cycle(&mut self) -> Vec<String> {
        if self.frontiers.is_empty() {
            return Vec::new();
        }
        let mut keys: Vec<usize> = self.frontiers.keys().copied().collect();
        keys.sort_unstable();
        let fronts: Vec<Frontier> = keys
            .iter()
            .map(|k| {
                let mut f = self.frontiers[k].clone();
                f.entries.truncate(self.config.compression_beam.max(1));
                f
            })
            .collect();
        let result = abstraction_sleep(
            &self.grammar.library,
            &fronts,
            &self.config.compression,
            self.config.condition,
        );
        for (k, f) in keys.into_iter().zip(result.frontiers) {
            self.frontiers.insert(k, f);
        }
        self.grammar = result.grammar;
        let new: Vec<String> = result
            .steps
            .iter()
            .map(|s| s.invention.name.clone())
            .collect();
        self.inventions.extend(new.clone());
        // The library changed: rebuild the recognition model's output head
        // over the new production set, keeping the learned hidden layers.
        if let Some(old) = self.recognition.take() {
            let mut rebuilt = old.rebuild_for_library(
                Arc::clone(&self.grammar.library),
                self.config.recognition.learning_rate,
                &mut self.rng,
            );
            rebuilt.set_prior_bias(Some(self.grammar.weights.clone()));
            self.recognition = Some(rebuilt);
        }
        new
    }

    /// One dream sleep (no-op when the condition has no recognition model).
    pub fn dream_cycle(&mut self) -> Option<crate::sleep::DreamStats> {
        let model = self.recognition.as_mut()?;
        let train = self.domain.train_tasks();
        // NeuralOnly (RobustFill-style) trains on samples from the *initial*
        // library: its grammar never changes, so this is the same call.
        //
        // Replay order feeds SGD directly, so it must not depend on
        // HashMap iteration order: sort by task index.
        let mut keys: Vec<usize> = self.frontiers.keys().copied().collect();
        keys.sort_unstable();
        let solved: Vec<(&Task, &Frontier)> = keys
            .iter()
            .map(|&i| (&train[i], &self.frontiers[&i]))
            .collect();
        Some(dream_sleep(
            model,
            self.domain,
            &self.grammar,
            &solved,
            &self.config.recognition,
            &mut self.rng,
        ))
    }

    /// Evaluate on held-out test tasks; returns (fraction solved, solve
    /// times of solved tasks).
    pub fn evaluate(&self, tasks: &[Task], config: &EnumerationConfig) -> (f64, Vec<f64>) {
        if tasks.is_empty() {
            return (0.0, Vec::new());
        }
        use rayon::prelude::*;
        // As in `wake`: worker span stacks start empty, so hand the
        // current span in by handle to keep eval searches nested.
        let parent = dc_telemetry::current_span();
        let results: Vec<TaskSearchResult> = tasks
            .par_iter()
            .map(|task| {
                let _span = dc_telemetry::span_under(parent, "eval.search");
                let guide = self.guide_for(task);
                search_task_guarded(task, &guide, &self.grammar, self.config.beam_size, config)
            })
            .collect();
        // Wall clock is the only nondeterministic input to a seeded run;
        // under `deterministic_timing` the solve-time metrics report zero.
        let times: Vec<f64> = if self.config.deterministic_timing {
            Vec::new()
        } else {
            results.iter().filter_map(|r| r.solve_time).collect()
        };
        let solved = results.iter().filter(|r| !r.frontier.is_empty()).count();
        (solved as f64 / tasks.len() as f64, times)
    }

    /// Run the full wake/sleep loop, returning per-cycle metrics. After a
    /// [`DreamCoder::resume`], picks up at the first uncompleted cycle and
    /// the returned summary covers the whole trajectory, restored cycles
    /// included.
    pub fn run(&mut self) -> RunSummary {
        for cycle in self.start_cycle..self.config.cycles {
            // A requested interrupt (first Ctrl-C) is honored at cycle
            // granularity: the last completed cycle's checkpoint is the
            // resume point, so stopping between cycles loses nothing.
            if dc_telemetry::interrupt_requested() {
                dc_telemetry::event(
                    dc_telemetry::Level::Warn,
                    "run.interrupted",
                    &[("before_cycle", cycle.into())],
                );
                dc_telemetry::set_status("phase", "interrupted");
                break;
            }
            dc_telemetry::set_status("cycle", cycle);
            let cycle_timer = dc_telemetry::span("cycle.total");
            let search_traces;
            {
                dc_telemetry::set_status("phase", "wake");
                let _wake = dc_telemetry::span("cycle.wake");
                let results = self.wake_cycle();
                search_traces = if self.config.collect_search_traces {
                    results
                        .iter()
                        .map(|(_, r)| {
                            let mut trace = r.trace.clone();
                            if self.config.deterministic_timing {
                                // Same scrub as the solve-time metrics:
                                // wall clock must not reach the summary.
                                trace.solve_time = None;
                            }
                            trace
                        })
                        .collect()
                } else {
                    Vec::new()
                };
            }
            let mut new_inventions = Vec::new();
            {
                dc_telemetry::set_status("phase", "compression");
                let _compression = dc_telemetry::span("cycle.compression");
                if self.config.condition.uses_compression() {
                    new_inventions = self.abstraction_cycle();
                } else if !self.frontiers.is_empty() {
                    // Still re-fit θ to the discovered programs (wake maximizes
                    // ℒ w.r.t. beams; θ update is free). Float summation order
                    // inside the fit depends on frontier order, so sort by
                    // task index rather than taking HashMap order.
                    let mut keys: Vec<usize> = self.frontiers.keys().copied().collect();
                    keys.sort_unstable();
                    let fronts: Vec<Frontier> =
                        keys.iter().map(|k| self.frontiers[k].clone()).collect();
                    self.grammar = fit_grammar(
                        &self.grammar.library,
                        &fronts,
                        self.config.compression.pseudocounts,
                    );
                    // The stored beams still carry priors from the *previous*
                    // θ; rescore them so beam ordering, dream-sleep replay
                    // targets, and checkpoints all agree with the refit
                    // grammar (the compression path does this via
                    // abstraction_sleep's rewrite).
                    let grammar = &self.grammar;
                    for frontier in self.frontiers.values_mut() {
                        let request = frontier.request.clone();
                        frontier.rescore(|e| grammar.log_prior(&request, e));
                    }
                }
            }
            if self.config.condition.uses_recognition() {
                dc_telemetry::set_status("phase", "dream");
                let _dream = dc_telemetry::span("cycle.dream");
                // The network predicts a residual on top of the current
                // fitted generative weights (see RecognitionModel docs).
                let bias = self.grammar.weights.clone();
                if let Some(model) = self.recognition.as_mut() {
                    model.set_prior_bias(Some(bias));
                }
                self.dream_cycle();
            }
            dc_telemetry::set_status("phase", "eval");
            let eval_timer = dc_telemetry::span("cycle.eval");
            let (test_solved, times) =
                self.evaluate(self.domain.test_tasks(), &self.config.test_enumeration);
            drop(eval_timer);
            let mean = if times.is_empty() {
                0.0
            } else {
                times.iter().sum::<f64>() / times.len() as f64
            };
            let median = median(&times);
            dc_telemetry::incr("cycle.count");
            dc_telemetry::set_gauge("library.size", self.grammar.library.len() as f64);
            dc_telemetry::set_gauge("library.depth", self.grammar.library.depth() as f64);
            dc_telemetry::set_gauge("train.solved", self.frontiers.len() as f64);
            dc_telemetry::set_gauge("test.solved_fraction", test_solved);
            dc_telemetry::set_status("cycles_completed", cycle + 1);
            dc_telemetry::set_status("train_solved", self.frontiers.len());
            dc_telemetry::set_status("test_solved_fraction", test_solved);
            dc_telemetry::set_status("library_size", self.grammar.library.len());
            dc_telemetry::event(
                dc_telemetry::Level::Info,
                "cycle.complete",
                &[
                    ("cycle", cycle.into()),
                    (
                        "total_ms",
                        (cycle_timer.elapsed().as_millis() as u64).into(),
                    ),
                    ("train_solved", self.frontiers.len().into()),
                    ("test_solved", test_solved.into()),
                    ("library_size", self.grammar.library.len().into()),
                    ("new_inventions", new_inventions.len().into()),
                ],
            );
            drop(cycle_timer);
            self.stats.push(CycleStats {
                cycle,
                train_solved: self.frontiers.len(),
                test_solved,
                library_size: self.grammar.library.len(),
                library_depth: self.grammar.library.depth(),
                mean_solve_time: mean,
                median_solve_time: median,
                new_inventions,
                search_traces,
            });
            if let Some(dir) = self.config.checkpoint_dir.clone() {
                let ckpt = self.checkpoint(cycle + 1);
                match ckpt.write_atomic(&dir) {
                    Ok(_) => {
                        dc_telemetry::set_status(
                            "last_checkpoint_unix_ms",
                            dc_telemetry::unix_time_ms(),
                        );
                        if let Err(err) =
                            checkpoint::prune_checkpoints(&dir, self.config.checkpoint_keep)
                        {
                            dc_telemetry::event(
                                dc_telemetry::Level::Warn,
                                "checkpoint.prune_failed",
                                &[("error", err.to_string().into())],
                            );
                        }
                    }
                    // A failed checkpoint write must not kill the run: the
                    // in-memory state is intact, only crash-resumability at
                    // this cycle is lost.
                    Err(err) => dc_telemetry::event(
                        dc_telemetry::Level::Warn,
                        "checkpoint.write_failed",
                        &[("cycle", cycle.into()), ("error", err.to_string().into())],
                    ),
                }
            }
        }
        let final_test_solved = self.stats.last().map_or(0.0, |c| c.test_solved);
        if !dc_telemetry::interrupt_requested() {
            dc_telemetry::set_status("phase", "done");
        }
        RunSummary {
            condition: self.config.condition.label().to_owned(),
            domain: self.domain.name().to_owned(),
            cycles: self.stats.clone(),
            library: self.inventions.clone(),
            final_test_solved,
        }
    }
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        0.5 * (v[mid - 1] + v[mid])
    } else {
        v[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Condition;
    use dc_tasks::domains::list::ListDomain;
    use std::time::Duration;

    fn quick_config(condition: Condition) -> DreamCoderConfig {
        DreamCoderConfig {
            condition,
            cycles: 2,
            minibatch: 6,
            enumeration: EnumerationConfig {
                timeout: Some(Duration::from_millis(300)),
                ..EnumerationConfig::default()
            },
            test_enumeration: EnumerationConfig {
                timeout: Some(Duration::from_millis(150)),
                ..EnumerationConfig::default()
            },
            compression: dc_vspace::CompressionConfig {
                refactor_steps: 1,
                top_candidates: 20,
                max_inventions: 2,
                ..dc_vspace::CompressionConfig::default()
            },
            recognition: crate::config::RecognitionConfig {
                fantasies: 5,
                epochs: 3,
                ..crate::config::RecognitionConfig::default()
            },
            seed: 1,
            ..DreamCoderConfig::default()
        }
    }

    #[test]
    fn full_run_makes_progress_on_lists() {
        // Version-space refactoring recurses deeply enough to overflow
        // the default test-thread stack in unoptimized builds, so run
        // the whole cycle on a thread with room to spare.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let domain = ListDomain::new(0);
                let mut dc = DreamCoder::new(&domain, quick_config(Condition::Full));
                let summary = dc.run();
                assert_eq!(summary.cycles.len(), 2);
                assert!(
                    summary.cycles.last().unwrap().train_solved > 0,
                    "should solve some easy training tasks"
                );
                assert!(summary.cycles.last().unwrap().test_solved > 0.0);
            })
            .expect("spawn test thread")
            .join()
            .expect("full run panicked");
    }

    #[test]
    fn enumeration_only_never_learns() {
        let domain = ListDomain::new(0);
        let mut dc = DreamCoder::new(&domain, quick_config(Condition::EnumerationOnly));
        let summary = dc.run();
        assert!(summary.library.is_empty());
        let sizes: Vec<usize> = summary.cycles.iter().map(|c| c.library_size).collect();
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "library must not grow"
        );
    }

    #[test]
    fn memorize_grows_library_without_depth() {
        let domain = ListDomain::new(0);
        let mut dc = DreamCoder::new(
            &domain,
            quick_config(Condition::Memorize {
                with_recognition: false,
            }),
        );
        let summary = dc.run();
        let last = summary.cycles.last().unwrap();
        if last.train_solved > 0 {
            assert!(last.library_size > domain.initial_library().len());
            assert!(last.library_depth <= 1, "memorized routines never nest");
        }
    }

    /// Enumeration bounded by nats budget instead of wall clock, timing
    /// metrics zeroed: nothing nondeterministic feeds the summary.
    fn deterministic_config(condition: Condition, cycles: usize, seed: u64) -> DreamCoderConfig {
        DreamCoderConfig {
            condition,
            cycles,
            minibatch: 5,
            enumeration: EnumerationConfig {
                timeout: None,
                max_budget: 8.0,
                ..EnumerationConfig::default()
            },
            test_enumeration: EnumerationConfig {
                timeout: None,
                max_budget: 6.5,
                ..EnumerationConfig::default()
            },
            compression: dc_vspace::CompressionConfig {
                refactor_steps: 1,
                top_candidates: 10,
                max_inventions: 1,
                ..dc_vspace::CompressionConfig::default()
            },
            recognition: crate::config::RecognitionConfig {
                fantasies: 3,
                epochs: 2,
                hidden_dim: 8,
                ..crate::config::RecognitionConfig::default()
            },
            seed,
            deterministic_timing: true,
            ..DreamCoderConfig::default()
        }
    }

    #[test]
    fn seeded_full_runs_are_byte_identical() {
        // Regression test for the HashMap-iteration nondeterminism bugs:
        // two runs with the same seed must produce the same summary JSON.
        let run_once = || {
            let domain = ListDomain::new(0);
            let mut dc = DreamCoder::new(&domain, deterministic_config(Condition::Full, 2, 7));
            serde_json::to_string(&dc.run()).expect("summary serializes")
        };
        let spawn = || {
            std::thread::Builder::new()
                .stack_size(64 * 1024 * 1024)
                .spawn(run_once)
                .expect("spawn test thread")
        };
        let first = spawn().join().expect("first run panicked");
        let second = spawn().join().expect("second run panicked");
        assert_eq!(first, second, "seeded runs diverged");
    }

    #[test]
    fn no_compression_refit_rescores_stored_frontiers() {
        // Regression test: the θ-refit branch used to refit the grammar but
        // leave the stored beams scored under the stale θ. Runs on a big
        // stack for the same reason as `full_run_makes_progress_on_lists`.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let domain = ListDomain::new(0);
                let mut dc = DreamCoder::new(&domain, quick_config(Condition::NoCompression));
                dc.run();
                assert!(!dc.frontiers.is_empty(), "should solve some tasks");
                for frontier in dc.frontiers.values() {
                    for entry in &frontier.entries {
                        let expected = dc.grammar.log_prior(&frontier.request, &entry.expr);
                        assert!(
                            (entry.log_prior - expected).abs() < 1e-9,
                            "stored prior {} disagrees with refit grammar {}",
                            entry.log_prior,
                            expected
                        );
                    }
                }
            })
            .expect("spawn test thread")
            .join()
            .expect("refit run panicked");
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
    }
}
