//! End-to-end checkpoint/resume tests (DESIGN.md §8): a resumed run must
//! be indistinguishable — bit for bit — from one that never stopped.

use std::path::PathBuf;
use std::sync::Arc;

use dc_grammar::enumeration::EnumerationConfig;
use dc_lambda::expr::{Expr, Invented};
use dc_wakesleep::checkpoint::{latest_checkpoint, Checkpoint, CheckpointError};
use dc_wakesleep::{Condition, DreamCoder, DreamCoderConfig};

use dc_tasks::domain::Domain;
use dc_tasks::domains::list::ListDomain;

/// Wall clock removed from the loop: enumeration bounded by nats budget,
/// solve-time metrics zeroed.
fn deterministic_config(condition: Condition, cycles: usize, seed: u64) -> DreamCoderConfig {
    DreamCoderConfig {
        condition,
        cycles,
        minibatch: 5,
        enumeration: EnumerationConfig {
            timeout: None,
            max_budget: 8.0,
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: None,
            max_budget: 6.5,
            ..EnumerationConfig::default()
        },
        compression: dc_vspace::CompressionConfig {
            refactor_steps: 1,
            top_candidates: 10,
            max_inventions: 1,
            ..dc_vspace::CompressionConfig::default()
        },
        recognition: dc_wakesleep::RecognitionConfig {
            fantasies: 3,
            epochs: 2,
            hidden_dim: 8,
            ..dc_wakesleep::RecognitionConfig::default()
        },
        seed,
        deterministic_timing: true,
        ..DreamCoderConfig::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-resume-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Version-space refactoring recurses deeply enough to overflow the
/// default test-thread stack in unoptimized builds.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn test thread")
        .join()
        .expect("test thread panicked")
}

#[test]
fn resume_after_interrupt_matches_uninterrupted_run() {
    on_big_stack(|| {
        let dir = tmpdir("interrupt");
        // Reference: three cycles straight through.
        let uninterrupted = {
            let domain = ListDomain::new(0);
            let mut dc = DreamCoder::new(&domain, deterministic_config(Condition::Full, 3, 11));
            serde_json::to_string(&dc.run()).unwrap()
        };
        // Interrupted: run one cycle with checkpointing on, "crash", then
        // resume from the newest checkpoint and finish the other two.
        {
            let domain = ListDomain::new(0);
            let mut cfg = deterministic_config(Condition::Full, 1, 11);
            cfg.checkpoint_dir = Some(dir.clone());
            let mut dc = DreamCoder::new(&domain, cfg);
            dc.run();
        }
        let resumed = {
            let path = latest_checkpoint(&dir)
                .unwrap()
                .expect("checkpoint written");
            let ckpt = Checkpoint::read(&path).unwrap();
            assert_eq!(ckpt.cycles_completed, 1);
            let domain = ListDomain::new(0);
            let mut dc =
                DreamCoder::resume(&domain, deterministic_config(Condition::Full, 3, 11), &ckpt)
                    .expect("resume");
            serde_json::to_string(&dc.run()).unwrap()
        };
        assert_eq!(
            resumed, uninterrupted,
            "resumed trajectory diverged from the uninterrupted one"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

#[test]
fn checkpoint_survives_disk_round_trip_bit_for_bit() {
    on_big_stack(|| {
        let dir = tmpdir("bitexact");
        let domain = ListDomain::new(0);
        let mut dc = DreamCoder::new(&domain, deterministic_config(Condition::Full, 1, 5));
        dc.run();
        let ckpt = dc.checkpoint(1);
        assert!(!ckpt.frontiers.is_empty(), "should have solved something");
        assert!(
            ckpt.recognition.is_some(),
            "Full trains a recognition model"
        );
        let path = ckpt.write_atomic(&dir).unwrap();
        let back = Checkpoint::read(&path).unwrap();
        // Resuming from the file and immediately re-checkpointing must
        // reproduce the identical bytes: grammar θ, frontier scores,
        // recognition weights + Adam moments, and RNG state all survive.
        let resumed =
            DreamCoder::resume(&domain, deterministic_config(Condition::Full, 1, 5), &back)
                .expect("resume");
        let again = resumed.checkpoint(1);
        assert_eq!(
            serde_json::to_string(&ckpt).unwrap(),
            serde_json::to_string(&again).unwrap(),
            "checkpoint → disk → resume → checkpoint must be a fixed point"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

#[test]
fn nested_inventions_survive_a_checkpoint() {
    let domain = ListDomain::new(0);
    let prims = domain.primitives();
    let mut dc = DreamCoder::new(
        &domain,
        deterministic_config(Condition::NoRecognition, 1, 3),
    );
    // Splice a two-layer library into the snapshot: quad calls double.
    let mut ckpt = dc.checkpoint(0);
    let double_body = Expr::parse("(lambda (+ $0 $0))", prims).unwrap();
    let double = Invented::new("#(lambda (+ $0 $0))", double_body).unwrap();
    let quad_body = Expr::abstraction(Expr::application(
        Expr::Invented(Arc::clone(&double)),
        Expr::application(Expr::Invented(double), Expr::Index(0)),
    ));
    ckpt.grammar.inventions.push("(lambda (+ $0 $0))".into());
    ckpt.grammar.inventions.push(quad_body.to_string());
    ckpt.grammar.log_productions.push(-0.25);
    ckpt.grammar.log_productions.push(-1.5);
    ckpt.inventions.push("#(lambda (+ $0 $0))".into());
    ckpt.inventions.push(format!("#{quad_body}"));

    dc = DreamCoder::resume(
        &domain,
        deterministic_config(Condition::NoRecognition, 1, 3),
        &ckpt,
    )
    .expect("resume with nested inventions");
    assert_eq!(dc.grammar.library.depth(), 2, "nesting must survive");
    let again = dc.checkpoint(0);
    assert_eq!(
        serde_json::to_string(&ckpt).unwrap(),
        serde_json::to_string(&again).unwrap()
    );
}

#[test]
fn resume_rejects_mismatched_runs() {
    let domain = ListDomain::new(0);
    let dc = DreamCoder::new(&domain, deterministic_config(Condition::Full, 1, 5));
    let ckpt = dc.checkpoint(0);

    let wrong_seed = deterministic_config(Condition::Full, 1, 6);
    assert!(matches!(
        DreamCoder::resume(&domain, wrong_seed, &ckpt),
        Err(CheckpointError::Mismatch(_))
    ));

    let wrong_condition = deterministic_config(Condition::EnumerationOnly, 1, 5);
    assert!(matches!(
        DreamCoder::resume(&domain, wrong_condition, &ckpt),
        Err(CheckpointError::Mismatch(_))
    ));

    let mut wrong_version = ckpt.clone();
    wrong_version.version = 99;
    assert!(matches!(
        DreamCoder::resume(
            &domain,
            deterministic_config(Condition::Full, 1, 5),
            &wrong_version
        ),
        Err(CheckpointError::Version { found: 99 })
    ));

    let mut bad_task = ckpt.clone();
    bad_task
        .frontiers
        .push(dc_wakesleep::checkpoint::TaskFrontier {
            task: usize::MAX,
            frontier: dc_grammar::persist::SavedFrontier { entries: vec![] },
        });
    assert!(matches!(
        DreamCoder::resume(
            &domain,
            deterministic_config(Condition::Full, 1, 5),
            &bad_task
        ),
        Err(CheckpointError::Mismatch(_))
    ));
}
