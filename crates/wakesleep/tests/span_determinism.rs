//! Thread-count invariance of the span tree (DESIGN.md §10): a seeded
//! deterministic run must produce an identical span *shape* — the set of
//! slash-joined span paths and their call counts — whether it runs on one
//! worker thread or four. Span nodes are keyed on (parent, name), never
//! on thread identity, so the aggregated tree is part of the §8
//! determinism contract even though per-span durations are wall clock.

use dc_grammar::enumeration::EnumerationConfig;
use dc_tasks::domains::list::ListDomain;
use dc_wakesleep::{Condition, DreamCoder, DreamCoderConfig};

/// Wall clock removed from the loop, MAP fantasies bounded by nats, so
/// the amount of work — and therefore every span count — is seeded.
fn span_config(seed: u64) -> DreamCoderConfig {
    DreamCoderConfig {
        condition: Condition::Full,
        cycles: 2,
        minibatch: 5,
        enumeration: EnumerationConfig {
            timeout: None,
            max_budget: 8.0,
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: None,
            max_budget: 6.5,
            ..EnumerationConfig::default()
        },
        compression: dc_vspace::CompressionConfig {
            refactor_steps: 1,
            top_candidates: 10,
            max_inventions: 1,
            ..dc_vspace::CompressionConfig::default()
        },
        recognition: dc_wakesleep::RecognitionConfig {
            fantasies: 4,
            epochs: 2,
            hidden_dim: 8,
            map_fantasies: true,
            map_fantasy_budget: Some(6.0),
            ..dc_wakesleep::RecognitionConfig::default()
        },
        seed,
        deterministic_timing: true,
        ..DreamCoderConfig::default()
    }
}

/// Version-space refactoring recurses deeply enough to overflow the
/// default test-thread stack in unoptimized builds.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn test thread")
        .join()
        .expect("test thread panicked")
}

#[test]
fn span_tree_shape_is_identical_across_thread_counts() {
    dc_telemetry::enable();
    let shape_with = |cap: usize| {
        dc_telemetry::reset_spans();
        on_big_stack(move || {
            rayon::with_max_threads(Some(cap), || {
                let domain = ListDomain::new(0);
                let mut dc = DreamCoder::new(&domain, span_config(23));
                dc.run();
            })
        });
        dc_telemetry::span_shape()
    };
    let single = shape_with(1);
    let many = shape_with(4);
    assert!(
        single
            .iter()
            .any(|(path, _)| path == "cycle.total/cycle.wake/wake.search"),
        "expected wake.search spans nested under cycle.wake, got {single:?}"
    );
    assert!(
        single
            .iter()
            .any(|(path, _)| path == "cycle.total/cycle.dream/dream.fantasies/dream.fantasy"),
        "expected dream.fantasy spans nested under cycle.dream, got {single:?}"
    );
    assert_eq!(
        single, many,
        "span tree shape diverged between 1 and 4 worker threads"
    );
}
