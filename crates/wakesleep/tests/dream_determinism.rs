//! Thread-count invariance of dream sleep (DESIGN.md §9): a seeded run
//! must produce bit-identical fantasies, losses, and summaries whether it
//! dreams on one thread or many — and a checkpoint written by a
//! multi-threaded run must resume identically on any thread count.

use std::path::PathBuf;
use std::sync::Mutex;

use dc_grammar::enumeration::EnumerationConfig;
use dc_grammar::grammar::Grammar;
use dc_tasks::domain::Domain;
use dc_tasks::domains::list::ListDomain;
use dc_wakesleep::checkpoint::{latest_checkpoint, Checkpoint};
use dc_wakesleep::{generate_fantasies, Condition, DreamCoder, DreamCoderConfig};

/// Serializes tests that re-cap the process-global rayon thread limit.
static CAP_LOCK: Mutex<()> = Mutex::new(());

/// Wall clock removed from the loop, MAP fantasies bounded by nats so the
/// dream phase itself is deterministic (DESIGN.md §8).
fn dream_config(cycles: usize, seed: u64) -> DreamCoderConfig {
    DreamCoderConfig {
        condition: Condition::Full,
        cycles,
        minibatch: 5,
        enumeration: EnumerationConfig {
            timeout: None,
            max_budget: 8.0,
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: None,
            max_budget: 6.5,
            ..EnumerationConfig::default()
        },
        compression: dc_vspace::CompressionConfig {
            refactor_steps: 1,
            top_candidates: 10,
            max_inventions: 1,
            ..dc_vspace::CompressionConfig::default()
        },
        recognition: dc_wakesleep::RecognitionConfig {
            fantasies: 4,
            epochs: 2,
            hidden_dim: 8,
            map_fantasies: true,
            map_fantasy_budget: Some(6.0),
            ..dc_wakesleep::RecognitionConfig::default()
        },
        seed,
        deterministic_timing: true,
        ..DreamCoderConfig::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-dream-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Version-space refactoring recurses deeply enough to overflow the
/// default test-thread stack in unoptimized builds.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn test thread")
        .join()
        .expect("test thread panicked")
}

/// A printable fingerprint of a fantasy set: every float down to its bits.
fn fingerprint(examples: &[dc_recognition::TrainingExample]) -> Vec<String> {
    examples
        .iter()
        .map(|ex| {
            let feats: Vec<u64> = ex.features.iter().map(|f| f.to_bits()).collect();
            let progs: Vec<String> = ex
                .programs
                .iter()
                .map(|(e, w)| format!("{e}@{}", w.to_bits()))
                .collect();
            format!("{:?} | {:?} | {:?}", ex.request, feats, progs)
        })
        .collect()
}

#[test]
fn fantasy_sets_are_identical_at_any_thread_count() {
    let _guard = CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let domain = ListDomain::new(0);
    let lib = domain.initial_library();
    let grammar = Grammar::uniform(lib);
    let rcfg = dc_wakesleep::RecognitionConfig {
        fantasies: 8,
        map_fantasies: true,
        map_fantasy_budget: Some(6.0),
        ..dc_wakesleep::RecognitionConfig::default()
    };
    let stream_key = 0x5eed_cafe_f00d_u64;
    let single = rayon::with_max_threads(Some(1), || {
        generate_fantasies(&domain, &grammar, &rcfg, stream_key)
    });
    let many = rayon::with_max_threads(Some(4), || {
        generate_fantasies(&domain, &grammar, &rcfg, stream_key)
    });
    assert!(!single.is_empty(), "list domain should dream something");
    assert_eq!(
        fingerprint(&single),
        fingerprint(&many),
        "fantasy set depends on thread count"
    );
}

#[test]
fn seeded_full_runs_are_byte_identical_across_thread_counts() {
    let _guard = CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run_with = |cap: Option<usize>| {
        on_big_stack(move || {
            rayon::with_max_threads(cap, || {
                let domain = ListDomain::new(0);
                let mut dc = DreamCoder::new(&domain, dream_config(2, 23));
                serde_json::to_string(&dc.run()).unwrap()
            })
        })
    };
    let single = run_with(Some(1));
    let many = run_with(Some(4));
    assert_eq!(
        single, many,
        "summary JSON diverged between DC_THREADS=1 and 4"
    );
}

#[test]
fn checkpoint_from_a_parallel_dream_resumes_identically_on_one_thread() {
    let _guard = CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmpdir("xthread");
    // Reference: two cycles straight through, multi-threaded.
    let uninterrupted = {
        let dir = dir.clone();
        on_big_stack(move || {
            rayon::with_max_threads(Some(4), || {
                let domain = ListDomain::new(0);
                let mut dc = DreamCoder::new(&domain, dream_config(2, 29));
                let summary = serde_json::to_string(&dc.run()).unwrap();
                // Also produce the mid-run checkpoint the resume will use:
                // cycle 1 with checkpointing on, same seed and threads.
                let mut cfg = dream_config(1, 29);
                cfg.checkpoint_dir = Some(dir);
                let mut dc = DreamCoder::new(&domain, cfg);
                dc.run();
                summary
            })
        })
    };
    // Resume the parallel run's checkpoint on a single thread: the dream
    // substreams make the remaining trajectory identical anyway.
    let resumed = {
        let dir = dir.clone();
        on_big_stack(move || {
            rayon::with_max_threads(Some(1), || {
                let path = latest_checkpoint(&dir).unwrap().expect("checkpoint");
                let ckpt = Checkpoint::read(&path).unwrap();
                assert_eq!(ckpt.cycles_completed, 1);
                let domain = ListDomain::new(0);
                let mut dc =
                    DreamCoder::resume(&domain, dream_config(2, 29), &ckpt).expect("resume");
                serde_json::to_string(&dc.run()).unwrap()
            })
        })
    };
    assert_eq!(
        resumed, uninterrupted,
        "single-threaded resume diverged from the multi-threaded run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
