//! # dc-grammar
//!
//! Probabilistic grammars over typed λ-terms for DreamCoder-rs: the
//! generative model `P[ρ | D, θ]` of the paper, together with
//!
//! * [`enumeration`] — best-first typed enumeration in decreasing prior
//!   order (the wake-phase search engine);
//! * [`sample`] — the generative direction, used for dreaming;
//! * [`grammar::ContextualGrammar`] — the bigram transition tensor `Q_ijk`
//!   of §4, also the output format of the recognition model;
//! * [`inside_outside`] — MAP re-estimation of `θ` from frontiers;
//! * [`etalong`] — η-long normalization so rewritten programs can be
//!   scored by the generative model.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dc_grammar::{Grammar, Library};
//! use dc_grammar::enumeration::{enumerate_top, EnumerationConfig};
//! use dc_lambda::primitives::base_primitives;
//! use dc_lambda::types::tint;
//!
//! let prims = base_primitives();
//! let library = Arc::new(Library::from_primitives(prims.iter().cloned()));
//! let grammar = Grammar::uniform(library);
//! let programs = enumerate_top(&grammar, &tint(), &EnumerationConfig::default(), 10);
//! assert_eq!(programs.len(), 10);
//! ```

#![warn(missing_docs)]

pub mod enumeration;
pub mod etalong;
pub mod frontier;
pub mod grammar;
pub mod inside_outside;
pub mod library;
pub mod persist;
pub mod sample;

pub use etalong::eta_long;
pub use frontier::{Frontier, FrontierEntry};
pub use grammar::{
    candidates, generation_trace, log_prior, Candidate, ContextualGrammar, GenEvent, Grammar,
    ProgramPrior,
};
pub use inside_outside::{fit_contextual_grammar, fit_grammar, DEFAULT_PSEUDOCOUNT};
pub use library::{logsumexp, BigramParent, Library, LibraryItem, WeightVector};
pub use persist::{
    load_frontier, load_grammar, save_frontier, save_grammar, LoadError, SavedFrontier,
    SavedFrontierEntry, SavedGrammar,
};
pub use sample::{sample_program, sample_program_with_retries};
