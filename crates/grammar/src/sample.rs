//! Sampling random programs from a grammar — the generative direction used
//! to produce "dreams"/fantasies during dream sleep (§4).

use dc_lambda::expr::Expr;
use dc_lambda::types::{Context, Type};
use rand::Rng;

use crate::grammar::{candidates, ProgramPrior};
use crate::library::BigramParent;

/// Sample a program of type `request`. Returns `None` if generation blows
/// past `max_depth` (callers typically retry).
pub fn sample_program<R: Rng + ?Sized>(
    prior: &dyn ProgramPrior,
    request: &Type,
    rng: &mut R,
    max_depth: usize,
) -> Option<Expr> {
    let mut ctx = Context::starting_after(request);
    sample_inner(
        prior,
        &mut ctx,
        &mut Vec::new(),
        BigramParent::Start,
        0,
        request.clone(),
        rng,
        max_depth,
    )
}

#[allow(clippy::too_many_arguments)]
fn sample_inner<R: Rng + ?Sized>(
    prior: &dyn ProgramPrior,
    ctx: &mut Context,
    env: &mut Vec<Type>,
    parent: BigramParent,
    arg: usize,
    request: Type,
    rng: &mut R,
    depth: usize,
) -> Option<Expr> {
    if depth == 0 {
        return None;
    }
    let request = request.apply(ctx);
    if let Some((a, b)) = request.as_arrow() {
        let (a, b) = (a.clone(), b.clone());
        env.insert(0, a);
        let body = sample_inner(prior, ctx, env, parent, arg, b, rng, depth);
        env.remove(0);
        return body.map(Expr::abstraction);
    }
    let cands = candidates(prior, parent, arg, ctx, env, &request);
    if cands.is_empty() {
        return None;
    }
    // Sample proportional to exp(log_prob). Candidate probabilities are
    // normalized in log space, but their exp-sum can fall short of 1 under
    // float underflow/rounding; drawing `u` on [0,1) and falling back to
    // the last candidate would silently hand that missing mass to whoever
    // sorts last. Scaling the draw by the actual total mass keeps every
    // candidate at exactly its normalized probability.
    let total: f64 = cands.iter().map(|c| c.log_prob.exp()).sum();
    let u: f64 = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    let mut chosen = cands.len() - 1;
    for (i, c) in cands.iter().enumerate() {
        acc += c.log_prob.exp();
        if u <= acc {
            chosen = i;
            break;
        }
    }
    let cand = &cands[chosen];
    *ctx = cand.ctx.clone();
    let mut expr = cand.expr.clone();
    for (k, at) in cand.arg_types.iter().enumerate() {
        let a = sample_inner(
            prior,
            ctx,
            env,
            cand.child_parent,
            k,
            at.clone(),
            rng,
            depth - 1,
        )?;
        expr = Expr::application(expr, a);
    }
    Some(expr)
}

/// Sample up to `attempts` times until a sample succeeds.
pub fn sample_program_with_retries<R: Rng + ?Sized>(
    prior: &dyn ProgramPrior,
    request: &Type,
    rng: &mut R,
    max_depth: usize,
    attempts: usize,
) -> Option<Expr> {
    (0..attempts).find_map(|_| sample_program(prior, request, rng, max_depth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;
    use crate::library::Library;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist};
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn samples_are_well_typed() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(lib);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        let mut got = 0;
        for _ in 0..200 {
            if let Some(e) = sample_program(&g, &t, &mut rng, 8) {
                got += 1;
                let it = e.infer().unwrap_or_else(|_| panic!("ill-typed sample {e}"));
                let mut ctx = Context::starting_after(&it);
                let inst = t.instantiate(&mut ctx);
                assert!(ctx.unify(&it, &inst).is_ok(), "sample {e} : {it} not {t}");
            }
        }
        assert!(got > 50, "sampling almost always failed ({got}/200)");
    }

    #[test]
    fn sample_prior_is_finite() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(lib);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let t = tint();
        for _ in 0..100 {
            if let Some(e) = sample_program(&g, &t, &mut rng, 8) {
                assert!(g.log_prior(&t, &e).is_finite(), "sample {e} has -inf prior");
            }
        }
    }

    #[test]
    fn sampling_is_unbiased_over_many_feasible_heads() {
        use dc_lambda::eval::Value;
        use dc_lambda::expr::Primitive;
        use std::collections::HashMap;

        // A context with many feasible heads: 12 nullary int constants, so
        // every draw succeeds and the head frequency IS the candidate
        // probability. Regression test for the last-candidate fallback
        // bias: no head (in particular not the final one) may absorb
        // missing probability mass.
        let k = 12usize;
        let lib = Arc::new(Library::from_primitives((0..k).map(|i| {
            Primitive::constant(&format!("c{i}"), tint(), Value::Int(i as i64))
        })));
        let g = Grammar::uniform(lib);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let n = 12_000usize;
        let mut counts: HashMap<String, usize> = HashMap::new();
        for _ in 0..n {
            let e = sample_program(&g, &tint(), &mut rng, 4).expect("constants always sample");
            *counts.entry(e.to_string()).or_default() += 1;
        }
        let expected = n as f64 / k as f64;
        // 4σ of a binomial with p = 1/12 over 12k draws is ~120; allow 200.
        for i in 0..k {
            let got = *counts.get(&format!("c{i}")).unwrap_or(&0) as f64;
            assert!(
                (got - expected).abs() < 200.0,
                "head c{i} drawn {got} times, expected ~{expected:.0}"
            );
        }
    }

    #[test]
    fn retries_help() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(lib);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let t = tint();
        assert!(sample_program_with_retries(&g, &t, &mut rng, 6, 50).is_some());
    }
}
