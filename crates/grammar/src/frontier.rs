//! Frontiers: the beams `B_x` of candidate programs per task (§2.4).

use dc_lambda::expr::Expr;
use dc_lambda::types::Type;

use crate::library::logsumexp;

/// One program in a frontier, with its task likelihood and prior.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierEntry {
    /// The program.
    pub expr: Expr,
    /// `log P[x | ρ]`.
    pub log_likelihood: f64,
    /// `log P[ρ | D, θ]`.
    pub log_prior: f64,
}

impl FrontierEntry {
    /// Unnormalized log-posterior `log P[x|ρ] + log P[ρ|D,θ]`.
    pub fn log_posterior(&self) -> f64 {
        self.log_likelihood + self.log_prior
    }
}

/// The beam `B_x` for one task: up to `beam_size` programs solving it.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// The task's request type.
    pub request: Type,
    /// Programs found, best first.
    pub entries: Vec<FrontierEntry>,
}

impl Frontier {
    /// An empty frontier for a request type.
    pub fn new(request: Type) -> Frontier {
        Frontier {
            request,
            entries: Vec::new(),
        }
    }

    /// True when no programs have been found.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of programs held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Insert an entry, keeping at most `beam_size` best-posterior entries.
    ///
    /// Entries with a non-finite posterior are rejected: a NaN (e.g. the
    /// `-inf + inf` of a degenerate likelihood/prior pair) or `-inf`
    /// carries no usable mass and would poison the beam ordering.
    pub fn insert(&mut self, entry: FrontierEntry, beam_size: usize) {
        let lp = entry.log_posterior();
        if !lp.is_finite() {
            return;
        }
        if self.entries.iter().any(|e| e.expr == entry.expr) {
            return;
        }
        // The beam is kept sorted (best first), so the insertion point is a
        // binary search, not the full re-sort this used to do on every hit
        // inside the wake hot loop. `>=` places ties *after* existing equal
        // entries — exactly where the old stable sort of a tail-appended
        // entry left them — so tie-breaking is unchanged.
        let pos = self
            .entries
            .partition_point(|e| e.log_posterior().total_cmp(&lp).is_ge());
        if pos >= beam_size {
            return; // would fall off the beam immediately
        }
        self.entries.insert(pos, entry);
        self.entries.truncate(beam_size);
    }

    /// The maximum-a-posteriori program, if any.
    pub fn best(&self) -> Option<&FrontierEntry> {
        self.entries.first()
    }

    /// Normalized posterior weights over the beam (sums to 1).
    pub fn posterior_weights(&self) -> Vec<f64> {
        let lps: Vec<f64> = self
            .entries
            .iter()
            .map(FrontierEntry::log_posterior)
            .collect();
        let z = logsumexp(&lps);
        lps.into_iter().map(|lp| (lp - z).exp()).collect()
    }

    /// The beam's contribution to the lower bound `ℒ` (Eq. 3):
    /// `log Σ_{ρ∈B_x} P[x|ρ] P[ρ|D,θ]`.
    pub fn log_evidence(&self) -> f64 {
        let lps: Vec<f64> = self
            .entries
            .iter()
            .map(FrontierEntry::log_posterior)
            .collect();
        logsumexp(&lps)
    }

    /// Re-score the priors of all entries with `score` and re-sort.
    pub fn rescore(&mut self, mut score: impl FnMut(&Expr) -> f64) {
        for e in &mut self.entries {
            e.log_prior = score(&e.expr);
        }
        self.entries
            .sort_by(|a, b| b.log_posterior().total_cmp(&a.log_posterior()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::tint;

    fn entry(src: &str, ll: f64, lp: f64) -> FrontierEntry {
        let prims = base_primitives();
        FrontierEntry {
            expr: Expr::parse(src, &prims).unwrap(),
            log_likelihood: ll,
            log_prior: lp,
        }
    }

    #[test]
    fn beam_keeps_best_entries() {
        let mut f = Frontier::new(tint());
        f.insert(entry("0", 0.0, -5.0), 2);
        f.insert(entry("1", 0.0, -3.0), 2);
        f.insert(entry("(+ 1 1)", 0.0, -8.0), 2);
        assert_eq!(f.len(), 2);
        assert_eq!(f.best().unwrap().log_prior, -3.0);
    }

    #[test]
    fn duplicate_programs_are_not_inserted() {
        let mut f = Frontier::new(tint());
        f.insert(entry("0", 0.0, -5.0), 5);
        f.insert(entry("0", 0.0, -5.0), 5);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn non_finite_posteriors_are_rejected_without_panicking() {
        let mut f = Frontier::new(tint());
        // NaN posterior: -inf likelihood + +inf prior.
        f.insert(entry("0", f64::NEG_INFINITY, f64::INFINITY), 5);
        assert!(f.is_empty(), "NaN-posterior entry must be dropped");
        // -inf posterior carries no mass either.
        f.insert(entry("1", f64::NEG_INFINITY, -1.0), 5);
        assert!(f.is_empty());
        // A finite entry still inserts alongside (former panic site).
        f.insert(entry("(+ 1 1)", 0.0, -2.0), 5);
        f.insert(entry("0", f64::NAN, 0.0), 5);
        assert_eq!(f.len(), 1);
        assert_eq!(f.best().unwrap().log_prior, -2.0);
    }

    #[test]
    fn insertion_order_never_changes_the_beam() {
        // Every permutation of the same inserts must produce the identical
        // beam (entries, order, and scores) — the invariant the
        // partition-point insertion has to preserve.
        let sources = [
            ("0", -5.0),
            ("1", -3.0),
            ("(+ 1 1)", -8.0),
            ("(+ 0 1)", -1.0),
            ("(+ 1 0)", -6.5),
            ("(+ 0 0)", -2.25),
        ];
        let beam = 3;
        let build = |order: &[usize]| {
            let mut f = Frontier::new(tint());
            for &i in order {
                let (src, lp) = sources[i];
                f.insert(entry(src, 0.0, lp), beam);
            }
            f.entries
                .iter()
                .map(|e| (e.expr.to_string(), e.log_posterior().to_bits()))
                .collect::<Vec<_>>()
        };
        let reference = build(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(reference.len(), beam);
        assert_eq!(reference[0].0, "(+ 0 1)");
        // All 720 permutations of 6 inserts, generated by Heap's algorithm.
        let mut order = [0usize, 1, 2, 3, 4, 5];
        let mut stack = [0usize; 6];
        let mut i = 0;
        assert_eq!(build(&order), reference);
        while i < order.len() {
            if stack[i] < i {
                if i % 2 == 0 {
                    order.swap(0, i);
                } else {
                    order.swap(stack[i], i);
                }
                assert_eq!(build(&order), reference, "diverged on order {order:?}");
                stack[i] += 1;
                i = 0;
            } else {
                stack[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn full_beams_reject_entries_past_the_boundary() {
        let mut f = Frontier::new(tint());
        f.insert(entry("0", 0.0, -1.0), 2);
        f.insert(entry("1", 0.0, -2.0), 2);
        // Worse than the last kept entry: rejected without growing.
        f.insert(entry("(+ 1 1)", 0.0, -3.0), 2);
        assert_eq!(f.len(), 2);
        // A boundary tie also loses to the incumbent (the old stable-sort
        // behavior: the later arrival sorts after its equal and truncates).
        f.insert(entry("(+ 0 0)", 0.0, -2.0), 2);
        assert_eq!(f.best().unwrap().expr.to_string(), "0");
        assert_eq!(f.entries[1].expr.to_string(), "1");
        // A strictly better entry still displaces the tail.
        f.insert(entry("(+ 0 1)", 0.0, -1.5), 2);
        assert_eq!(f.entries[1].expr.to_string(), "(+ 0 1)");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn posterior_weights_normalize() {
        let mut f = Frontier::new(tint());
        f.insert(entry("0", 0.0, -1.0), 5);
        f.insert(entry("1", 0.0, -2.0), 5);
        let w = f.posterior_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] > w[1]);
    }

    #[test]
    fn log_evidence_increases_with_more_programs() {
        let mut f = Frontier::new(tint());
        f.insert(entry("0", 0.0, -2.0), 5);
        let e1 = f.log_evidence();
        f.insert(entry("1", 0.0, -2.0), 5);
        assert!(f.log_evidence() > e1);
    }
}
