//! Probabilistic grammars over typed λ-terms.
//!
//! A [`Grammar`] is the paper's `(D, θ)`: a [`Library`] plus log-weights,
//! defining `P[ρ | D, θ]` via a type-directed stochastic generation process
//! (Appendix 6 of the paper). A [`ContextualGrammar`] conditions weights on
//! the *bigram* context — which production is the parent and which argument
//! slot is being filled — which is also the output format of the neural
//! recognition model (§4).

use std::cell::Cell;
use std::sync::Arc;

use dc_lambda::expr::Expr;
use dc_lambda::types::{Context, Type};

use crate::library::{BigramParent, Library, WeightVector};

thread_local! {
    /// Heads rejected by unification since the last [`take_typed_out`] —
    /// the enumerator's forensic "typed out" tally. Thread-local because
    /// each enumeration run stays on one thread (rayon workers run whole
    /// tasks), so bracketing a run with take/take reads exactly its own
    /// rejections without touching shared atomics in the hot path.
    static TYPED_OUT: Cell<u64> = const { Cell::new(0) };
}

/// Record `n` unification-rejected candidate heads on this thread.
pub(crate) fn note_typed_out(n: u64) {
    TYPED_OUT.with(|c| c.set(c.get() + n));
}

/// Read and reset this thread's typed-out tally.
pub(crate) fn take_typed_out() -> u64 {
    TYPED_OUT.with(|c| c.replace(0))
}

/// Anything that assigns (unnormalized) weights to productions given a
/// bigram context. Implemented by [`Grammar`] (ignores context) and
/// [`ContextualGrammar`] (a full transition tensor).
pub trait ProgramPrior {
    /// The shared library `D`.
    fn library(&self) -> &Arc<Library>;
    /// Weights used when filling argument `arg` of `parent`.
    fn weights(&self, parent: BigramParent, arg: usize) -> &WeightVector;
}

/// The unigram grammar `(D, θ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grammar {
    /// The library `D`.
    pub library: Arc<Library>,
    /// Weights `θ` (shared across contexts).
    pub weights: WeightVector,
}

impl Grammar {
    /// A uniform grammar over the given library.
    pub fn uniform(library: Arc<Library>) -> Grammar {
        let n = library.len();
        Grammar {
            library,
            weights: WeightVector::uniform(n),
        }
    }

    /// Log-prior of an eta-long program at the given request type
    /// (`log P[ρ | D, θ]`). Returns `-inf` for programs this grammar
    /// cannot generate.
    pub fn log_prior(&self, request: &Type, expr: &Expr) -> f64 {
        log_prior(self, request, expr)
    }
}

impl ProgramPrior for Grammar {
    fn library(&self) -> &Arc<Library> {
        &self.library
    }
    fn weights(&self, _parent: BigramParent, _arg: usize) -> &WeightVector {
        &self.weights
    }
}

/// A bigram ("contextual") grammar: one weight vector per (parent,
/// argument-index) pair, exactly the 3-index tensor `Q_ijk` of §4.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextualGrammar {
    /// The library `D`.
    pub library: Arc<Library>,
    /// Max arity tracked; argument indices clamp to `max_arity - 1`.
    pub max_arity: usize,
    /// Row-major `[parent_row][arg]` weight vectors.
    pub table: Vec<WeightVector>,
}

impl ContextualGrammar {
    /// A uniform contextual grammar.
    pub fn uniform(library: Arc<Library>) -> ContextualGrammar {
        let n = library.len();
        let max_arity = library.max_arity().max(1);
        let rows = BigramParent::row_count(n);
        let table = vec![WeightVector::uniform(n); rows * max_arity];
        ContextualGrammar {
            library,
            max_arity,
            table,
        }
    }

    /// Index into the table for a (parent, arg) context.
    pub fn slot(&self, parent: BigramParent, arg: usize) -> usize {
        let row = parent.row(self.library.len());
        let a = arg.min(self.max_arity - 1);
        row * self.max_arity + a
    }

    /// Mutable access to one context's weights.
    pub fn weights_mut(&mut self, parent: BigramParent, arg: usize) -> &mut WeightVector {
        let i = self.slot(parent, arg);
        &mut self.table[i]
    }

    /// Log-prior of an eta-long program under the bigram model.
    pub fn log_prior(&self, request: &Type, expr: &Expr) -> f64 {
        log_prior(self, request, expr)
    }
}

impl ProgramPrior for ContextualGrammar {
    fn library(&self) -> &Arc<Library> {
        &self.library
    }
    fn weights(&self, parent: BigramParent, arg: usize) -> &WeightVector {
        &self.table[self.slot(parent, arg)]
    }
}

/// One feasible choice at a generation choice point.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Normalized log-probability of this choice.
    pub log_prob: f64,
    /// The chosen head (`Expr::Index`, `Expr::Primitive`, `Expr::Invented`).
    pub expr: Expr,
    /// Types its arguments must take (instantiated, in `ctx`).
    pub arg_types: Vec<Type>,
    /// The unification context after committing to this candidate.
    pub ctx: Context,
    /// Bigram parent context for generating the arguments.
    pub child_parent: BigramParent,
    /// Production index (`None` = a bound variable).
    pub production: Option<usize>,
}

/// A feasible head, discovered by trial unification that was immediately
/// rolled back: unlike [`Candidate`] it carries no cloned [`Context`] and
/// no instantiated argument types. Expansion re-commits the head against
/// the live context with [`commit_head`] — the allocation-lean protocol
/// the enumerator's hot loop uses.
#[derive(Debug, Clone)]
pub struct CandidateHead {
    /// Normalized log-probability of this choice.
    pub log_prob: f64,
    /// The chosen head (`Expr::Index`, `Expr::Primitive`, `Expr::Invented`).
    pub expr: Expr,
    /// Bigram parent context for generating the arguments.
    pub child_parent: BigramParent,
    /// Production index (`None` = a bound variable).
    pub production: Option<usize>,
}

/// Enumerate the feasible heads for a hole of type `request` (a non-arrow
/// type) in environment `env`, with normalized log-probabilities.
///
/// `ctx` is only mutated transiently: every trial unification is undone
/// via checkpoint/rollback before returning, so on exit `ctx` is exactly
/// as it came in (including the fresh-variable counter).
pub fn candidate_heads(
    prior: &dyn ProgramPrior,
    parent: BigramParent,
    arg: usize,
    ctx: &mut Context,
    env: &[Type],
    request: &Type,
) -> Vec<CandidateHead> {
    let weights = prior.weights(parent, arg);
    let mut out = Vec::new();
    // Count unification failures locally; one batched counter update per
    // call keeps the hole-expansion hot path off shared atomics.
    let mut unify_failures = 0u64;
    // Bound variables.
    for (i, env_ty) in env.iter().enumerate() {
        let cp = ctx.checkpoint();
        let t = env_ty.apply(ctx);
        let feasible = ctx.unify(t.returns(), request).is_ok();
        ctx.rollback(cp);
        if feasible {
            out.push(CandidateHead {
                log_prob: weights.log_variable,
                expr: Expr::Index(i),
                child_parent: BigramParent::Var,
                production: None,
            });
        } else {
            unify_failures += 1;
        }
    }
    // Library productions.
    for (j, item) in prior.library().items.iter().enumerate() {
        let cp = ctx.checkpoint();
        let t = item.ty.instantiate(ctx);
        let feasible = ctx.unify(t.returns(), request).is_ok();
        ctx.rollback(cp);
        if feasible {
            out.push(CandidateHead {
                log_prob: weights.log_productions[j],
                expr: item.expr.clone(),
                child_parent: BigramParent::Prod(j),
                production: Some(j),
            });
        } else {
            unify_failures += 1;
        }
    }
    if unify_failures > 0 {
        note_typed_out(unify_failures);
        // Cached handle: this records once per hole expansion, which is
        // the innermost loop of enumeration — a registry lookup here
        // blows the ≤5% instrumentation budget (DESIGN.md §10).
        static UNIFICATION_FAILURES: dc_telemetry::CachedCounter =
            dc_telemetry::CachedCounter::new("enumeration.unification_failures");
        UNIFICATION_FAILURES.add(unify_failures);
    }
    // Normalize in place (log-sum-exp) without the scratch Vec the old
    // implementation allocated per hole expansion.
    let max = out.iter().fold(f64::NEG_INFINITY, |m, c| m.max(c.log_prob));
    if max > f64::NEG_INFINITY {
        let z = max
            + out
                .iter()
                .map(|c| (c.log_prob - max).exp())
                .sum::<f64>()
                .ln();
        for c in &mut out {
            c.log_prob -= z;
        }
    }
    out
}

/// Commit to a head previously discovered by [`candidate_heads`] under the
/// *same* context state: re-instantiate its type, unify with `request`,
/// and return the instantiated argument types. The unification bindings
/// stay in `ctx` (callers checkpoint before and roll back after exploring
/// the head's arguments).
///
/// # Errors
/// Returns the unification error when the head is not feasible — only
/// possible when `ctx` diverged from the state `candidate_heads` saw.
pub fn commit_head(
    prior: &dyn ProgramPrior,
    ctx: &mut Context,
    env: &[Type],
    request: &Type,
    head: &CandidateHead,
) -> Result<Vec<Type>, dc_lambda::types::UnificationError> {
    let t = match head.production {
        Some(j) => prior.library().items[j].ty.instantiate(ctx),
        None => match &head.expr {
            Expr::Index(i) => env[*i].apply(ctx),
            other => unreachable!("variable head must be an index, got {other}"),
        },
    };
    ctx.unify(t.returns(), request)?;
    Ok(t.arguments().into_iter().cloned().collect())
}

/// Enumerate the feasible heads for a hole of type `request` (a non-arrow
/// type) in environment `env`, with normalized log-probabilities, each
/// carrying the post-commit [`Context`]. Thin compatibility layer over
/// [`candidate_heads`] + [`commit_head`] for callers that want every
/// branch materialized; hot loops should use the head API directly.
pub fn candidates(
    prior: &dyn ProgramPrior,
    parent: BigramParent,
    arg: usize,
    ctx: &Context,
    env: &[Type],
    request: &Type,
) -> Vec<Candidate> {
    let mut scratch = ctx.clone();
    candidate_heads(prior, parent, arg, &mut scratch, env, request)
        .into_iter()
        .map(|head| {
            let mut c = ctx.clone();
            let arg_types = commit_head(prior, &mut c, env, request, &head)
                .expect("head feasibility established under the same context");
            Candidate {
                log_prob: head.log_prob,
                expr: head.expr,
                arg_types,
                ctx: c,
                child_parent: head.child_parent,
                production: head.production,
            }
        })
        .collect()
}

/// A choice made during generation, with enough context to train a
/// recognition model (feasible set + chosen index).
#[derive(Debug, Clone, PartialEq)]
pub struct GenEvent {
    /// Bigram parent of the hole.
    pub parent: BigramParent,
    /// Which argument slot of the parent.
    pub arg: usize,
    /// Chosen production index; `None` means a bound variable was chosen.
    pub chosen: Option<usize>,
    /// Production indices that were feasible at this choice point.
    pub feasible_prods: Vec<usize>,
    /// How many bound variables were feasible.
    pub feasible_vars: usize,
}

/// Walk `expr` as the generative model would produce it, returning its
/// log-prior and the sequence of choice events, or `None` when the program
/// is not generable (not eta-long, or head not in the library).
pub fn generation_trace(
    prior: &dyn ProgramPrior,
    request: &Type,
    expr: &Expr,
) -> Option<(f64, Vec<GenEvent>)> {
    let mut ctx = Context::starting_after(request);
    let mut env = Vec::new();
    let mut events = Vec::new();
    let ll = walk(
        prior,
        &mut ctx,
        &mut env,
        BigramParent::Start,
        0,
        request.clone(),
        expr,
        &mut events,
    )?;
    Some((ll, events))
}

#[allow(clippy::too_many_arguments)]
fn walk(
    prior: &dyn ProgramPrior,
    ctx: &mut Context,
    env: &mut Vec<Type>,
    parent: BigramParent,
    arg: usize,
    request: Type,
    expr: &Expr,
    events: &mut Vec<GenEvent>,
) -> Option<f64> {
    let request = request.apply(ctx);
    if let Some((a, b)) = request.as_arrow() {
        // Arrow requests deterministically produce abstractions.
        let (a, b) = (a.clone(), b.clone());
        return match expr {
            Expr::Abstraction(body) => {
                env.insert(0, a);
                let r = walk(prior, ctx, env, parent, arg, b, body, events);
                env.remove(0);
                r
            }
            _ => None,
        };
    }
    // Decompose the application spine.
    let mut spine = Vec::new();
    let mut head = expr;
    while let Expr::Application(f, x) = head {
        spine.push(&**x);
        head = f;
    }
    spine.reverse();
    let heads = candidate_heads(prior, parent, arg, ctx, env, &request);
    let feasible_prods: Vec<usize> = heads.iter().filter_map(|c| c.production).collect();
    let feasible_vars = heads.iter().filter(|c| c.production.is_none()).count();
    let chosen = heads.into_iter().find(|c| &c.expr == head)?;
    // Committing binds the head's unification into `ctx`; on the `None`
    // paths below the whole trace is abandoned, so no rollback is needed.
    let arg_types = commit_head(prior, ctx, env, &request, &chosen).ok()?;
    if arg_types.len() != spine.len() {
        return None; // not eta-long
    }
    events.push(GenEvent {
        parent,
        arg,
        chosen: chosen.production,
        feasible_prods,
        feasible_vars,
    });
    let mut ll = chosen.log_prob;
    for (k, (arg_expr, arg_ty)) in spine.iter().zip(arg_types.iter()).enumerate() {
        ll += walk(
            prior,
            ctx,
            env,
            chosen.child_parent,
            k,
            arg_ty.clone(),
            arg_expr,
            events,
        )?;
    }
    Some(ll)
}

/// Log-prior of a program: `log P[ρ | prior]`, `-inf` if not generable.
pub fn log_prior(prior: &dyn ProgramPrior, request: &Type, expr: &Expr) -> f64 {
    generation_trace(prior, request, expr).map_or(f64::NEG_INFINITY, |(ll, _)| ll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::logsumexp;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist};

    fn setup() -> (Grammar, dc_lambda::PrimitiveSet) {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        (Grammar::uniform(lib), prims)
    }

    #[test]
    fn candidates_filter_by_type() {
        let (g, _) = setup();
        let ctx = Context::new();
        let cands = candidates(&g, BigramParent::Start, 0, &ctx, &[], &tint());
        // int-returning heads: length, index, +, -, *, mod, 0, 1, if, fix, car, fold...
        assert!(cands.iter().any(|c| c.expr.to_string() == "+"));
        assert!(cands.iter().any(|c| c.expr.to_string() == "0"));
        // `cons` returns a list, never an int.
        assert!(!cands.iter().any(|c| c.expr.to_string() == "cons"));
        // Normalization: probabilities sum to 1.
        let z = logsumexp(&cands.iter().map(|c| c.log_prob).collect::<Vec<_>>());
        assert!(z.abs() < 1e-9);
    }

    #[test]
    fn variables_are_candidates() {
        let (g, _) = setup();
        let ctx = Context::new();
        let cands = candidates(&g, BigramParent::Start, 0, &ctx, &[tint()], &tint());
        assert!(cands.iter().any(|c| matches!(c.expr, Expr::Index(0))));
    }

    #[test]
    fn log_prior_is_finite_for_well_typed_eta_long_programs() {
        let (g, prims) = setup();
        let e = Expr::parse("(lambda (+ $0 1))", &prims).unwrap();
        let lp = g.log_prior(&Type::arrow(tint(), tint()), &e);
        assert!(lp.is_finite());
        assert!(lp < 0.0);
    }

    #[test]
    fn log_prior_of_unparseable_shape_is_neg_inf() {
        let (g, prims) = setup();
        // Partial application `(+ 1)` is not eta-long at int -> int.
        let e = Expr::parse("(+ 1)", &prims).unwrap();
        assert_eq!(
            g.log_prior(&Type::arrow(tint(), tint()), &e),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn smaller_programs_have_higher_prior() {
        let (g, prims) = setup();
        let small = Expr::parse("(lambda $0)", &prims).unwrap();
        let big = Expr::parse("(lambda (+ $0 (+ 1 1)))", &prims).unwrap();
        let t = Type::arrow(tint(), tint());
        assert!(g.log_prior(&t, &small) > g.log_prior(&t, &big));
    }

    #[test]
    fn generation_trace_records_events() {
        let (g, prims) = setup();
        let e = Expr::parse("(lambda (+ $0 1))", &prims).unwrap();
        let (_, events) = generation_trace(&g, &Type::arrow(tint(), tint()), &e).unwrap();
        // Three choices: `+`, `$0`, `1`.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].parent, BigramParent::Start);
        let plus_idx = g
            .library
            .position(&Expr::parse("+", &prims).unwrap())
            .unwrap();
        assert_eq!(events[0].chosen, Some(plus_idx));
        assert_eq!(events[1].parent, BigramParent::Prod(plus_idx));
        assert_eq!(events[1].arg, 0);
        assert_eq!(events[1].chosen, None); // variable
        assert_eq!(events[2].arg, 1);
    }

    #[test]
    fn contextual_grammar_can_forbid_bigrams() {
        let (g, prims) = setup();
        let mut cg = ContextualGrammar::uniform(Arc::clone(&g.library));
        let plus = g
            .library
            .position(&Expr::parse("+", &prims).unwrap())
            .unwrap();
        let zero = g
            .library
            .position(&Expr::parse("0", &prims).unwrap())
            .unwrap();
        // Forbid `0` as either argument of `+`.
        for arg in 0..2 {
            cg.weights_mut(BigramParent::Prod(plus), arg)
                .log_productions[zero] = f64::NEG_INFINITY;
        }
        let t = tint();
        let add_zero = Expr::parse("(+ 0 1)", &prims).unwrap();
        let add_one = Expr::parse("(+ 1 1)", &prims).unwrap();
        assert_eq!(cg.log_prior(&t, &add_zero), f64::NEG_INFINITY);
        assert!(cg.log_prior(&t, &add_one).is_finite());
        // But `0` alone is still allowed (start context unaffected).
        let zero_e = Expr::parse("0", &prims).unwrap();
        assert!(cg.log_prior(&t, &zero_e).is_finite());
    }

    #[test]
    fn polymorphic_request_types_propagate() {
        let (g, prims) = setup();
        // map over a list of ints: the function argument must be int -> int.
        let e = Expr::parse("(lambda (map (lambda (+ $0 $0)) $0))", &prims).unwrap();
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        assert!(g.log_prior(&t, &e).is_finite());
    }
}
