//! Best-first typed enumeration of programs in decreasing prior order.
//!
//! Implements the budget-interval iterative-deepening scheme of the
//! original DreamCoder solver: enumerate every program whose description
//! length (in nats, `-log P[ρ|D,θ]`) falls in `[lower, upper)`, then grow
//! the window. Programs therefore stream out in (approximately) decreasing
//! prior probability without any priority queue, and no program is emitted
//! twice.

use std::cell::Cell;
use std::time::{Duration, Instant};

use dc_lambda::expr::Expr;
use dc_lambda::types::{Context, Type};

use crate::grammar::{candidate_heads, commit_head, note_typed_out, take_typed_out, ProgramPrior};
use crate::library::BigramParent;

/// Controls for an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumerationConfig {
    /// First budget window upper bound, in nats.
    pub budget_start: f64,
    /// Window growth per round, in nats.
    pub budget_step: f64,
    /// Give up beyond this description length.
    pub max_budget: f64,
    /// Maximum syntactic nesting depth of enumerated programs.
    pub max_depth: usize,
    /// Wall-clock timeout for the whole run.
    pub timeout: Option<Duration>,
}

impl Default for EnumerationConfig {
    fn default() -> EnumerationConfig {
        EnumerationConfig {
            budget_start: 6.0,
            budget_step: 1.5,
            max_budget: 40.0,
            max_depth: 16,
            timeout: None,
        }
    }
}

/// Forensic record of one enumeration run: how deep the search got and
/// why it stopped, independent of what the caller did with the programs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnumerationStats {
    /// Programs emitted to the callback.
    pub programs: usize,
    /// Budget windows started.
    pub windows: u64,
    /// Candidate heads rejected by unification (typed out) — a measure
    /// of how much of the raw search space the type system pruned.
    pub typed_out: u64,
    /// Nats frontier actually completed: every program with description
    /// length below this bound was enumerated.
    pub frontier_nats: f64,
    /// The run stopped on its wall-clock deadline (as opposed to
    /// exhausting the budget or the callback ending it).
    pub timed_out: bool,
}

/// Enumerate closed programs of type `request` in decreasing prior order.
///
/// `callback(expr, log_prior)` is invoked for each program; return `false`
/// to stop the run early. Returns the number of programs emitted.
/// ([`enumerate_programs_stats`] additionally reports search forensics.)
pub fn enumerate_programs(
    prior: &dyn ProgramPrior,
    request: &Type,
    config: &EnumerationConfig,
    callback: &mut dyn FnMut(Expr, f64) -> bool,
) -> usize {
    enumerate_programs_stats(prior, request, config, callback).programs
}

/// [`enumerate_programs`], returning the full [`EnumerationStats`]
/// forensic record instead of just the program count.
pub fn enumerate_programs_stats(
    prior: &dyn ProgramPrior,
    request: &Type,
    config: &EnumerationConfig,
    callback: &mut dyn FnMut(Expr, f64) -> bool,
) -> EnumerationStats {
    let _span = dc_telemetry::span("enumeration.run_time");
    let mut stats = EnumerationStats::default();
    take_typed_out(); // drop any stale tally from this thread
    let started = Instant::now();
    let mut lower = 0.0;
    let mut upper = config.budget_start;
    let deadline = config.timeout.map(|t| started + t);
    'outer: while lower < config.max_budget {
        stats.windows += 1;
        let mut ctx = Context::starting_after(request);
        let ticker = DeadlineTicker::new(deadline);
        let keep_going = enum_request(
            prior,
            &mut ctx,
            &[],
            BigramParent::Start,
            0,
            request.clone(),
            lower,
            upper.min(config.max_budget),
            config.max_depth,
            &ticker,
            &mut |_, e, ll| {
                stats.programs += 1;
                callback(e, ll)
            },
        );
        if !keep_going {
            // Either the deadline fired mid-window or the callback asked
            // to stop; the window is incomplete either way.
            stats.timed_out = ticker.expired.get();
            break 'outer;
        }
        stats.frontier_nats = upper.min(config.max_budget);
        if let Some(d) = deadline {
            if Instant::now() >= d {
                stats.timed_out = true;
                break 'outer;
            }
        }
        lower = upper;
        upper += config.budget_step;
    }
    stats.typed_out = take_typed_out();
    // One batched update per run, not per program: the inner loop stays
    // free of atomics even with telemetry enabled.
    if dc_telemetry::is_enabled() {
        dc_telemetry::add("enumeration.programs", stats.programs as u64);
        dc_telemetry::add("enumeration.budget_windows", stats.windows);
        dc_telemetry::add("enumeration.typed_out", stats.typed_out);
        dc_telemetry::incr("enumeration.runs");
    }
    stats
}

/// Poll the wall clock only every this many node expansions: per-node
/// `Instant::now()` costs more than the expansion itself deep in the tree.
const DEADLINE_CHECK_INTERVAL: u32 = 1024;

/// Amortized deadline checks. Once expired, stays expired (the clock is
/// never consulted again), so an exhausted run unwinds quickly. Interior
/// mutability lets the recursion and its continuation closures share one
/// ticker by plain `&` reference.
struct DeadlineTicker {
    deadline: Option<Instant>,
    countdown: Cell<u32>,
    expired: Cell<bool>,
}

impl DeadlineTicker {
    fn new(deadline: Option<Instant>) -> DeadlineTicker {
        DeadlineTicker {
            deadline,
            countdown: Cell::new(DEADLINE_CHECK_INTERVAL),
            expired: Cell::new(false),
        }
    }

    #[inline]
    fn expired(&self) -> bool {
        if self.expired.get() {
            return true;
        }
        let Some(d) = self.deadline else {
            return false;
        };
        let left = self.countdown.get();
        if left > 0 {
            self.countdown.set(left - 1);
            return false;
        }
        self.countdown.set(DEADLINE_CHECK_INTERVAL);
        let hit = Instant::now() >= d;
        self.expired.set(hit);
        hit
    }
}

/// Enumerate programs for `request`; `ret(ctx, expr, log_prior)` receives
/// each. Returns `false` to propagate early exit.
///
/// `env` holds the bound-variable types innermost-first; it is built once
/// per λ-extension and passed down by slice (the old cons-list rebuilt a
/// `Vec` at every node underneath the binder).
#[allow(clippy::too_many_arguments)]
fn enum_request(
    prior: &dyn ProgramPrior,
    ctx: &mut Context,
    env: &[Type],
    parent: BigramParent,
    arg: usize,
    request: Type,
    lower: f64,
    upper: f64,
    depth: usize,
    ticker: &DeadlineTicker,
    ret: &mut dyn FnMut(&mut Context, Expr, f64) -> bool,
) -> bool {
    if upper <= 0.0 || depth == 0 {
        return true;
    }
    if ticker.expired() {
        return false;
    }
    let request = request.apply(ctx);
    if let Some((a, b)) = request.as_arrow() {
        let (a, b) = (a.clone(), b.clone());
        let mut env2 = Vec::with_capacity(env.len() + 1);
        env2.push(a);
        env2.extend_from_slice(env);
        return enum_request(
            prior,
            ctx,
            &env2,
            parent,
            arg,
            b,
            lower,
            upper,
            depth,
            ticker,
            &mut |c, body, ll| ret(c, Expr::abstraction(body), ll),
        );
    }
    for head in candidate_heads(prior, parent, arg, ctx, env, &request) {
        let mdl = -head.log_prob;
        if mdl >= upper {
            continue;
        }
        // Commit the head's unification into the live context, explore its
        // arguments, then roll back — where the old loop cloned the whole
        // `Context` per candidate.
        let cp = ctx.checkpoint();
        let Ok(arg_types) = commit_head(prior, ctx, env, &request, &head) else {
            note_typed_out(1);
            ctx.rollback(cp);
            continue;
        };
        let keep = enum_applications(
            prior,
            ctx,
            env,
            head.child_parent,
            head.expr,
            head.log_prob,
            &arg_types,
            0,
            lower + head.log_prob,
            upper + head.log_prob,
            depth,
            ticker,
            ret,
        );
        ctx.rollback(cp);
        if !keep {
            return false;
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn enum_applications(
    prior: &dyn ProgramPrior,
    ctx: &mut Context,
    env: &[Type],
    parent: BigramParent,
    f: Expr,
    f_ll: f64,
    arg_types: &[Type],
    arg_index: usize,
    lower: f64,
    upper: f64,
    depth: usize,
    ticker: &DeadlineTicker,
    ret: &mut dyn FnMut(&mut Context, Expr, f64) -> bool,
) -> bool {
    let Some((first, rest)) = arg_types.split_first() else {
        if lower <= 0.0 && upper > 0.0 {
            return ret(ctx, f, f_ll);
        }
        return true;
    };
    enum_request(
        prior,
        ctx,
        env,
        parent,
        arg_index,
        first.clone(),
        0.0,
        upper,
        depth - 1,
        ticker,
        &mut |ctx2, arg_expr, arg_ll| {
            enum_applications(
                prior,
                ctx2,
                env,
                parent,
                Expr::application(f.clone(), arg_expr),
                f_ll + arg_ll,
                rest,
                arg_index + 1,
                lower + arg_ll,
                upper + arg_ll,
                depth,
                ticker,
                ret,
            )
        },
    )
}

/// Convenience: collect the first `n` enumerated programs with priors.
pub fn enumerate_top(
    prior: &dyn ProgramPrior,
    request: &Type,
    config: &EnumerationConfig,
    n: usize,
) -> Vec<(Expr, f64)> {
    let mut out = Vec::with_capacity(n);
    enumerate_programs(prior, request, config, &mut |e, ll| {
        out.push((e, ll));
        out.len() < n
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;
    use crate::library::Library;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist};
    use std::collections::HashSet;
    use std::sync::Arc;

    fn grammar() -> (Grammar, dc_lambda::PrimitiveSet) {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        (Grammar::uniform(lib), prims)
    }

    #[test]
    fn enumerates_in_decreasing_prior_order_within_window() {
        let (g, _) = grammar();
        let progs = enumerate_top(&g, &tint(), &EnumerationConfig::default(), 200);
        assert!(
            progs.len() >= 100,
            "expected many int programs, got {}",
            progs.len()
        );
        // Description length (=-ll) must be nondecreasing across windows
        // up to window granularity; check the coarse property: first
        // program is among the cheapest.
        let best = progs
            .iter()
            .map(|(_, ll)| *ll)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(progs[0].1 >= best - 6.0);
    }

    #[test]
    fn no_duplicates_across_budget_windows() {
        let (g, _) = grammar();
        let progs = enumerate_top(&g, &tint(), &EnumerationConfig::default(), 500);
        let mut seen = HashSet::new();
        for (e, _) in &progs {
            assert!(seen.insert(e.to_string()), "duplicate program {e}");
        }
    }

    #[test]
    fn all_enumerated_programs_typecheck() {
        let (g, _) = grammar();
        let t = Type::arrow(tlist(tint()), tint());
        let progs = enumerate_top(&g, &t, &EnumerationConfig::default(), 200);
        assert!(!progs.is_empty());
        let mut ctx = Context::new();
        for (e, _) in &progs {
            let it = e.infer_with(&mut Context::new(), &[]).unwrap_or_else(|_| {
                panic!("enumerated ill-typed program {e}");
            });
            let mut c2 = Context::starting_after(&it);
            let inst = t.instantiate(&mut c2);
            assert!(
                c2.unify(&it, &inst).is_ok(),
                "program {e} has type {it}, not {t}"
            );
        }
        let _ = &mut ctx;
    }

    #[test]
    fn enumerated_priors_match_log_prior() {
        let (g, _) = grammar();
        let t = tint();
        for (e, ll) in enumerate_top(&g, &t, &EnumerationConfig::default(), 100) {
            let direct = g.log_prior(&t, &e);
            assert!(
                (direct - ll).abs() < 1e-6,
                "prior mismatch for {e}: {direct} vs {ll}"
            );
        }
    }

    #[test]
    fn callback_can_stop_early() {
        let (g, _) = grammar();
        let mut count = 0;
        enumerate_programs(&g, &tint(), &EnumerationConfig::default(), &mut |_, _| {
            count += 1;
            count < 5
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn timeout_is_respected() {
        let (g, _) = grammar();
        let cfg = EnumerationConfig {
            timeout: Some(Duration::from_millis(50)),
            max_budget: 1000.0,
            ..EnumerationConfig::default()
        };
        let started = Instant::now();
        let stats = enumerate_programs_stats(&g, &tint(), &cfg, &mut |_, _| true);
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(stats.timed_out, "a 1000-nat budget must hit the deadline");
        assert!(stats.frontier_nats < cfg.max_budget);
    }

    #[test]
    fn stats_report_frontier_and_stop_reason() {
        let (g, _) = grammar();
        let cfg = EnumerationConfig {
            max_budget: 9.0,
            ..EnumerationConfig::default()
        };
        let mut emitted = 0usize;
        let stats = enumerate_programs_stats(&g, &tint(), &cfg, &mut |_, _| {
            emitted += 1;
            true
        });
        assert_eq!(stats.programs, emitted);
        assert!(stats.windows >= 2, "windows = {}", stats.windows);
        assert!(stats.typed_out > 0, "unification prunes some heads");
        // Ran to budget exhaustion: the whole budget is the frontier.
        assert!((stats.frontier_nats - cfg.max_budget).abs() < 1e-9);
        assert!(!stats.timed_out);

        // A callback stop mid-window leaves the frontier at the last
        // *completed* window and is not a timeout.
        let stats = enumerate_programs_stats(&g, &tint(), &cfg, &mut |_, _| false);
        assert!(!stats.timed_out);
        assert!(stats.frontier_nats < cfg.max_budget);
    }

    #[test]
    fn function_requests_produce_lambdas() {
        let (g, _) = grammar();
        let t = Type::arrow(tint(), tint());
        let progs = enumerate_top(&g, &t, &EnumerationConfig::default(), 50);
        for (e, _) in &progs {
            assert!(
                matches!(e, Expr::Abstraction(_)),
                "expected lambda, got {e}"
            );
        }
    }
}
