//! Saving and loading learned libraries and grammars.
//!
//! A learned library is serialized as surface syntax: primitives by name,
//! inventions as `#(...)` source text (nested inventions re-parse
//! recursively). This lets a downstream user persist what DreamCoder
//! learned and reload it against the same primitive set.

use std::sync::Arc;

use dc_lambda::error::ParseError;
use dc_lambda::expr::{Expr, Invented, PrimitiveLookup};
use dc_lambda::primitives::PrimitiveSet;
use serde::{Deserialize, Serialize};

use dc_lambda::types::Type;

use crate::frontier::{Frontier, FrontierEntry};
use crate::grammar::Grammar;
use crate::library::{Library, LibraryItem, WeightVector};

/// Serialized form of a [`Library`] plus unigram weights.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SavedGrammar {
    /// Names of base primitives, in production order.
    pub primitives: Vec<String>,
    /// Invention bodies as surface syntax, in production order (inventions
    /// come after primitives, matching [`Library::push_invented`]).
    pub inventions: Vec<String>,
    /// `log_variable` weight.
    pub log_variable: f64,
    /// Per-production log weights (primitives then inventions).
    pub log_productions: Vec<f64>,
}

/// Serialized form of one [`FrontierEntry`]: the program as surface
/// syntax plus its scores. Programs calling inventions print as inline
/// `#(...)` literals, so they reload against the primitive set alone.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SavedFrontierEntry {
    /// The program's surface syntax.
    pub expr: String,
    /// `log P[x | ρ]`.
    pub log_likelihood: f64,
    /// `log P[ρ | D, θ]`.
    pub log_prior: f64,
}

/// Serialized form of a [`Frontier`]'s entries, in beam order. The
/// request type is not stored: it is recovered from the task the
/// frontier belongs to.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SavedFrontier {
    /// Beam entries, best-posterior first.
    pub entries: Vec<SavedFrontierEntry>,
}

/// Error loading a saved grammar or frontier.
#[derive(Debug)]
pub enum LoadError {
    /// A primitive name was not found in the supplied primitive set.
    UnknownPrimitive(String),
    /// An invention body failed to parse or typecheck.
    BadInvention(String, ParseError),
    /// A frontier program failed to parse.
    BadProgram(String, ParseError),
    /// Weight vector length disagrees with the library size.
    WeightMismatch {
        /// Productions in the library.
        expected: usize,
        /// Weights provided.
        found: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::UnknownPrimitive(name) => {
                write!(f, "unknown primitive {name:?} in saved grammar")
            }
            LoadError::BadInvention(src, e) => {
                write!(f, "invention {src:?} failed to load: {e}")
            }
            LoadError::BadProgram(src, e) => {
                write!(f, "frontier program {src:?} failed to load: {e}")
            }
            LoadError::WeightMismatch { expected, found } => {
                write!(f, "expected {expected} weights, found {found}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Serialize a grammar (library + θ) for persistence.
pub fn save_grammar(grammar: &Grammar) -> SavedGrammar {
    let mut primitives = Vec::new();
    let mut inventions = Vec::new();
    for item in &grammar.library.items {
        match &item.expr {
            Expr::Invented(inv) => inventions.push(inv.body.to_string()),
            other => primitives.push(other.to_string()),
        }
    }
    SavedGrammar {
        primitives,
        inventions,
        log_variable: grammar.weights.log_variable,
        log_productions: grammar.weights.log_productions.clone(),
    }
}

/// Reconstruct a grammar from its saved form against a primitive set.
///
/// # Errors
/// See [`LoadError`]. Invention bodies referencing earlier inventions are
/// resolved because they serialize as inline `#(...)` literals.
pub fn load_grammar(saved: &SavedGrammar, prims: &PrimitiveSet) -> Result<Grammar, LoadError> {
    let mut items = Vec::new();
    for name in &saved.primitives {
        let p = prims
            .primitive(name)
            .ok_or_else(|| LoadError::UnknownPrimitive(name.clone()))?;
        items.push(LibraryItem::from_primitive(p));
    }
    for src in &saved.inventions {
        let body = Expr::parse(src, prims).map_err(|e| LoadError::BadInvention(src.clone(), e))?;
        let name = format!("#{body}");
        let inv = Invented::new(&name, body)
            .map_err(|e| LoadError::BadInvention(src.clone(), ParseError::new(e.to_string())))?;
        items.push(LibraryItem::from_invented(inv));
    }
    let library = Arc::new(Library { items });
    if saved.log_productions.len() != library.len() {
        return Err(LoadError::WeightMismatch {
            expected: library.len(),
            found: saved.log_productions.len(),
        });
    }
    Ok(Grammar {
        library,
        weights: WeightVector {
            log_variable: saved.log_variable,
            log_productions: saved.log_productions.clone(),
        },
    })
}

/// Serialize a frontier's beam as surface syntax.
pub fn save_frontier(frontier: &Frontier) -> SavedFrontier {
    SavedFrontier {
        entries: frontier
            .entries
            .iter()
            .map(|e| SavedFrontierEntry {
                expr: e.expr.to_string(),
                log_likelihood: e.log_likelihood,
                log_prior: e.log_prior,
            })
            .collect(),
    }
}

/// Reconstruct a frontier from its saved form. Entries are restored
/// verbatim — same order, same scores — so a save/load round trip is
/// bit-for-bit (`insert` is deliberately not re-run, as it would re-trim
/// against an unknown beam size).
///
/// # Errors
/// [`LoadError::BadProgram`] when an entry's surface syntax fails to
/// parse against `prims`.
pub fn load_frontier(
    saved: &SavedFrontier,
    request: Type,
    prims: &PrimitiveSet,
) -> Result<Frontier, LoadError> {
    let mut entries = Vec::with_capacity(saved.entries.len());
    for e in &saved.entries {
        let expr = Expr::parse(&e.expr, prims)
            .map_err(|err| LoadError::BadProgram(e.expr.clone(), err))?;
        entries.push(FrontierEntry {
            expr,
            log_likelihood: e.log_likelihood,
            log_prior: e.log_prior,
        });
    }
    Ok(Frontier { request, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::tint;

    #[test]
    fn grammar_round_trips_through_save_load() {
        let prims = base_primitives();
        let mut lib = Library::from_primitives(prims.iter().cloned());
        let body = Expr::parse("(lambda (+ $0 $0))", &prims).unwrap();
        let inv = Invented::new("#(lambda (+ $0 $0))", body).unwrap();
        lib.push_invented(inv);
        let mut g = Grammar::uniform(Arc::new(lib));
        g.weights.log_variable = -0.5;
        g.weights.log_productions[3] = 1.25;

        let saved = save_grammar(&g);
        let loaded = load_grammar(&saved, &prims).unwrap();
        assert_eq!(loaded.library.len(), g.library.len());
        assert_eq!(loaded.weights, g.weights);
        // Same priors for the same program.
        let e = Expr::parse("(+ 1 1)", &prims).unwrap();
        assert!((loaded.log_prior(&tint(), &e) - g.log_prior(&tint(), &e)).abs() < 1e-12);
    }

    #[test]
    fn nested_inventions_round_trip() {
        let prims = base_primitives();
        let mut lib = Library::from_primitives(prims.iter().cloned());
        let double_body = Expr::parse("(lambda (+ $0 $0))", &prims).unwrap();
        let double = Invented::new("#(lambda (+ $0 $0))", double_body).unwrap();
        lib.push_invented(Arc::clone(&double));
        // quad = λx. double (double x), written with the invention inline.
        let quad_body = Expr::abstraction(Expr::application(
            Expr::Invented(Arc::clone(&double)),
            Expr::application(Expr::Invented(double), Expr::Index(0)),
        ));
        let quad = Invented::new(&format!("#{quad_body}"), quad_body).unwrap();
        lib.push_invented(quad);
        let g = Grammar::uniform(Arc::new(lib));

        let saved = save_grammar(&g);
        let json = serde_json::to_string(&saved).unwrap();
        let back: SavedGrammar = serde_json::from_str(&json).unwrap();
        let loaded = load_grammar(&back, &prims).unwrap();
        assert_eq!(loaded.library.len(), g.library.len());
        assert_eq!(loaded.library.depth(), 2);
    }

    #[test]
    fn frontiers_round_trip_bit_for_bit() {
        let prims = base_primitives();
        let mut lib = Library::from_primitives(prims.iter().cloned());
        let body = Expr::parse("(lambda (+ $0 $0))", &prims).unwrap();
        let inv = Invented::new("#(lambda (+ $0 $0))", body).unwrap();
        lib.push_invented(Arc::clone(&inv));
        let mut f = Frontier::new(tint());
        f.insert(
            crate::frontier::FrontierEntry {
                expr: Expr::parse("(+ 1 1)", &prims).unwrap(),
                log_likelihood: -0.125,
                log_prior: -2.75,
            },
            5,
        );
        // A program that calls the invention, exercising `#(...)` syntax.
        f.insert(
            crate::frontier::FrontierEntry {
                expr: Expr::application(Expr::Invented(inv), Expr::parse("1", &prims).unwrap()),
                log_likelihood: 0.0,
                log_prior: -3.5,
            },
            5,
        );
        let saved = save_frontier(&f);
        let json = serde_json::to_string(&saved).unwrap();
        let back: SavedFrontier = serde_json::from_str(&json).unwrap();
        let loaded = load_frontier(&back, tint(), &prims).unwrap();
        assert_eq!(loaded, f, "entries, order, and scores must survive");
    }

    #[test]
    fn load_frontier_reports_bad_programs() {
        let prims = base_primitives();
        let saved = SavedFrontier {
            entries: vec![SavedFrontierEntry {
                expr: "(no-such-prim 1".into(),
                log_likelihood: 0.0,
                log_prior: 0.0,
            }],
        };
        assert!(matches!(
            load_frontier(&saved, tint(), &prims),
            Err(LoadError::BadProgram(_, _))
        ));
    }

    #[test]
    fn load_errors_are_informative() {
        let prims = base_primitives();
        let saved = SavedGrammar {
            primitives: vec!["no-such-prim".into()],
            inventions: vec![],
            log_variable: 0.0,
            log_productions: vec![0.0],
        };
        assert!(matches!(
            load_grammar(&saved, &prims),
            Err(LoadError::UnknownPrimitive(_))
        ));
        let saved = SavedGrammar {
            primitives: vec!["+".into()],
            inventions: vec![],
            log_variable: 0.0,
            log_productions: vec![],
        };
        assert!(matches!(
            load_grammar(&saved, &prims),
            Err(LoadError::WeightMismatch { .. })
        ));
    }
}
