//! The library `D`: the set of typed expressions a grammar draws from,
//! together with bigram parent contexts and weight vectors.

use std::fmt;
use std::sync::Arc;

use dc_lambda::expr::{Expr, Invented, Primitive};
use dc_lambda::types::Type;

/// One member of the library: a primitive or an invented routine, with its
/// (polymorphic) type cached.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryItem {
    /// The expression (always `Expr::Primitive` or `Expr::Invented`).
    pub expr: Expr,
    /// Its canonical polymorphic type.
    pub ty: Type,
}

impl LibraryItem {
    /// Wrap a primitive.
    pub fn from_primitive(p: Arc<Primitive>) -> LibraryItem {
        let ty = p.ty.clone();
        LibraryItem {
            expr: Expr::Primitive(p),
            ty,
        }
    }

    /// Wrap an invented routine.
    pub fn from_invented(inv: Arc<Invented>) -> LibraryItem {
        let ty = inv.ty.clone();
        LibraryItem {
            expr: Expr::Invented(inv),
            ty,
        }
    }

    /// Display name of the item.
    pub fn name(&self) -> String {
        self.expr.to_string()
    }

    /// Is this an invented (learned) routine?
    pub fn is_invented(&self) -> bool {
        matches!(self.expr, Expr::Invented(_))
    }
}

/// The library `D`: an ordered set of items. Shared (via [`Arc`]) between
/// the unigram grammar, the contextual grammar, and the recognition model
/// so production indices agree everywhere.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Library {
    /// The items, in a stable order. Index = production id.
    pub items: Vec<LibraryItem>,
}

impl Library {
    /// Build a library from primitives.
    pub fn from_primitives(prims: impl IntoIterator<Item = Arc<Primitive>>) -> Library {
        Library {
            items: prims.into_iter().map(LibraryItem::from_primitive).collect(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Find the production index of an expression, if present.
    pub fn position(&self, expr: &Expr) -> Option<usize> {
        self.items.iter().position(|it| &it.expr == expr)
    }

    /// Append an invented routine, returning its index.
    pub fn push_invented(&mut self, inv: Arc<Invented>) -> usize {
        self.items.push(LibraryItem::from_invented(inv));
        self.items.len() - 1
    }

    /// The invented routines in this library.
    pub fn inventions(&self) -> impl Iterator<Item = &LibraryItem> {
        self.items.iter().filter(|it| it.is_invented())
    }

    /// Number of layers of inventions-calling-inventions: the paper's
    /// "library depth" metric (Fig 7C). Primitives are depth 0; an
    /// invention's depth is 1 + max depth of the inventions its body uses.
    pub fn depth(&self) -> usize {
        self.items
            .iter()
            .map(|it| Library::item_depth(&it.expr))
            .max()
            .unwrap_or(0)
    }

    fn item_depth(expr: &Expr) -> usize {
        match expr {
            Expr::Invented(inv) => {
                1 + inv
                    .body
                    .subexpressions()
                    .iter()
                    .filter_map(|e| match e {
                        Expr::Invented(i2) if !std::ptr::eq(&**i2, &**inv) => {
                            Some(Library::item_depth(e))
                        }
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// The greatest arity of any item (used to size bigram tensors).
    pub fn max_arity(&self) -> usize {
        self.items.iter().map(|it| it.ty.arity()).max().unwrap_or(0)
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "library of {} items:", self.items.len())?;
        for it in &self.items {
            writeln!(f, "  {} : {}", it.name(), it.ty)?;
        }
        Ok(())
    }
}

/// Bigram parent context: which production (or `start`, or a variable)
/// generated the hole being filled. Mirrors the paper's tensor indices
/// `j ∈ D ∪ {start, var}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BigramParent {
    /// The root of the program (no parent).
    Start,
    /// The parent node is a bound variable applied to arguments.
    Var,
    /// The parent is production `D[i]`.
    Prod(usize),
}

impl BigramParent {
    /// Dense row index for tensor storage, given the library size.
    pub fn row(&self, library_len: usize) -> usize {
        match self {
            BigramParent::Start => library_len,
            BigramParent::Var => library_len + 1,
            BigramParent::Prod(i) => *i,
        }
    }

    /// Number of rows a tensor needs for a library of `library_len` items.
    pub fn row_count(library_len: usize) -> usize {
        library_len + 2
    }
}

/// Unnormalized log-weights for one choice point: a weight for "use a
/// variable" plus one weight per production.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightVector {
    /// Log-weight of choosing any bound variable.
    pub log_variable: f64,
    /// Log-weight of each production, indexed like [`Library::items`].
    pub log_productions: Vec<f64>,
}

impl WeightVector {
    /// Uniform weights for a library of `n` productions.
    pub fn uniform(n: usize) -> WeightVector {
        WeightVector {
            log_variable: 0.0,
            log_productions: vec![0.0; n],
        }
    }
}

/// Log-sum-exp with care for empty/-inf inputs.
pub fn logsumexp(values: &[f64]) -> f64 {
    let m = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() && m < 0.0 {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = values.iter().map(|v| (v - m).exp()).sum();
    m + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;

    #[test]
    fn library_from_primitives_indexes_stably() {
        let prims = base_primitives();
        let lib = Library::from_primitives(prims.iter().cloned());
        assert_eq!(lib.len(), prims.len());
        let map = lib.items[0].expr.clone();
        assert_eq!(lib.position(&map), Some(0));
        assert!(!lib.is_empty());
        assert!(lib.max_arity() >= 3); // fold has arity 3
    }

    #[test]
    fn depth_of_primitive_library_is_zero() {
        let prims = base_primitives();
        let lib = Library::from_primitives(prims.iter().cloned());
        assert_eq!(lib.depth(), 0);
        assert_eq!(lib.inventions().count(), 0);
    }

    #[test]
    fn depth_counts_nested_inventions() {
        use dc_lambda::expr::{Expr, Invented};
        let prims = base_primitives();
        let double_body = Expr::parse("(lambda (+ $0 $0))", &prims).unwrap();
        let double = Invented::new("double", double_body).unwrap();
        let quad_body = Expr::application(
            Expr::abstraction(Expr::application(
                Expr::Invented(double.clone()),
                Expr::application(Expr::Invented(double.clone()), Expr::Index(0)),
            )),
            Expr::parse("1", &prims).unwrap(),
        );
        let quad = Invented::new("quad1", quad_body).unwrap();
        let mut lib = Library::from_primitives(prims.iter().cloned());
        lib.push_invented(double);
        assert_eq!(lib.depth(), 1);
        lib.push_invented(quad);
        assert_eq!(lib.depth(), 2);
        assert_eq!(lib.inventions().count(), 2);
    }

    #[test]
    fn bigram_rows_are_disjoint() {
        let n = 5;
        let rows: Vec<usize> = (0..n)
            .map(BigramParent::Prod)
            .chain([BigramParent::Start, BigramParent::Var])
            .map(|p| p.row(n))
            .collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), BigramParent::row_count(n));
    }

    #[test]
    fn logsumexp_matches_direct_computation() {
        let vals = [0.5_f64.ln(), 0.25_f64.ln(), 0.25_f64.ln()];
        assert!((logsumexp(&vals) - 0.0).abs() < 1e-12);
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
        assert_eq!(logsumexp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }
}
