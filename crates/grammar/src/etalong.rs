//! η-long normalization.
//!
//! The generative model (and hence enumeration, priors, and recognition
//! training) works over β-normal, η-long programs: every function position
//! is fully applied and every arrow-typed hole is a λ. Compression rewrites
//! programs into forms that may be partially applied (`(map f)`), so before
//! scoring we convert to η-long form.

use dc_lambda::expr::Expr;
use dc_lambda::types::{Context, Type};

/// Convert `expr` to β-normal η-long form at type `request`.
///
/// Returns `None` when the expression is ill-typed at `request`, contains
/// unbound indices, or β-normalization exceeds its step budget.
pub fn eta_long(expr: &Expr, request: &Type) -> Option<Expr> {
    let normal = expr.beta_normal_form(10_000)?;
    let mut ctx = Context::starting_after(request);
    eta(&normal, request.clone(), &mut ctx, &mut Vec::new())
}

fn eta(expr: &Expr, request: Type, ctx: &mut Context, env: &mut Vec<Type>) -> Option<Expr> {
    let request = request.apply(ctx);
    if let Some((a, b)) = request.as_arrow() {
        let (a, b) = (a.clone(), b.clone());
        return match expr {
            Expr::Abstraction(body) => {
                env.insert(0, a);
                let r = eta(body, b, ctx, env);
                env.remove(0);
                Some(Expr::abstraction(r?))
            }
            _ => {
                // η-expand: e ==> (λ (e' $0)) with e' shifted under the binder.
                let shifted = expr.shift(1)?;
                let applied = Expr::application(shifted, Expr::Index(0));
                env.insert(0, a);
                let r = eta(&applied, b, ctx, env);
                env.remove(0);
                Some(Expr::abstraction(r?))
            }
        };
    }
    // Non-arrow request: decompose the spine and recurse on arguments.
    let mut spine = Vec::new();
    let mut head = expr;
    while let Expr::Application(f, x) = head {
        spine.push(&**x);
        head = f;
    }
    spine.reverse();
    let mut head_ty = match head {
        Expr::Index(i) => env.get(*i)?.clone(),
        Expr::Primitive(p) => p.ty.instantiate(ctx),
        Expr::Invented(inv) => inv.ty.instantiate(ctx),
        Expr::Abstraction(_) => return None, // β-redex survived: give up
        Expr::Application(_, _) => unreachable!("spine decomposition"),
    };
    let mut arg_tys = Vec::with_capacity(spine.len());
    for _ in &spine {
        head_ty = head_ty.apply(ctx);
        match head_ty.as_arrow() {
            Some((a, b)) => {
                arg_tys.push(a.clone());
                head_ty = b.clone();
            }
            None => {
                let a = ctx.fresh_variable();
                let b = ctx.fresh_variable();
                ctx.unify(&head_ty, &Type::arrow(a.clone(), b.clone()))
                    .ok()?;
                arg_tys.push(a);
                head_ty = b;
            }
        }
    }
    ctx.unify(&head_ty, &request).ok()?;
    let mut out = head.clone();
    for (arg, at) in spine.iter().zip(arg_tys) {
        let long = eta(arg, at, ctx, env)?;
        out = Expr::application(out, long);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist};

    #[test]
    fn expands_partial_application() {
        let prims = base_primitives();
        let e = Expr::parse("(+ 1)", &prims).unwrap();
        let long = eta_long(&e, &Type::arrow(tint(), tint())).unwrap();
        assert_eq!(long.to_string(), "(lambda (+ 1 $0))");
    }

    #[test]
    fn expands_bare_combinator() {
        let prims = base_primitives();
        let e = Expr::parse("map", &prims).unwrap();
        let t = Type::arrows(
            vec![Type::arrow(tint(), tint()), tlist(tint())],
            tlist(tint()),
        );
        let long = eta_long(&e, &t).unwrap();
        // Fully η-long: the arrow-typed variable argument is itself
        // expanded to a λ.
        assert_eq!(
            long.to_string(),
            "(lambda (lambda (map (lambda ($2 $0)) $0)))"
        );
    }

    #[test]
    fn already_long_is_fixed_point() {
        let prims = base_primitives();
        let e = Expr::parse("(lambda (+ $0 1))", &prims).unwrap();
        let long = eta_long(&e, &Type::arrow(tint(), tint())).unwrap();
        assert_eq!(long, e);
    }

    #[test]
    fn beta_reduces_first() {
        let prims = base_primitives();
        let e = Expr::parse("((lambda (+ $0 $0)) 1)", &prims).unwrap();
        let long = eta_long(&e, &tint()).unwrap();
        assert_eq!(long.to_string(), "(+ 1 1)");
    }

    #[test]
    fn rejects_ill_typed() {
        let prims = base_primitives();
        let e = Expr::parse("(+ 1 1)", &prims).unwrap();
        assert!(eta_long(&e, &dc_lambda::types::tbool()).is_none());
    }

    #[test]
    fn partial_higher_order_argument_is_expanded() {
        let prims = base_primitives();
        // `(map (+ 1) $0)` has a partially applied argument.
        let e = Expr::parse("(lambda (map (+ 1) $0))", &prims).unwrap();
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        let long = eta_long(&e, &t).unwrap();
        assert_eq!(long.to_string(), "(lambda (map (lambda (+ 1 $0)) $0))");
    }
}
