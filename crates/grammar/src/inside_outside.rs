//! Re-estimating grammar weights `θ` from frontiers (the `argmax_θ ℒ` step
//! of abstraction sleep, §2.4), with a symmetric-Dirichlet / pseudo-count
//! MAP estimate.

use std::sync::Arc;

use crate::frontier::Frontier;
use crate::grammar::{generation_trace, ContextualGrammar, Grammar, ProgramPrior};
use crate::library::{BigramParent, Library};

/// Pseudo-count used for Dirichlet smoothing.
pub const DEFAULT_PSEUDOCOUNT: f64 = 1.0;

#[derive(Debug, Clone, Default)]
struct Counts {
    variable: f64,
    productions: Vec<f64>,
}

impl Counts {
    fn new(n: usize) -> Counts {
        Counts {
            variable: 0.0,
            productions: vec![0.0; n],
        }
    }
}

/// Fit unigram weights to the posterior-weighted programs in `frontiers`.
///
/// Each frontier member contributes its normalized within-beam posterior
/// weight to the usage counts of the productions it uses; weights are then
/// set to smoothed log-counts (normalization happens per choice point at
/// generation time, so unnormalized log-counts suffice).
pub fn fit_grammar(library: &Arc<Library>, frontiers: &[Frontier], pseudocount: f64) -> Grammar {
    let scorer = Grammar::uniform(Arc::clone(library));
    let mut counts = Counts::new(library.len());
    accumulate(&scorer, frontiers, |_, _, chosen, w| match chosen {
        None => counts.variable += w,
        Some(j) => counts.productions[j] += w,
    });
    let mut g = Grammar::uniform(Arc::clone(library));
    g.weights.log_variable = (pseudocount + counts.variable).ln();
    for (w, c) in g
        .weights
        .log_productions
        .iter_mut()
        .zip(&counts.productions)
    {
        *w = (pseudocount + c).ln();
    }
    g
}

/// Fit a full bigram table to frontiers (used to initialize the recognition
/// model's target distribution and for the bigram-baseline ablation).
pub fn fit_contextual_grammar(
    library: &Arc<Library>,
    frontiers: &[Frontier],
    pseudocount: f64,
) -> ContextualGrammar {
    let scorer = Grammar::uniform(Arc::clone(library));
    let mut cg = ContextualGrammar::uniform(Arc::clone(library));
    let rows = BigramParent::row_count(library.len());
    let mut counts = vec![Counts::new(library.len()); rows * cg.max_arity];
    {
        let max_arity = cg.max_arity;
        let lib_len = library.len();
        accumulate(&scorer, frontiers, |parent, arg, chosen, w| {
            let slot = parent.row(lib_len) * max_arity + arg.min(max_arity - 1);
            match chosen {
                None => counts[slot].variable += w,
                Some(j) => counts[slot].productions[j] += w,
            }
        });
    }
    for (slot, c) in counts.iter().enumerate() {
        let wv = &mut cg.table[slot];
        wv.log_variable = (pseudocount + c.variable).ln();
        for (w, cj) in wv.log_productions.iter_mut().zip(&c.productions) {
            *w = (pseudocount + cj).ln();
        }
    }
    cg
}

/// Walk every frontier program, reporting each generation event together
/// with the program's normalized within-beam posterior weight.
fn accumulate(
    scorer: &dyn ProgramPrior,
    frontiers: &[Frontier],
    mut record: impl FnMut(BigramParent, usize, Option<usize>, f64),
) {
    for frontier in frontiers {
        if frontier.is_empty() {
            continue;
        }
        let weights = frontier.posterior_weights();
        for (entry, w) in frontier.entries.iter().zip(weights) {
            if let Some((_, events)) = generation_trace(scorer, &frontier.request, &entry.expr) {
                for ev in events {
                    record(ev.parent, ev.arg, ev.chosen, w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FrontierEntry;
    use dc_lambda::expr::Expr;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, Type};

    #[test]
    fn fitting_shifts_mass_toward_used_productions() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g0 = Grammar::uniform(Arc::clone(&lib));
        let t = Type::arrow(tint(), tint());
        let prog = Expr::parse("(lambda (+ $0 1))", &prims).unwrap();
        let mut f = Frontier::new(t.clone());
        f.insert(
            FrontierEntry {
                log_prior: g0.log_prior(&t, &prog),
                log_likelihood: 0.0,
                expr: prog.clone(),
            },
            5,
        );
        let g1 = fit_grammar(&lib, &[f], 1.0);
        // `+` was used; `cons` was not: the fitted grammar should prefer
        // the program more than the uniform grammar did.
        assert!(g1.log_prior(&t, &prog) > g0.log_prior(&t, &prog));
        let plus = lib.position(&Expr::parse("+", &prims).unwrap()).unwrap();
        let cons = lib.position(&Expr::parse("cons", &prims).unwrap()).unwrap();
        assert!(g1.weights.log_productions[plus] > g1.weights.log_productions[cons]);
    }

    #[test]
    fn contextual_fit_learns_bigram_statistics() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let t = tint();
        // Corpus: always (+ 1 0), never anything else.
        let prog = Expr::parse("(+ 1 0)", &prims).unwrap();
        let g0 = Grammar::uniform(Arc::clone(&lib));
        let mut f = Frontier::new(t.clone());
        f.insert(
            FrontierEntry {
                log_prior: g0.log_prior(&t, &prog),
                log_likelihood: 0.0,
                expr: prog.clone(),
            },
            5,
        );
        let cg = fit_contextual_grammar(&lib, &[f], 0.1);
        let plus = lib.position(&Expr::parse("+", &prims).unwrap()).unwrap();
        let one = lib.position(&Expr::parse("1", &prims).unwrap()).unwrap();
        let zero = lib.position(&Expr::parse("0", &prims).unwrap()).unwrap();
        // First argument of + was always 1, second always 0.
        let w0 = cg.weights(BigramParent::Prod(plus), 0);
        assert!(w0.log_productions[one] > w0.log_productions[zero]);
        let w1 = cg.weights(BigramParent::Prod(plus), 1);
        assert!(w1.log_productions[zero] > w1.log_productions[one]);
    }

    #[test]
    fn empty_frontiers_give_uniformish_grammar() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = fit_grammar(&lib, &[], 1.0);
        // All weights equal (log(1)) = 0.
        assert!(g.weights.log_productions.iter().all(|w| w.abs() < 1e-12));
    }
}
