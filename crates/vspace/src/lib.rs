//! # dc-vspace
//!
//! Version spaces, inverse β-reduction, and library compression — the
//! "abstraction sleep" phase of DreamCoder (§3 of the paper) and its key
//! algorithmic novelty.
//!
//! * [`space::SpaceArena`] — hash-consed version spaces with `⊎`, `∅`, `Λ`
//!   (Definition 3.1), intersection, and the `↓` downshift;
//! * [`invert`] — the `S_k`, `Iβ′`, `Iβn`, and `Iβ` operators of Fig 5;
//! * [`extract`] — minimum-description-length extraction `extract(v | D)`;
//! * [`compress`] — candidate proposal and the Eq. 4 objective, greedily
//!   growing the library until the score stops improving.
//!
//! # Example: refactoring exposes shared structure
//!
//! ```
//! use dc_vspace::space::SpaceArena;
//! use dc_lambda::expr::Expr;
//! use dc_lambda::primitives::base_primitives;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prims = base_primitives();
//! let e = Expr::parse("(+ 1 1)", &prims)?;
//! let mut arena = SpaceArena::new();
//! let space = arena.refactor(&e, 1);
//! // The space contains the rewrite ((λ (+ $0 $0)) 1) — "double".
//! let double = Expr::parse("((lambda (+ $0 $0)) 1)", &prims)?;
//! assert!(arena.contains(space, &double));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compress;
pub mod extract;
pub mod invert;
pub mod space;

pub use compress::{compress, joint_score, CompressionConfig, CompressionResult, CompressionStep};
pub use extract::{Extraction, ExtractionMemo, Matcher};
pub use space::{SpaceArena, SpaceId, SpaceNode};
