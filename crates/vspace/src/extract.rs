//! Minimal-cost extraction from version spaces (Fig 5A): `extract(v | D)`
//! finds `argmin_{ρ ∈ ⟦v⟧} size(ρ | D)`, where members of the library
//! count as size 1. The optional *candidate* invention is the new routine
//! being scored during abstraction sleep; any node whose extension
//! contains the candidate's body may be replaced by the invention at
//! cost 1.
//!
//! Extraction is two-phase: a cost-only pass over the space DAG records,
//! per node, the minimal cost and which branch achieved it (dense `Vec`
//! memos — [`SpaceId`]s are contiguous arena indices), then the winning
//! expression is rebuilt top-down along the recorded choices only. The
//! hot path of abstraction sleep runs this once per (proposal, frontier),
//! so it allocates no expression nodes off the optimal path and touches
//! no hash maps.

use std::sync::Arc;

use dc_lambda::expr::{Expr, Invented};

use crate::space::{SpaceArena, SpaceId, SpaceNode};

/// Result of extracting the cheapest member of a space.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// `size(expr | D)` with library members (and the candidate) costing 1.
    pub cost: usize,
    /// The extracted expression; uses [`Expr::Invented`] where the
    /// candidate was chosen.
    pub expr: Expr,
}

/// Which branch achieved a node's minimal cost (enough to rebuild the
/// winning expression without re-searching).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    /// Replace the whole node by the candidate invention.
    Invention,
    /// The node's own index/terminal expression.
    Leaf,
    /// Descend into the abstraction body.
    Abstraction,
    /// Descend into both application children.
    Application,
    /// The winning union member.
    Union(SpaceId),
}

#[derive(Debug, Clone, Copy, PartialEq, Default)]
enum Slot {
    #[default]
    Unvisited,
    Unreachable,
    Done {
        cost: u32,
        choice: Choice,
    },
}

/// Memo table reusable across extractions with the same candidate:
/// a dense per-[`SpaceId`] table of minimal costs and winning choices.
#[derive(Debug, Default)]
pub struct ExtractionMemo {
    slots: Vec<Slot>,
}

impl ExtractionMemo {
    /// An empty memo.
    pub fn new() -> ExtractionMemo {
        ExtractionMemo::default()
    }

    #[inline]
    fn get(&self, v: SpaceId) -> Slot {
        self.slots.get(v).copied().unwrap_or(Slot::Unvisited)
    }

    #[inline]
    fn set(&mut self, v: SpaceId, s: Slot) {
        if v >= self.slots.len() {
            self.slots.resize(v + 1, Slot::Unvisited);
        }
        self.slots[v] = s;
    }
}

/// The candidate body's subterm structure, numbered so matcher memo keys
/// are small dense integers instead of expression pointers.
#[derive(Debug, Clone, Copy)]
enum Pat {
    Index(usize),
    /// A primitive/invented leaf, or any subterm compared wholesale
    /// against a terminal space node; the expression lives in
    /// `Matcher::exprs` at the same index.
    Leaf,
    Abstraction(u32),
    Application(u32, u32),
}

/// Memoized membership tester for one candidate expression: answers
/// "does `⟦v⟧` contain this expression?" across many spaces cheaply.
/// The memo is a dense three-state table over `(space, subterm)` pairs.
#[derive(Debug)]
pub struct Matcher {
    invention: Arc<Invented>,
    pats: Vec<Pat>,
    exprs: Vec<Expr>,
    memo: Vec<u8>,
}

const MATCH_UNKNOWN: u8 = 0;
const MATCH_NO: u8 = 1;
const MATCH_YES: u8 = 2;

impl Matcher {
    /// Build a matcher for an invention whose body is the expression to
    /// look for inside version spaces.
    pub fn new(invention: Arc<Invented>) -> Matcher {
        let mut pats = Vec::new();
        let mut exprs = Vec::new();
        number_subterms(&invention.body, &mut pats, &mut exprs);
        Matcher {
            invention,
            pats,
            exprs,
            memo: Vec::new(),
        }
    }

    /// The invention this matcher stands for.
    pub fn invention(&self) -> &Arc<Invented> {
        &self.invention
    }

    /// Does `⟦v⟧` contain the candidate's body?
    pub fn matches(&mut self, arena: &SpaceArena, v: SpaceId) -> bool {
        let root = (self.pats.len() - 1) as u32;
        self.matches_at(arena, v, root)
    }

    fn matches_at(&mut self, arena: &SpaceArena, v: SpaceId, p: u32) -> bool {
        let key = v * self.pats.len() + p as usize;
        if key >= self.memo.len() {
            self.memo.resize((v + 1) * self.pats.len(), MATCH_UNKNOWN);
        }
        match self.memo[key] {
            MATCH_NO => return false,
            MATCH_YES => return true,
            _ => {}
        }
        let pat = self.pats[p as usize];
        let r = match (arena.node(v), pat) {
            (SpaceNode::Void, _) => false,
            (SpaceNode::Universe, _) => true,
            (SpaceNode::Union(ms), _) => {
                let ms = ms.clone();
                ms.iter().any(|&m| self.matches_at(arena, m, p))
            }
            (SpaceNode::Index(i), Pat::Index(j)) => *i == j,
            (SpaceNode::Terminal(t), _) => *t == self.exprs[p as usize],
            (SpaceNode::Abstraction(b), Pat::Abstraction(pb)) => {
                let b = *b;
                self.matches_at(arena, b, pb)
            }
            (SpaceNode::Application(f, x), Pat::Application(pf, px)) => {
                let (f, x) = (*f, *x);
                self.matches_at(arena, f, pf) && self.matches_at(arena, x, px)
            }
            _ => false,
        };
        self.memo[key] = if r { MATCH_YES } else { MATCH_NO };
        r
    }
}

/// Post-order-number `e`'s subterms into `pats`/`exprs`; returns the
/// index assigned to `e` (the root ends up last).
fn number_subterms(e: &Expr, pats: &mut Vec<Pat>, exprs: &mut Vec<Expr>) -> u32 {
    let pat = match e {
        Expr::Index(i) => Pat::Index(*i),
        Expr::Primitive(_) | Expr::Invented(_) => Pat::Leaf,
        Expr::Abstraction(b) => Pat::Abstraction(number_subterms(b, pats, exprs)),
        Expr::Application(f, x) => {
            let pf = number_subterms(f, pats, exprs);
            let px = number_subterms(x, pats, exprs);
            Pat::Application(pf, px)
        }
    };
    pats.push(pat);
    exprs.push(e.clone());
    (pats.len() - 1) as u32
}

impl SpaceArena {
    /// Extract the minimum-cost inhabitant of `v`.
    ///
    /// `candidate` is an optional matcher for a new invention: any node
    /// whose extension contains the invention's body may be replaced by
    /// the invention at cost 1. Pass a shared `memo` when extracting many
    /// spaces against the same candidate.
    pub fn minimal_inhabitant(
        &self,
        v: SpaceId,
        candidate: Option<&mut Matcher>,
        memo: &mut ExtractionMemo,
    ) -> Option<Extraction> {
        let mut candidate = candidate;
        self.compute_cost(v, &mut candidate, memo);
        match memo.get(v) {
            Slot::Done { cost, .. } => Some(Extraction {
                cost: cost as usize,
                expr: self.rebuild(v, &candidate, memo),
            }),
            _ => None,
        }
    }

    /// Cost-only pass: fill `memo` for `v` and everything below it. No
    /// expressions are built here.
    fn compute_cost(
        &self,
        v: SpaceId,
        candidate: &mut Option<&mut Matcher>,
        memo: &mut ExtractionMemo,
    ) {
        if memo.get(v) != Slot::Unvisited {
            return;
        }
        // Never materialize the invention at `Λ`: the universe "contains"
        // every expression, but an unconstrained slot (an unused redex
        // argument) should stay unextractable rather than be filled with
        // an arbitrary routine.
        let at_universe = matches!(self.node(v), SpaceNode::Universe);
        let invention_cost: Option<u32> = match candidate.as_deref_mut() {
            Some(m) if !at_universe => m.matches(self, v).then_some(1),
            _ => None,
        };
        let structural: Option<(u32, Choice)> = match self.node(v) {
            SpaceNode::Void | SpaceNode::Universe => None,
            SpaceNode::Index(_) | SpaceNode::Terminal(_) => Some((1, Choice::Leaf)),
            SpaceNode::Abstraction(b) => {
                let b = *b;
                self.compute_cost(b, candidate, memo);
                match memo.get(b) {
                    Slot::Done { cost, .. } => Some((1 + cost, Choice::Abstraction)),
                    _ => None,
                }
            }
            SpaceNode::Application(f, x) => {
                let (f, x) = (*f, *x);
                self.compute_cost(f, candidate, memo);
                self.compute_cost(x, candidate, memo);
                match (memo.get(f), memo.get(x)) {
                    (Slot::Done { cost: cf, .. }, Slot::Done { cost: cx, .. }) => {
                        Some((1 + cf + cx, Choice::Application))
                    }
                    _ => None,
                }
            }
            SpaceNode::Union(ms) => {
                let ms = ms.clone();
                let mut best: Option<(u32, Choice)> = None;
                for m in ms {
                    self.compute_cost(m, candidate, memo);
                    if let Slot::Done { cost, .. } = memo.get(m) {
                        // Strict `<`: ties keep the first (lowest-id) member.
                        if best.is_none_or(|(b, _)| cost < b) {
                            best = Some((cost, Choice::Union(m)));
                        }
                    }
                }
                best
            }
        };
        let slot = match (invention_cost, structural) {
            // The invention wins ties so rewrites actually use it.
            (Some(ic), Some((sc, _))) if ic <= sc => Slot::Done {
                cost: ic,
                choice: Choice::Invention,
            },
            (Some(ic), None) => Slot::Done {
                cost: ic,
                choice: Choice::Invention,
            },
            (_, Some((sc, choice))) => Slot::Done { cost: sc, choice },
            (None, None) => Slot::Unreachable,
        };
        memo.set(v, slot);
    }

    /// Rebuild the winning expression by following recorded choices —
    /// allocation happens only along the optimal path.
    fn rebuild(&self, v: SpaceId, candidate: &Option<&mut Matcher>, memo: &ExtractionMemo) -> Expr {
        let Slot::Done { choice, .. } = memo.get(v) else {
            unreachable!("rebuild called on unreachable space {v}");
        };
        match choice {
            Choice::Invention => {
                let m = candidate
                    .as_ref()
                    .expect("invention chosen only when a candidate was supplied");
                Expr::Invented(Arc::clone(m.invention()))
            }
            Choice::Leaf => match self.node(v) {
                SpaceNode::Index(i) => Expr::Index(*i),
                SpaceNode::Terminal(e) => e.clone(),
                other => unreachable!("leaf choice on non-leaf node {other:?}"),
            },
            Choice::Abstraction => match self.node(v) {
                SpaceNode::Abstraction(b) => Expr::abstraction(self.rebuild(*b, candidate, memo)),
                other => unreachable!("abstraction choice on {other:?}"),
            },
            Choice::Application => match self.node(v) {
                SpaceNode::Application(f, x) => Expr::application(
                    self.rebuild(*f, candidate, memo),
                    self.rebuild(*x, candidate, memo),
                ),
                other => unreachable!("application choice on {other:?}"),
            },
            Choice::Union(m) => self.rebuild(m, candidate, memo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;

    fn parse(s: &str) -> Expr {
        Expr::parse(s, &base_primitives()).unwrap()
    }

    #[test]
    fn extraction_of_singleton_is_identity() {
        let mut a = SpaceArena::new();
        let e = parse("(lambda (+ $0 1))");
        let v = a.incorporate(&e);
        let got = a
            .minimal_inhabitant(v, None, &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(got.expr, e);
        assert_eq!(got.cost, e.size());
    }

    #[test]
    fn extraction_prefers_smaller_union_member() {
        let mut a = SpaceArena::new();
        let small = parse("0");
        let big = parse("(+ 0 (+ 0 0))");
        let vs = a.incorporate(&small);
        let vb = a.incorporate(&big);
        let u = a.union([vb, vs]);
        let got = a
            .minimal_inhabitant(u, None, &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(got.expr, small);
    }

    #[test]
    fn candidate_compresses_refactorings() {
        // Refactor (+ 1 1); with the invention double = λ (+ $0 $0), the
        // cheapest member is (double 1) at cost 2.
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let space = a.refactor(&e, 1);
        let body = parse("(lambda (+ $0 $0))");
        let inv = Invented::new("#(lambda (+ $0 $0))", body).unwrap();
        let mut matcher = Matcher::new(inv);
        let got = a
            .minimal_inhabitant(space, Some(&mut matcher), &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(got.cost, 3, "expected (double 1), got {}", got.expr);
        assert_eq!(got.expr.to_string(), "(#(lambda (+ $0 $0)) 1)");
        // Without the candidate, the original is cheapest.
        let plain = a
            .minimal_inhabitant(space, None, &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(plain.expr, e);
    }

    #[test]
    fn matcher_finds_bodies_inside_merged_unions() {
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let space = a.refactor(&e, 1);
        let inv = Invented::new("#d", parse("(lambda (+ $0 $0))")).unwrap();
        let mut m = Matcher::new(inv);
        // The abstraction (λ (+ $0 $0)) exists somewhere inside the space
        // even though bodies were merged into unions.
        let hit = a.reachable(space).into_iter().any(|id| m.matches(&a, id));
        assert!(hit, "matcher should find the double body in the space");
    }

    #[test]
    fn universe_is_not_extractable() {
        let mut a = SpaceArena::new();
        let u = a.universe();
        assert!(a
            .minimal_inhabitant(u, None, &mut ExtractionMemo::new())
            .is_none());
        let v = a.void();
        assert!(a
            .minimal_inhabitant(v, None, &mut ExtractionMemo::new())
            .is_none());
    }

    #[test]
    fn shared_memo_is_consistent_across_spaces() {
        let mut a = SpaceArena::new();
        let e1 = parse("(+ 1 1)");
        let e2 = parse("(+ 0 0)");
        let s1 = a.refactor(&e1, 1);
        let s2 = a.refactor(&e2, 1);
        let mut memo = ExtractionMemo::new();
        let r1 = a.minimal_inhabitant(s1, None, &mut memo).unwrap();
        let r2 = a.minimal_inhabitant(s2, None, &mut memo).unwrap();
        assert_eq!(r1.expr, e1);
        assert_eq!(r2.expr, e2);
    }

    #[test]
    fn terminal_nodes_match_whole_subterm_patterns() {
        // A Terminal space node holding a compound expression must match
        // the corresponding compound pattern subterm wholesale.
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let v = a.incorporate(&e);
        let inv = Invented::new("#p", parse("(lambda (+ 1 1))")).unwrap();
        let mut m = Matcher::new(inv);
        // Somewhere in the incorporated space the body (+ 1 1) appears;
        // the matcher's root is (λ (+ 1 1)) which does not.
        assert!(!m.matches(&a, v));
    }
}
