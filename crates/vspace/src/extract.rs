//! Minimal-cost extraction from version spaces (Fig 5A): `extract(v | D)`
//! finds `argmin_{ρ ∈ ⟦v⟧} size(ρ | D)`, where members of the library
//! count as size 1. The optional *candidate* invention is the new routine
//! being scored during abstraction sleep; any node whose extension
//! contains the candidate's body may be replaced by the invention at
//! cost 1.

use std::collections::HashMap;
use std::sync::Arc;

use dc_lambda::expr::{Expr, Invented};

use crate::space::{SpaceArena, SpaceId, SpaceNode};

/// Result of extracting the cheapest member of a space.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// `size(expr | D)` with library members (and the candidate) costing 1.
    pub cost: usize,
    /// The extracted expression; uses [`Expr::Invented`] where the
    /// candidate was chosen.
    pub expr: Expr,
}

/// Memo table reusable across extractions with the same candidate.
pub type ExtractionMemo = HashMap<SpaceId, Option<Extraction>>;

/// Memoized membership tester for one candidate expression: answers
/// "does `⟦v⟧` contain this expression?" across many spaces cheaply.
#[derive(Debug)]
pub struct Matcher {
    expr: Expr,
    invention: Arc<Invented>,
    memo: HashMap<(SpaceId, usize), bool>,
}

impl Matcher {
    /// Build a matcher for an invention whose body is the expression to
    /// look for inside version spaces.
    pub fn new(invention: Arc<Invented>) -> Matcher {
        Matcher {
            expr: invention.body.clone(),
            invention,
            memo: HashMap::new(),
        }
    }

    /// The invention this matcher stands for.
    pub fn invention(&self) -> &Arc<Invented> {
        &self.invention
    }

    /// Does `⟦v⟧` contain the candidate's body?
    pub fn matches(&mut self, arena: &SpaceArena, v: SpaceId) -> bool {
        let expr = self.expr.clone();
        self.matches_at(arena, v, &expr)
    }

    fn matches_at(&mut self, arena: &SpaceArena, v: SpaceId, e: &Expr) -> bool {
        let key = (v, e as *const Expr as usize);
        if let Some(&r) = self.memo.get(&key) {
            return r;
        }
        let r = match (arena.node(v), e) {
            (SpaceNode::Void, _) => false,
            (SpaceNode::Universe, _) => true,
            (SpaceNode::Union(ms), _) => {
                let ms = ms.clone();
                ms.iter().any(|&m| self.matches_at(arena, m, e))
            }
            (SpaceNode::Index(i), Expr::Index(j)) => i == j,
            (SpaceNode::Terminal(t), _) => t == e,
            (SpaceNode::Abstraction(b), Expr::Abstraction(eb)) => {
                let b = *b;
                self.matches_at(arena, b, eb)
            }
            (SpaceNode::Application(f, x), Expr::Application(ef, ex)) => {
                let (f, x) = (*f, *x);
                self.matches_at(arena, f, ef) && self.matches_at(arena, x, ex)
            }
            _ => false,
        };
        self.memo.insert(key, r);
        r
    }
}

impl SpaceArena {
    /// Extract the minimum-cost inhabitant of `v`.
    ///
    /// `candidate` is an optional matcher for a new invention: any node
    /// whose extension contains the invention's body may be replaced by
    /// the invention at cost 1. Pass a shared `memo` when extracting many
    /// spaces against the same candidate.
    pub fn minimal_inhabitant(
        &self,
        v: SpaceId,
        candidate: Option<&mut Matcher>,
        memo: &mut ExtractionMemo,
    ) -> Option<Extraction> {
        match candidate {
            Some(m) => self.extract_rec(v, Some(m), memo),
            None => self.extract_rec(v, None, memo),
        }
    }

    fn extract_rec(
        &self,
        v: SpaceId,
        mut candidate: Option<&mut Matcher>,
        memo: &mut ExtractionMemo,
    ) -> Option<Extraction> {
        if let Some(cached) = memo.get(&v) {
            return cached.clone();
        }
        // Never materialize the invention at `Λ`: the universe "contains"
        // every expression, but an unconstrained slot (an unused redex
        // argument) should stay unextractable rather than be filled with
        // an arbitrary routine.
        let at_universe = matches!(self.node(v), SpaceNode::Universe);
        let invention_here = match candidate.as_deref_mut() {
            Some(m) if !at_universe => {
                if m.matches(self, v) {
                    Some(Extraction {
                        cost: 1,
                        expr: Expr::Invented(Arc::clone(m.invention())),
                    })
                } else {
                    None
                }
            }
            _ => None,
        };
        let structural = match self.node(v) {
            SpaceNode::Void | SpaceNode::Universe => None,
            SpaceNode::Index(i) => Some(Extraction {
                cost: 1,
                expr: Expr::Index(*i),
            }),
            SpaceNode::Terminal(e) => Some(Extraction {
                cost: 1,
                expr: e.clone(),
            }),
            SpaceNode::Abstraction(b) => {
                self.extract_rec(*b, candidate.as_deref_mut(), memo)
                    .map(|body| Extraction {
                        cost: 1 + body.cost,
                        expr: Expr::abstraction(body.expr),
                    })
            }
            SpaceNode::Application(f, x) => {
                let (f, x) = (*f, *x);
                let fe = self.extract_rec(f, candidate.as_deref_mut(), memo);
                let xe = self.extract_rec(x, candidate.as_deref_mut(), memo);
                match (fe, xe) {
                    (Some(fe), Some(xe)) => Some(Extraction {
                        cost: 1 + fe.cost + xe.cost,
                        expr: Expr::application(fe.expr, xe.expr),
                    }),
                    _ => None,
                }
            }
            SpaceNode::Union(ms) => {
                let ms = ms.clone();
                let mut best: Option<Extraction> = None;
                for m in ms {
                    if let Some(e) = self.extract_rec(m, candidate.as_deref_mut(), memo) {
                        if best.as_ref().is_none_or(|b| e.cost < b.cost) {
                            best = Some(e);
                        }
                    }
                }
                best
            }
        };
        let result = match (invention_here, structural) {
            (Some(a), Some(b)) => Some(if a.cost <= b.cost { a } else { b }),
            (a, b) => a.or(b),
        };
        memo.insert(v, result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;

    fn parse(s: &str) -> Expr {
        Expr::parse(s, &base_primitives()).unwrap()
    }

    #[test]
    fn extraction_of_singleton_is_identity() {
        let mut a = SpaceArena::new();
        let e = parse("(lambda (+ $0 1))");
        let v = a.incorporate(&e);
        let got = a
            .minimal_inhabitant(v, None, &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(got.expr, e);
        assert_eq!(got.cost, e.size());
    }

    #[test]
    fn extraction_prefers_smaller_union_member() {
        let mut a = SpaceArena::new();
        let small = parse("0");
        let big = parse("(+ 0 (+ 0 0))");
        let vs = a.incorporate(&small);
        let vb = a.incorporate(&big);
        let u = a.union([vb, vs]);
        let got = a
            .minimal_inhabitant(u, None, &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(got.expr, small);
    }

    #[test]
    fn candidate_compresses_refactorings() {
        // Refactor (+ 1 1); with the invention double = λ (+ $0 $0), the
        // cheapest member is (double 1) at cost 2.
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let space = a.refactor(&e, 1);
        let body = parse("(lambda (+ $0 $0))");
        let inv = Invented::new("#(lambda (+ $0 $0))", body).unwrap();
        let mut matcher = Matcher::new(inv);
        let got = a
            .minimal_inhabitant(space, Some(&mut matcher), &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(got.cost, 3, "expected (double 1), got {}", got.expr);
        assert_eq!(got.expr.to_string(), "(#(lambda (+ $0 $0)) 1)");
        // Without the candidate, the original is cheapest.
        let plain = a
            .minimal_inhabitant(space, None, &mut ExtractionMemo::new())
            .unwrap();
        assert_eq!(plain.expr, e);
    }

    #[test]
    fn matcher_finds_bodies_inside_merged_unions() {
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let space = a.refactor(&e, 1);
        let inv = Invented::new("#d", parse("(lambda (+ $0 $0))")).unwrap();
        let mut m = Matcher::new(inv);
        // The abstraction (λ (+ $0 $0)) exists somewhere inside the space
        // even though bodies were merged into unions.
        let hit = a.reachable(space).into_iter().any(|id| m.matches(&a, id));
        assert!(hit, "matcher should find the double body in the space");
    }

    #[test]
    fn universe_is_not_extractable() {
        let mut a = SpaceArena::new();
        let u = a.universe();
        assert!(a
            .minimal_inhabitant(u, None, &mut ExtractionMemo::new())
            .is_none());
        let v = a.void();
        assert!(a
            .minimal_inhabitant(v, None, &mut ExtractionMemo::new())
            .is_none());
    }

    #[test]
    fn shared_memo_is_consistent_across_spaces() {
        let mut a = SpaceArena::new();
        let e1 = parse("(+ 1 1)");
        let e2 = parse("(+ 0 0)");
        let s1 = a.refactor(&e1, 1);
        let s2 = a.refactor(&e2, 1);
        let mut memo = ExtractionMemo::new();
        let r1 = a.minimal_inhabitant(s1, None, &mut memo).unwrap();
        let r2 = a.minimal_inhabitant(s2, None, &mut memo).unwrap();
        assert_eq!(r1.expr, e1);
        assert_eq!(r2.expr, e2);
    }
}
