//! Version spaces (Definition 3.1 of the paper): hash-consed terms with
//! nondeterministic union (`⊎`), the empty space `∅`, and the universe `Λ`.
//!
//! All spaces live in a [`SpaceArena`]; each distinct node is stored once
//! ("we hash cons each version space", Fig 5 caption), so equality of
//! [`SpaceId`]s is structural equality and the inversion operators can be
//! memoized per node.

use std::collections::HashMap;

use dc_lambda::expr::Expr;

/// Identifier of a version space inside its arena.
pub type SpaceId = usize;

/// A version-space node (Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpaceNode {
    /// `∅` — the empty set of programs.
    Void,
    /// `Λ` — every λ-calculus expression.
    Universe,
    /// A de Bruijn index `$i`.
    Index(usize),
    /// A primitive or invented leaf.
    Terminal(Expr),
    /// `λ v`.
    Abstraction(SpaceId),
    /// `(f x)`.
    Application(SpaceId, SpaceId),
    /// `⊎ V` — nondeterministic choice. Invariant: ≥ 2 members, no
    /// duplicates, no nested unions, no `Void`/`Universe` members.
    Union(Vec<SpaceId>),
}

/// Arena holding hash-consed version spaces and the memo tables for the
/// inversion operators.
#[derive(Debug, Default)]
pub struct SpaceArena {
    nodes: Vec<SpaceNode>,
    hashcons: HashMap<SpaceNode, SpaceId>,
    /// Cached id of `Void`.
    void_id: Option<SpaceId>,
    /// Cached id of `Universe`.
    universe_id: Option<SpaceId>,
    pub(crate) substitution_memo: HashMap<(SpaceId, usize), Vec<(SpaceId, SpaceId)>>,
    pub(crate) inversion_memo: HashMap<SpaceId, SpaceId>,
    pub(crate) intersection_memo: HashMap<(SpaceId, SpaceId), SpaceId>,
    pub(crate) downshift_memo: HashMap<(SpaceId, usize, usize), SpaceId>,
}

impl SpaceArena {
    /// A fresh, empty arena.
    pub fn new() -> SpaceArena {
        SpaceArena::default()
    }

    /// Number of distinct nodes allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look at a node.
    pub fn node(&self, id: SpaceId) -> &SpaceNode {
        &self.nodes[id]
    }

    fn intern(&mut self, node: SpaceNode) -> SpaceId {
        if let Some(&id) = self.hashcons.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.hashcons.insert(node, id);
        id
    }

    /// The empty space `∅`.
    pub fn void(&mut self) -> SpaceId {
        if let Some(id) = self.void_id {
            return id;
        }
        let id = self.intern(SpaceNode::Void);
        self.void_id = Some(id);
        id
    }

    /// The universe `Λ`.
    pub fn universe(&mut self) -> SpaceId {
        if let Some(id) = self.universe_id {
            return id;
        }
        let id = self.intern(SpaceNode::Universe);
        self.universe_id = Some(id);
        id
    }

    /// A de Bruijn index space.
    pub fn index(&mut self, i: usize) -> SpaceId {
        self.intern(SpaceNode::Index(i))
    }

    /// A terminal (primitive or invented) space.
    pub fn terminal(&mut self, e: Expr) -> SpaceId {
        debug_assert!(matches!(e, Expr::Primitive(_) | Expr::Invented(_)));
        self.intern(SpaceNode::Terminal(e))
    }

    /// `λ body` — collapses to `∅` when `body = ∅`.
    pub fn abstraction(&mut self, body: SpaceId) -> SpaceId {
        if self.nodes[body] == SpaceNode::Void {
            return self.void();
        }
        self.intern(SpaceNode::Abstraction(body))
    }

    /// `(f x)` — collapses to `∅` when either part is `∅`.
    pub fn application(&mut self, f: SpaceId, x: SpaceId) -> SpaceId {
        if self.nodes[f] == SpaceNode::Void || self.nodes[x] == SpaceNode::Void {
            return self.void();
        }
        self.intern(SpaceNode::Application(f, x))
    }

    /// `⊎ members` — flattens nested unions, drops `∅`, dedups, and
    /// collapses degenerate cases.
    pub fn union(&mut self, members: impl IntoIterator<Item = SpaceId>) -> SpaceId {
        let mut flat = Vec::new();
        let mut stack: Vec<SpaceId> = members.into_iter().collect();
        stack.reverse();
        while let Some(m) = stack.pop() {
            match &self.nodes[m] {
                SpaceNode::Void => {}
                SpaceNode::Universe => return self.universe(),
                SpaceNode::Union(ms) => {
                    let mut inner = ms.clone();
                    inner.reverse();
                    stack.extend(inner);
                }
                _ => {
                    if !flat.contains(&m) {
                        flat.push(m);
                    }
                }
            }
        }
        match flat.len() {
            0 => self.void(),
            1 => flat[0],
            _ => {
                flat.sort_unstable();
                self.intern(SpaceNode::Union(flat))
            }
        }
    }

    /// Convert an expression into the version space denoting exactly it.
    pub fn incorporate(&mut self, e: &Expr) -> SpaceId {
        match e {
            Expr::Index(i) => self.index(*i),
            Expr::Primitive(_) | Expr::Invented(_) => self.terminal(e.clone()),
            Expr::Abstraction(b) => {
                let body = self.incorporate(b);
                self.abstraction(body)
            }
            Expr::Application(f, x) => {
                let fs = self.incorporate(f);
                let xs = self.incorporate(x);
                self.application(fs, xs)
            }
        }
    }

    /// Membership test: `e ∈ ⟦v⟧`.
    pub fn contains(&self, v: SpaceId, e: &Expr) -> bool {
        match (&self.nodes[v], e) {
            (SpaceNode::Void, _) => false,
            (SpaceNode::Universe, _) => true,
            (SpaceNode::Union(ms), _) => ms.iter().any(|&m| self.contains(m, e)),
            (SpaceNode::Index(i), Expr::Index(j)) => i == j,
            (SpaceNode::Terminal(t), _) => t == e,
            (SpaceNode::Abstraction(b), Expr::Abstraction(eb)) => self.contains(*b, eb),
            (SpaceNode::Application(f, x), Expr::Application(ef, ex)) => {
                self.contains(*f, ef) && self.contains(*x, ex)
            }
            _ => false,
        }
    }

    /// Intersection of two spaces (used by the application case of `S_k`).
    pub fn intersect(&mut self, a: SpaceId, b: SpaceId) -> SpaceId {
        if a == b {
            return a;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.intersection_memo.get(&key) {
            return r;
        }
        let result = match (self.nodes[a].clone(), self.nodes[b].clone()) {
            (SpaceNode::Void, _) | (_, SpaceNode::Void) => self.void(),
            (SpaceNode::Universe, _) => b,
            (_, SpaceNode::Universe) => a,
            (SpaceNode::Union(ms), _) => {
                let parts: Vec<SpaceId> = ms.iter().map(|&m| self.intersect(m, b)).collect();
                self.union(parts)
            }
            (_, SpaceNode::Union(ms)) => {
                let parts: Vec<SpaceId> = ms.iter().map(|&m| self.intersect(a, m)).collect();
                self.union(parts)
            }
            (SpaceNode::Index(i), SpaceNode::Index(j)) => {
                if i == j {
                    a
                } else {
                    self.void()
                }
            }
            (SpaceNode::Terminal(t1), SpaceNode::Terminal(t2)) => {
                if t1 == t2 {
                    a
                } else {
                    self.void()
                }
            }
            (SpaceNode::Abstraction(x), SpaceNode::Abstraction(y)) => {
                let body = self.intersect(x, y);
                self.abstraction(body)
            }
            (SpaceNode::Application(f1, x1), SpaceNode::Application(f2, x2)) => {
                let f = self.intersect(f1, f2);
                let x = self.intersect(x1, x2);
                self.application(f, x)
            }
            _ => self.void(),
        };
        self.intersection_memo.insert(key, result);
        result
    }

    /// The downshift utility `↓ᵏ_c` of Fig 5E: free indices `≥ c + k`
    /// drop by `k`; indices in `[c, c+k)` make the branch `∅`.
    pub fn downshift(&mut self, v: SpaceId, k: usize, c: usize) -> SpaceId {
        if k == 0 {
            return v;
        }
        let key = (v, k, c);
        if let Some(&r) = self.downshift_memo.get(&key) {
            return r;
        }
        let result = match self.nodes[v].clone() {
            SpaceNode::Index(i) => {
                if i < c {
                    v
                } else if i >= c + k {
                    self.index(i - k)
                } else {
                    self.void()
                }
            }
            SpaceNode::Terminal(_) | SpaceNode::Void | SpaceNode::Universe => v,
            SpaceNode::Abstraction(b) => {
                let body = self.downshift(b, k, c + 1);
                self.abstraction(body)
            }
            SpaceNode::Application(f, x) => {
                let fs = self.downshift(f, k, c);
                let xs = self.downshift(x, k, c);
                self.application(fs, xs)
            }
            SpaceNode::Union(ms) => {
                let parts: Vec<SpaceId> = ms.iter().map(|&m| self.downshift(m, k, c)).collect();
                self.union(parts)
            }
        };
        self.downshift_memo.insert(key, result);
        result
    }

    /// Count the extension `|⟦v⟧|`, saturating at `cap` (the universe and
    /// anything above `cap` report `cap`). Used to report how many
    /// refactorings a space represents (Fig 2: "10^14 refactorings").
    pub fn extension_count(&self, v: SpaceId, cap: f64) -> f64 {
        let mut memo = HashMap::new();
        self.count_rec(v, cap, &mut memo)
    }

    fn count_rec(&self, v: SpaceId, cap: f64, memo: &mut HashMap<SpaceId, f64>) -> f64 {
        if let Some(&c) = memo.get(&v) {
            return c;
        }
        let c = match &self.nodes[v] {
            SpaceNode::Void => 0.0,
            SpaceNode::Universe => cap,
            SpaceNode::Index(_) | SpaceNode::Terminal(_) => 1.0,
            SpaceNode::Abstraction(b) => self.count_rec(*b, cap, memo),
            SpaceNode::Application(f, x) => {
                (self.count_rec(*f, cap, memo) * self.count_rec(*x, cap, memo)).min(cap)
            }
            SpaceNode::Union(ms) => ms
                .iter()
                .map(|&m| self.count_rec(m, cap, memo))
                .sum::<f64>()
                .min(cap),
        };
        memo.insert(v, c);
        c
    }

    /// Sample up to `limit` members of the extension (DFS order). Members
    /// of `Λ` are not enumerable and contribute nothing.
    pub fn extension_sample(&self, v: SpaceId, limit: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        self.sample_rec(v, limit, &mut out);
        out
    }

    fn sample_rec(&self, v: SpaceId, limit: usize, out: &mut Vec<Expr>) {
        if out.len() >= limit {
            return;
        }
        match &self.nodes[v] {
            SpaceNode::Void | SpaceNode::Universe => {}
            SpaceNode::Index(i) => out.push(Expr::Index(*i)),
            SpaceNode::Terminal(e) => out.push(e.clone()),
            SpaceNode::Abstraction(b) => {
                let mut bodies = Vec::new();
                self.sample_rec(*b, limit - out.len(), &mut bodies);
                out.extend(bodies.into_iter().map(Expr::abstraction));
            }
            SpaceNode::Application(f, x) => {
                let mut fs = Vec::new();
                self.sample_rec(*f, limit, &mut fs);
                let mut xs = Vec::new();
                self.sample_rec(*x, limit, &mut xs);
                'outer: for fe in &fs {
                    for xe in &xs {
                        if out.len() >= limit {
                            break 'outer;
                        }
                        out.push(Expr::application(fe.clone(), xe.clone()));
                    }
                }
            }
            SpaceNode::Union(ms) => {
                for &m in ms {
                    if out.len() >= limit {
                        break;
                    }
                    self.sample_rec(m, limit, out);
                }
            }
        }
    }

    /// All space ids reachable from `v` (through every edge kind).
    pub fn reachable(&self, v: SpaceId) -> Vec<SpaceId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![v];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id] {
                continue;
            }
            seen[id] = true;
            out.push(id);
            match &self.nodes[id] {
                SpaceNode::Abstraction(b) => stack.push(*b),
                SpaceNode::Application(f, x) => {
                    stack.push(*f);
                    stack.push(*x);
                }
                SpaceNode::Union(ms) => stack.extend(ms.iter().copied()),
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;

    fn parse(s: &str) -> Expr {
        Expr::parse(s, &base_primitives()).unwrap()
    }

    #[test]
    fn hash_consing_dedups() {
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let v1 = a.incorporate(&e);
        let v2 = a.incorporate(&e);
        assert_eq!(v1, v2);
    }

    #[test]
    fn incorporate_then_contains() {
        let mut a = SpaceArena::new();
        let e = parse("(lambda (+ $0 1))");
        let v = a.incorporate(&e);
        assert!(a.contains(v, &e));
        assert!(!a.contains(v, &parse("(lambda (+ $0 0))")));
        assert_eq!(a.extension_count(v, 1e18), 1.0);
        assert_eq!(a.extension_sample(v, 10), vec![e]);
    }

    #[test]
    fn union_flattens_and_dedups() {
        let mut a = SpaceArena::new();
        let x = a.incorporate(&parse("0"));
        let y = a.incorporate(&parse("1"));
        let u1 = a.union([x, y]);
        let u2 = a.union([u1, x]);
        assert_eq!(u1, u2);
        let void = a.void();
        assert_eq!(a.union([void]), void);
        assert_eq!(a.union([x, void]), x);
        let univ = a.universe();
        assert_eq!(a.union([x, univ]), univ);
    }

    #[test]
    fn union_extension_is_set_union() {
        let mut a = SpaceArena::new();
        let x = a.incorporate(&parse("0"));
        let y = a.incorporate(&parse("1"));
        let u = a.union([x, y]);
        assert!(a.contains(u, &parse("0")));
        assert!(a.contains(u, &parse("1")));
        assert!(!a.contains(u, &parse("(+ 0 1)")));
        assert_eq!(a.extension_count(u, 1e18), 2.0);
    }

    #[test]
    fn application_of_unions_multiplies_extensions() {
        // (λ⊎{$0,7})(⊎{4,9}) encodes four expressions (paper example).
        let mut a = SpaceArena::new();
        let i0 = a.index(0);
        let seven = a.incorporate(&parse("1")); // stand-ins for 7/4/9
        let four = a.incorporate(&parse("0"));
        let nine = a.incorporate(&parse("(+ 1 1)"));
        let body = a.union([i0, seven]);
        let lam = a.abstraction(body);
        let arg = a.union([four, nine]);
        let app = a.application(lam, arg);
        assert_eq!(a.extension_count(app, 1e18), 4.0);
        assert_eq!(a.extension_sample(app, 100).len(), 4);
    }

    #[test]
    fn void_propagates_through_constructors() {
        let mut a = SpaceArena::new();
        let v = a.void();
        assert_eq!(a.abstraction(v), v);
        let x = a.incorporate(&parse("0"));
        assert_eq!(a.application(v, x), v);
        assert_eq!(a.application(x, v), v);
    }

    #[test]
    fn intersection_laws() {
        let mut a = SpaceArena::new();
        let x = a.incorporate(&parse("(+ 0 1)"));
        let y = a.incorporate(&parse("(+ 1 1)"));
        let u = a.union([x, y]);
        assert_eq!(a.intersect(u, x), x);
        assert_eq!(a.intersect(x, y), a.void());
        let univ = a.universe();
        assert_eq!(a.intersect(univ, u), u);
        assert_eq!(a.intersect(u, u), u);
    }

    #[test]
    fn downshift_shifts_and_voids() {
        let mut a = SpaceArena::new();
        let i2 = a.index(2);
        assert_eq!(a.downshift(i2, 1, 0), a.index(1));
        let i0 = a.index(0);
        let dropped = a.downshift(i0, 1, 0);
        assert_eq!(dropped, a.void());
        // Under a binder the bound variable survives.
        let lam = a.abstraction(i0);
        assert_eq!(a.downshift(lam, 1, 0), lam);
    }

    #[test]
    fn reachable_walks_everything() {
        let mut a = SpaceArena::new();
        let e = parse("(lambda (+ $0 1))");
        let v = a.incorporate(&e);
        let r = a.reachable(v);
        // lambda, app(+ $0 1) spine: app, app, +, $0, 1 — six nodes.
        assert_eq!(r.len(), 6);
    }
}
