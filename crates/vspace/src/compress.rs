//! Abstraction sleep (§3): grow the library by proposing new routines from
//! refactorings of the programs found during waking, scored by the
//! compression objective of Eq. 4 (corpus description length under a
//! re-fit grammar, plus a structure penalty `λ·Σ size` and an AIC penalty
//! on the number of continuous parameters `|θ|₀`). The loop is the paper's
//! "repeat until no increase in score".

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dc_grammar::etalong::eta_long;
use dc_grammar::frontier::Frontier;
use dc_grammar::grammar::Grammar;
use dc_grammar::inside_outside::fit_grammar;
use dc_grammar::library::Library;
use dc_lambda::expr::{Expr, Invented};
use rayon::prelude::*;

use crate::extract::{ExtractionMemo, Matcher};
use crate::space::{SpaceArena, SpaceId, SpaceNode};

/// Hyperparameters of abstraction sleep.
#[derive(Debug, Clone)]
pub struct CompressionConfig {
    /// `n`, the number of inverse-β steps (the paper uses 3).
    pub refactor_steps: usize,
    /// How many candidate routines to score exactly per iteration.
    pub top_candidates: usize,
    /// `λ` in `P[D] ∝ exp(-λ Σ size(ρ))`.
    pub structure_penalty: f64,
    /// Dirichlet pseudo-count used when re-fitting `θ`.
    pub pseudocounts: f64,
    /// Cap on inventions accepted in one sleep.
    pub max_inventions: usize,
    /// AIC weight per continuous degree of freedom.
    pub aic_weight: f64,
    /// Minimum syntax-tree size of a proposed routine.
    pub min_candidate_size: usize,
}

impl Default for CompressionConfig {
    fn default() -> CompressionConfig {
        CompressionConfig {
            refactor_steps: 3,
            top_candidates: 100,
            structure_penalty: 1.5,
            pseudocounts: 1.0,
            max_inventions: 10,
            aic_weight: 1.0,
            min_candidate_size: 3,
        }
    }
}

/// One accepted invention with the scores before/after.
#[derive(Debug, Clone)]
pub struct CompressionStep {
    /// The routine added to the library.
    pub invention: Arc<Invented>,
    /// Objective before adding it.
    pub score_before: f64,
    /// Objective after adding it.
    pub score_after: f64,
}

/// The output of abstraction sleep.
#[derive(Debug, Clone)]
pub struct CompressionResult {
    /// The grown library.
    pub library: Arc<Library>,
    /// Weights re-fit to the rewritten corpus.
    pub grammar: Grammar,
    /// Frontiers rewritten in terms of the new library.
    pub frontiers: Vec<Frontier>,
    /// The inventions accepted, in order.
    pub steps: Vec<CompressionStep>,
}

/// The compression objective: `Σ_x log Σ_{ρ∈B_x} P[x|ρ]P[ρ|D,θ*]`
/// with `θ*` the MAP re-fit, minus the structure and AIC penalties.
/// Returns the fitted grammar and the score, with frontier priors
/// re-scored in place.
pub fn joint_score(
    library: &Arc<Library>,
    frontiers: &mut [Frontier],
    config: &CompressionConfig,
) -> (Grammar, f64) {
    let grammar = fit_grammar(library, frontiers, config.pseudocounts);
    let mut total = 0.0;
    for f in frontiers.iter_mut() {
        let request = f.request.clone();
        f.rescore(|e| grammar.log_prior(&request, e));
        if !f.is_empty() {
            total += f.log_evidence();
        }
    }
    let structure: usize = library
        .inventions()
        .map(|it| match &it.expr {
            Expr::Invented(inv) => inv.body.size(),
            _ => 0,
        })
        .sum();
    total -= config.structure_penalty * structure as f64;
    total -= config.aic_weight * library.len() as f64;
    (grammar, total)
}

/// A proposed candidate routine.
#[derive(Debug, Clone)]
struct CandidateProposal {
    body: Expr,
    occurrences: usize,
}

/// One frontier's refactoring spaces. Each frontier owns its arena so
/// space construction and candidate scoring parallelize without sharing
/// mutable hash-cons state ([`SpaceId`]s are only meaningful within their
/// own arena, as are the pointer-keyed extraction memos).
struct FrontierSpaces {
    arena: SpaceArena,
    spaces: Vec<SpaceId>,
}

/// Build one frontier's refactoring spaces and collect its candidate
/// routine bodies (keyed by printed form, deduplicated within the
/// frontier).
fn build_frontier_spaces(
    f: &Frontier,
    existing: &HashSet<String>,
    config: &CompressionConfig,
) -> (FrontierSpaces, HashMap<String, Expr>) {
    let mut arena = SpaceArena::new();
    let mut spaces = Vec::with_capacity(f.entries.len());
    let mut bodies: HashMap<String, Expr> = HashMap::new();
    for entry in &f.entries {
        let space = arena.refactor(&entry.expr, config.refactor_steps);
        for id in arena.reachable(space) {
            if !matches!(arena.node(id), SpaceNode::Abstraction(_)) {
                continue;
            }
            for sampled in arena.extension_sample(id, 4) {
                // Propose the β-normal form: candidates with residual
                // redexes are equivalent but print (and weigh) worse.
                let Some(body) = sampled.beta_normal_form(1_000) else {
                    continue;
                };
                if body.size() < config.min_candidate_size
                    || !matches!(body, Expr::Abstraction(_))
                    || !body.is_closed()
                    || existing.contains(&body.to_string())
                {
                    continue;
                }
                // Pure variable-shuffling combinators (no primitive or
                // invented leaf) occur in every program's refactorings
                // but never compress anything: drop them early.
                if !body
                    .subexpressions()
                    .iter()
                    .any(|e| matches!(e, Expr::Primitive(_) | Expr::Invented(_)))
                {
                    continue;
                }
                bodies.entry(body.to_string()).or_insert(body);
            }
        }
        spaces.push(space);
    }
    (FrontierSpaces { arena, spaces }, bodies)
}

/// Build refactoring spaces for every frontier program and propose the
/// most promising candidate routines: closed, well-typed λ-abstractions
/// sampled from the refactoring spaces of at least two distinct tasks,
/// ranked by `occurrences × (size − 1)`.
///
/// Frontiers build in parallel; the merge runs sequentially in frontier
/// order and the final ranking sorts on a total key (score, then printed
/// body), so the proposal list is deterministic.
fn propose_candidates(
    frontiers: &[Frontier],
    library: &Library,
    config: &CompressionConfig,
) -> (Vec<FrontierSpaces>, Vec<CandidateProposal>) {
    let existing: HashSet<String> = library
        .items
        .iter()
        .map(|it| match &it.expr {
            Expr::Invented(inv) => inv.body.to_string(),
            other => other.to_string(),
        })
        .collect();
    let built: Vec<(FrontierSpaces, HashMap<String, Expr>)> = frontiers
        .par_iter()
        .map(|f| build_frontier_spaces(f, &existing, config))
        .collect();
    let mut program_spaces: Vec<FrontierSpaces> = Vec::with_capacity(frontiers.len());
    // candidate body (printed) -> (body, tasks that can use it)
    let mut occurrences: HashMap<String, (Expr, HashSet<usize>)> = HashMap::new();
    for (ti, (fs, bodies)) in built.into_iter().enumerate() {
        for (key, body) in bodies {
            occurrences
                .entry(key)
                .or_insert_with(|| (body, HashSet::new()))
                .1
                .insert(ti);
        }
        program_spaces.push(fs);
    }
    let mut proposals: Vec<CandidateProposal> = occurrences
        .into_values()
        .filter(|(body, tasks)| tasks.len() >= 2 && body.infer().is_ok())
        .map(|(body, tasks)| CandidateProposal {
            body,
            occurrences: tasks.len(),
        })
        .collect();
    proposals.sort_by_key(|p| {
        (
            std::cmp::Reverse(p.occurrences * (p.body.size() - 1)),
            p.body.to_string(),
        )
    });
    proposals.truncate(config.top_candidates);
    (program_spaces, proposals)
}

/// Rewrite every frontier in terms of `invention`, extracting the cheapest
/// refactoring of each program and η-long-normalizing it so the grammar
/// can score it. Programs that fail to rewrite keep their original form.
/// The matcher and extraction memo are per-frontier because their caches
/// key on [`SpaceId`]s (and expression pointers) of one arena.
fn rewrite_frontiers(
    frontiers: &[Frontier],
    program_spaces: &[FrontierSpaces],
    invention: &Arc<Invented>,
) -> Vec<Frontier> {
    frontiers
        .iter()
        .zip(program_spaces)
        .map(|(f, fs)| {
            let mut matcher = Matcher::new(Arc::clone(invention));
            let mut memo = ExtractionMemo::new();
            let mut nf = Frontier::new(f.request.clone());
            for (entry, &space) in f.entries.iter().zip(&fs.spaces) {
                let rewritten = fs
                    .arena
                    .minimal_inhabitant(space, Some(&mut matcher), &mut memo)
                    .and_then(|ex| eta_long(&ex.expr, &f.request))
                    .unwrap_or_else(|| entry.expr.clone());
                nf.entries.push(dc_grammar::frontier::FrontierEntry {
                    expr: rewritten,
                    log_likelihood: entry.log_likelihood,
                    log_prior: entry.log_prior,
                });
            }
            nf
        })
        .collect()
}

/// Run abstraction sleep: grow `library` with routines that compress
/// `frontiers`, greedily accepting the best-scoring candidate until the
/// objective stops improving.
pub fn compress(
    library: &Arc<Library>,
    frontiers: &[Frontier],
    config: &CompressionConfig,
) -> CompressionResult {
    let mut library = Arc::clone(library);
    let mut frontiers: Vec<Frontier> = frontiers.to_vec();
    let mut steps = Vec::new();
    let (mut grammar, mut best_score) = joint_score(&library, &mut frontiers, config);

    for _ in 0..config.max_inventions {
        let (program_spaces, proposals) = propose_candidates(&frontiers, &library, config);
        let vspace_nodes: usize = program_spaces.iter().map(|fs| fs.arena.len()).sum();
        dc_telemetry::add("compression.candidates_proposed", proposals.len() as u64);
        dc_telemetry::set_gauge("compression.vspace_nodes", vspace_nodes as f64);
        if proposals.is_empty() {
            break;
        }
        if dc_telemetry::event_enabled(dc_telemetry::Level::Debug) {
            dc_telemetry::event(
                dc_telemetry::Level::Debug,
                "compress.proposals",
                &[
                    ("count", proposals.len().into()),
                    ("vspace_nodes", vspace_nodes.into()),
                    (
                        "top",
                        format!(
                            "{:?}",
                            proposals
                                .iter()
                                .take(5)
                                .map(|p| (p.body.to_string(), p.occurrences))
                                .collect::<Vec<_>>()
                        )
                        .into(),
                    ),
                ],
            );
        }
        // Score every proposal independently (telemetry counters are
        // atomic, so they are parallel-safe), then reduce with a stable
        // first-max: ties keep the lowest proposal index, replicating the
        // sequential `score > best` loop regardless of thread arrival.
        let score_proposal = |proposal: &CandidateProposal| {
            let name = format!("#{}", proposal.body);
            let invention = Invented::new(&name, proposal.body.clone()).ok()?;
            let candidate_timer = dc_telemetry::time("compression.candidate_time");
            let mut lib2 = (*library).clone();
            lib2.push_invented(Arc::clone(&invention));
            let lib2 = Arc::new(lib2);
            let rewrite_timer = dc_telemetry::time("compression.rewrite_time");
            let mut rewritten = rewrite_frontiers(&frontiers, &program_spaces, &invention);
            drop(rewrite_timer);
            let score_timer = dc_telemetry::time("compression.score_time");
            let (g2, score) = joint_score(&lib2, &mut rewritten, config);
            drop(score_timer);
            dc_telemetry::incr("compression.candidates_scored");
            if score == f64::NEG_INFINITY && dc_telemetry::event_enabled(dc_telemetry::Level::Warn)
            {
                for f in &rewritten {
                    for e in &f.entries {
                        if e.log_prior == f64::NEG_INFINITY {
                            dc_telemetry::event(
                                dc_telemetry::Level::Warn,
                                "compress.unscorable",
                                &[
                                    ("expr", e.expr.to_string().into()),
                                    ("request", f.request.to_string().into()),
                                ],
                            );
                        }
                    }
                }
            }
            if dc_telemetry::event_enabled(dc_telemetry::Level::Debug) {
                let rewrites = rewritten
                    .iter()
                    .flat_map(|f| f.entries.iter())
                    .filter(|e| {
                        e.expr
                            .subexpressions()
                            .iter()
                            .any(|s| matches!(s, Expr::Invented(_)))
                    })
                    .count();
                dc_telemetry::event(
                    dc_telemetry::Level::Debug,
                    "compress.candidate",
                    &[
                        ("name", invention.name.as_str().into()),
                        ("score", score.into()),
                        ("baseline", best_score.into()),
                        ("rewrites", rewrites.into()),
                    ],
                );
            }
            drop(candidate_timer);
            Some((score, invention, rewritten, g2))
        };
        type Scored = Option<(f64, Arc<Invented>, Vec<Frontier>, Grammar)>;
        let cmp_scored = |a: &Scored, b: &Scored| match (a, b) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            // NaN scores compare Equal, so the earlier index wins and the
            // reduction stays deterministic even then.
            (Some(x), Some(y)) => x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal),
        };
        let best = proposals
            .par_iter()
            .map(score_proposal)
            .max_by_stable(cmp_scored)
            .flatten();
        let Some((score, invention, rewritten, g2)) = best else {
            break;
        };
        if score <= best_score {
            break;
        }
        dc_telemetry::incr("compression.inventions_accepted");
        dc_telemetry::event(
            dc_telemetry::Level::Info,
            "compress.accept",
            &[
                ("name", invention.name.as_str().into()),
                ("score_before", best_score.into()),
                ("score_after", score.into()),
            ],
        );
        let mut lib2 = (*library).clone();
        lib2.push_invented(Arc::clone(&invention));
        library = Arc::new(lib2);
        steps.push(CompressionStep {
            invention,
            score_before: best_score,
            score_after: score,
        });
        best_score = score;
        frontiers = rewritten;
        grammar = g2;
    }

    CompressionResult {
        library,
        grammar,
        frontiers,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_grammar::frontier::FrontierEntry;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist, Type};

    fn frontier_of(src: &str, request: Type, g: &Grammar) -> Frontier {
        let prims = base_primitives();
        let e = Expr::parse(src, &prims).unwrap();
        let mut f = Frontier::new(request.clone());
        f.insert(
            FrontierEntry {
                log_prior: g.log_prior(&request, &e),
                log_likelihood: 0.0,
                expr: e,
            },
            5,
        );
        f
    }

    fn quick_config() -> CompressionConfig {
        CompressionConfig {
            refactor_steps: 2,
            top_candidates: 30,
            max_inventions: 3,
            // The unit-test corpora are tiny (3-5 programs); soften the
            // structure prior accordingly. Domain runs use the default.
            structure_penalty: 0.3,
            ..CompressionConfig::default()
        }
    }

    #[test]
    fn compression_discovers_shared_double() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(Arc::clone(&lib));
        let t = tint();
        // Several tasks all solved by doubling something.
        let frontiers = vec![
            frontier_of("(+ 1 1)", t.clone(), &g),
            frontier_of("(+ 0 0)", t.clone(), &g),
            frontier_of("(+ (+ 1 1) (+ 1 1))", t.clone(), &g),
        ];
        let result = compress(&lib, &frontiers, &quick_config());
        assert!(
            !result.steps.is_empty(),
            "expected compression to find the doubling abstraction"
        );
        let names: Vec<String> = result
            .steps
            .iter()
            .map(|s| s.invention.body.to_string())
            .collect();
        assert!(
            names.iter().any(|n| n == "(lambda (+ $0 $0))"),
            "expected double, got {names:?}"
        );
        // Scores must strictly improve at each step.
        for s in &result.steps {
            assert!(s.score_after > s.score_before);
        }
    }

    #[test]
    fn rewritten_programs_are_semantically_equal() {
        use dc_lambda::eval::run_program;
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(Arc::clone(&lib));
        let t = tint();
        let sources = ["(+ 1 1)", "(+ 0 0)", "(* (+ 1 1) (+ 1 1))"];
        let frontiers: Vec<Frontier> = sources
            .iter()
            .map(|s| frontier_of(s, t.clone(), &g))
            .collect();
        let result = compress(&lib, &frontiers, &quick_config());
        for (f, src) in result.frontiers.iter().zip(&sources) {
            let original = Expr::parse(src, &prims).unwrap();
            let want = run_program(&original, &[], 10_000).unwrap();
            for entry in &f.entries {
                let got = run_program(&entry.expr, &[], 10_000).unwrap();
                assert_eq!(got, want, "{} != {}", entry.expr, original);
            }
        }
    }

    #[test]
    fn no_compression_from_unrelated_programs() {
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(Arc::clone(&lib));
        let frontiers = vec![
            frontier_of("0", tint(), &g),
            frontier_of("nil", tlist(tint()), &g),
        ];
        let result = compress(&lib, &frontiers, &quick_config());
        assert!(result.steps.is_empty());
        assert_eq!(result.library.len(), lib.len());
    }

    #[test]
    fn map_is_extracted_from_two_recursive_programs() {
        // The Fig-2 experiment: two different recursive list programs
        // written with fix, whose refactorings share the map skeleton.
        let prims = base_primitives();
        let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
        let g = Grammar::uniform(Arc::clone(&lib));
        let t = Type::arrow(tlist(tint()), tlist(tint()));
        let double_all =
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))";
        let decrement_all =
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (- (car $0) 1) ($1 (cdr $0)))))) $0))";
        let frontiers = vec![
            frontier_of(double_all, t.clone(), &g),
            frontier_of(decrement_all, t.clone(), &g),
        ];
        // Two inversion steps suffice for the map skeleton: one to create
        // the inner redex ((λ (+ $0 $0)) (car $0)), one to abstract the
        // function out of the fix. (The paper's default n=3 also works but
        // is slow in debug builds; see the release-mode benches.)
        let cfg = CompressionConfig {
            refactor_steps: 2,
            top_candidates: 300,
            max_inventions: 2,
            ..CompressionConfig::default()
        };
        let result = compress(&lib, &frontiers, &cfg);
        assert!(
            !result.steps.is_empty(),
            "expected a shared recursion skeleton to be invented"
        );
        // The invention must be a higher-order routine (contains fix and a
        // function parameter) — the map skeleton.
        let body = result.steps[0].invention.body.to_string();
        assert!(body.contains("fix"), "invention {body} should wrap fix");
        // Rewritten programs must shrink.
        for (f, orig) in result.frontiers.iter().zip([double_all, decrement_all]) {
            let original = Expr::parse(orig, &prims).unwrap();
            assert!(
                f.entries[0].expr.size() < original.size(),
                "{} is not smaller than {}",
                f.entries[0].expr,
                original
            );
        }
    }
}
