//! Inverse β-reduction over version spaces (Fig 5B–D of the paper).
//!
//! * [`SpaceArena::substitutions`] is the `S_k` operator: every way to
//!   write (a superset of) `⟦v⟧` as a top-level redex `(λ body) value`;
//! * [`SpaceArena::invert_once`] is `Iβ′`: one inverse β-reduction step,
//!   applied at the top level and recursively inside the term;
//! * [`SpaceArena::n_step_inversion`] is `Iβn`: up to `n` chained steps;
//! * [`SpaceArena::refactor`] is the full `Iβ` of §3.1, which also
//!   refactors subexpressions independently and compiles the equivalences
//!   together (the E-graph-inspired construction of Fig 4).

use dc_lambda::expr::Expr;

use crate::space::{SpaceArena, SpaceId, SpaceNode};

impl SpaceArena {
    /// The substitution operator `S_k` (Fig 5D), returned as a list of
    /// `(body, value)` pairs meaning the redex `(λ body) value`. Pairs are
    /// grouped by value: bodies sharing a value are unioned.
    pub fn substitutions(&mut self, v: SpaceId, k: usize) -> Vec<(SpaceId, SpaceId)> {
        if let Some(cached) = self.substitution_memo.get(&(v, k)) {
            return cached.clone();
        }
        let mut acc: Vec<(SpaceId, Vec<SpaceId>)> = Vec::new();
        let push = |arena: &mut SpaceArena,
                    acc: &mut Vec<(SpaceId, Vec<SpaceId>)>,
                    value: SpaceId,
                    body: SpaceId| {
            if arena.node(value) == &SpaceNode::Void || arena.node(body) == &SpaceNode::Void {
                return;
            }
            if let Some(slot) = acc.iter_mut().find(|(val, _)| *val == value) {
                slot.1.push(body);
            } else {
                acc.push((value, vec![body]));
            }
        };

        // Rule 1: abstract the whole subterm — body `$k`, value `↓ᵏ₀ v`.
        let shifted = self.downshift(v, k, 0);
        let body_var = self.index(k);
        push(self, &mut acc, shifted, body_var);

        // Rules of S′_k, by node kind.
        match self.node(v).clone() {
            SpaceNode::Void => {}
            SpaceNode::Universe => {
                let u = self.universe();
                push(self, &mut acc, u, u);
            }
            SpaceNode::Terminal(_) => {
                let u = self.universe();
                push(self, &mut acc, u, v);
            }
            SpaceNode::Index(i) => {
                let u = self.universe();
                let body = if i < k {
                    self.index(i)
                } else {
                    self.index(i + 1)
                };
                push(self, &mut acc, u, body);
            }
            SpaceNode::Abstraction(b) => {
                for (value, body) in self.substitutions(b, k + 1) {
                    let lam_body = self.abstraction(body);
                    push(self, &mut acc, value, lam_body);
                }
            }
            SpaceNode::Application(f, x) => {
                let fsubs = self.substitutions(f, k);
                let xsubs = self.substitutions(x, k);
                for (vf, bf) in &fsubs {
                    for (vx, bx) in &xsubs {
                        let value = self.intersect(*vf, *vx);
                        if self.node(value) == &SpaceNode::Void {
                            continue;
                        }
                        let body = self.application(*bf, *bx);
                        push(self, &mut acc, value, body);
                    }
                }
            }
            SpaceNode::Union(ms) => {
                for m in ms {
                    for (value, body) in self.substitutions(m, k) {
                        push(self, &mut acc, value, body);
                    }
                }
            }
        }

        let mut result: Vec<(SpaceId, SpaceId)> = Vec::with_capacity(acc.len());
        for (value, bodies) in acc {
            let body = self.union(bodies);
            if self.node(value) != &SpaceNode::Void && self.node(body) != &SpaceNode::Void {
                result.push((value, body));
            }
        }
        self.substitution_memo.insert((v, k), result.clone());
        result
    }

    /// One step of inverse β-reduction, `Iβ′` (Fig 5C): top-level redexes
    /// from `S_0` plus recursive inversion inside abstractions,
    /// applications, and unions.
    pub fn invert_once(&mut self, v: SpaceId) -> SpaceId {
        if let Some(&cached) = self.inversion_memo.get(&v) {
            return cached;
        }
        let mut parts: Vec<SpaceId> = Vec::new();
        for (value, body) in self.substitutions(v, 0) {
            // Skip the trivial identity redex (λ $0) v — it β-reduces to v
            // but teaches the library nothing.
            if self.node(body) == &SpaceNode::Index(0) {
                continue;
            }
            let lam = self.abstraction(body);
            let app = self.application(lam, value);
            parts.push(app);
        }
        match self.node(v).clone() {
            SpaceNode::Abstraction(b) => {
                let inner = self.invert_once(b);
                parts.push(self.abstraction(inner));
            }
            SpaceNode::Application(f, x) => {
                let fi = self.invert_once(f);
                parts.push(self.application(fi, x));
                let xi = self.invert_once(x);
                parts.push(self.application(f, xi));
            }
            SpaceNode::Union(ms) => {
                for m in ms {
                    parts.push(self.invert_once(m));
                }
            }
            _ => {}
        }
        let result = self.union(parts);
        self.inversion_memo.insert(v, result);
        result
    }

    /// `Iβn` (Fig 5B): the union of `0..=n` chained inversion steps.
    pub fn n_step_inversion(&mut self, v: SpaceId, n: usize) -> SpaceId {
        let mut layers = vec![v];
        let mut cur = v;
        for _ in 0..n {
            cur = self.invert_once(cur);
            layers.push(cur);
        }
        self.union(layers)
    }

    /// The full refactoring space `Iβ(ρ)` of §3.1: `Iβn` at the root,
    /// unioned with independently refactored subexpressions, compiling all
    /// exposed equivalences into one structure (the E-graph effect of
    /// Fig 4: `(* (+ 1 1) (+ 5 5))` can become `(* (double 1) (double 5))`
    /// even though that needs two separate inversions).
    pub fn refactor(&mut self, expr: &Expr, n: usize) -> SpaceId {
        let children = match expr {
            Expr::Application(f, x) => {
                let fs = self.refactor(f, n);
                let xs = self.refactor(x, n);
                self.application(fs, xs)
            }
            Expr::Abstraction(b) => {
                let bs = self.refactor(b, n);
                self.abstraction(bs)
            }
            _ => self.void(),
        };
        let base = self.incorporate(expr);
        let inverted = self.n_step_inversion(base, n);
        self.union([inverted, children])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;

    fn parse(s: &str) -> Expr {
        Expr::parse(s, &base_primitives()).unwrap()
    }

    /// Every member of the inversion's extension must β-reduce back to the
    /// original expression (consistency, Theorem G.5).
    fn assert_consistent(space_members: &[Expr], original: &Expr) {
        for m in space_members {
            let nf = m
                .beta_normal_form(1_000)
                .unwrap_or_else(|| panic!("no normal form for {m}"));
            assert_eq!(
                &nf, original,
                "refactoring {m} does not reduce to {original}"
            );
        }
    }

    #[test]
    fn invert_once_abstracts_repeated_constant() {
        // (+ 5 5) refactors to ((λ (+ $0 $0)) 5) among others (Fig 4).
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let v = a.incorporate(&e);
        let inv = a.invert_once(v);
        let expected = parse("((lambda (+ $0 $0)) 1)");
        assert!(
            a.contains(inv, &expected),
            "inversion is missing the double refactoring"
        );
        // And it is consistent.
        let members = a.extension_sample(inv, 500);
        assert!(!members.is_empty());
        assert_consistent(&members, &e);
    }

    #[test]
    fn invert_once_builds_constant_functions() {
        let mut a = SpaceArena::new();
        let e = parse("0");
        let v = a.incorporate(&e);
        let inv = a.invert_once(v);
        // (λ 0) Λ: any argument works; sampling skips Λ members, so check
        // the shape is present by membership of nothing concrete — instead
        // confirm extension contains programs reducing to 0 only.
        let members = a.extension_sample(inv, 100);
        assert_consistent(&members, &e);
    }

    #[test]
    fn two_step_inversion_reaches_deeper_refactorings() {
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let v = a.incorporate(&e);
        let two = a.n_step_inversion(v, 2);
        // Two steps: ((λ ((λ (+ $0 $0)) $0)) 1) and friends.
        let members = a.extension_sample(two, 2000);
        assert_consistent(&members, &e);
        assert!(a.contains(two, &e), "0-step (identity) member missing");
    }

    #[test]
    fn refactor_exposes_shared_structure_across_siblings() {
        // The paper's Fig-4 motivating case: (* (+ 1 1) (+ 5 5)) with one
        // step of inversion per subtree exposes (* (double 1) (double 5)).
        // We use 0/1 constants: (* (+ 0 0) (+ 1 1)).
        let mut a = SpaceArena::new();
        let e = parse("(* (+ 0 0) (+ 1 1))");
        let space = a.refactor(&e, 1);
        let both_rewritten = parse("(* ((lambda (+ $0 $0)) 0) ((lambda (+ $0 $0)) 1))");
        assert!(
            a.contains(space, &both_rewritten),
            "compiled equivalences should allow rewriting both children"
        );
        // Consistency of a sample: every member β-reduces to e.
        let members = a.extension_sample(space, 500);
        for m in &members {
            let nf = m.beta_normal_form(10_000).expect("normal form");
            assert_eq!(nf, e, "refactoring {m} broke semantics");
        }
    }

    #[test]
    fn refactor_extension_includes_original() {
        let mut a = SpaceArena::new();
        let e = parse("(lambda (cons $0 nil))");
        let space = a.refactor(&e, 2);
        assert!(a.contains(space, &e));
    }

    #[test]
    fn substitutions_group_by_value() {
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let v = a.incorporate(&e);
        let subs = a.substitutions(v, 0);
        // Values must be distinct.
        let mut values: Vec<SpaceId> = subs.iter().map(|(v, _)| *v).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), subs.len());
        // There must be a substitution whose value is `1` (abstracting the
        // repeated literal).
        let one = a.incorporate(&parse("1"));
        assert!(subs.iter().any(|(v, _)| *v == one));
    }

    #[test]
    fn inversion_memoization_is_stable() {
        let mut a = SpaceArena::new();
        let e = parse("(+ 1 1)");
        let v = a.incorporate(&e);
        let i1 = a.invert_once(v);
        let i2 = a.invert_once(v);
        assert_eq!(i1, i2);
    }

    #[test]
    fn node_counts_stay_polynomial_while_extensions_explode() {
        // A bigger expression: the version space must stay small while
        // representing a huge number of refactorings (§2.2: "a graph with
        // 10^6 nodes can represent the 10^14 refactorings").
        let mut a = SpaceArena::new();
        let e = parse("(+ (+ 1 (+ 1 1)) (+ (+ 1 1) (+ 1 (+ 1 1))))");
        let space = a.refactor(&e, 2);
        let nodes = a.len();
        let extension = a.extension_count(space, 1e18);
        assert!(
            extension > nodes as f64 * 10.0,
            "extension {extension} should dwarf node count {nodes}"
        );
    }
}
