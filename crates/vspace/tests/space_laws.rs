//! Algebraic laws of the version-space operations (Definition 3.1/3.2):
//! union and intersection behave as set union/intersection on extensions,
//! downshift agrees with expression-level shifting, and substitution
//! inversion respects the β-reduction semantics.

use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_vspace::SpaceArena;
use proptest::prelude::*;

fn int_expr() -> impl Strategy<Value = Expr> {
    let prims = base_primitives();
    let leaf = prop_oneof![
        Just(Expr::parse("0", &prims).unwrap()),
        Just(Expr::parse("1", &prims).unwrap()),
    ];
    let plus = Expr::parse("+", &prims).unwrap();
    let times = Expr::parse("*", &prims).unwrap();
    leaf.prop_recursive(3, 10, 2, move |inner| {
        (
            prop_oneof![Just(plus.clone()), Just(times.clone())],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::apply_all(op, [a, b]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ⟦a ⊎ b⟧ = ⟦a⟧ ∪ ⟦b⟧ on concrete expressions.
    #[test]
    fn union_extension_is_set_union(a in int_expr(), b in int_expr()) {
        let mut arena = SpaceArena::new();
        let va = arena.incorporate(&a);
        let vb = arena.incorporate(&b);
        let u = arena.union([va, vb]);
        prop_assert!(arena.contains(u, &a));
        prop_assert!(arena.contains(u, &b));
        let count = arena.extension_count(u, 1e9);
        let expected = if a == b { 1.0 } else { 2.0 };
        prop_assert_eq!(count, expected);
    }

    /// Intersection with self is identity; with a disjoint singleton it
    /// is empty.
    #[test]
    fn intersection_laws(a in int_expr(), b in int_expr()) {
        let mut arena = SpaceArena::new();
        let va = arena.incorporate(&a);
        let vb = arena.incorporate(&b);
        prop_assert_eq!(arena.intersect(va, va), va);
        let meet = arena.intersect(va, vb);
        if a == b {
            prop_assert_eq!(meet, va);
        } else {
            prop_assert_eq!(meet, arena.void());
        }
    }

    /// Union is commutative and associative at the id level (hash-consing
    /// canonicalizes member order).
    #[test]
    fn union_is_acommutative(a in int_expr(), b in int_expr(), c in int_expr()) {
        let mut arena = SpaceArena::new();
        let va = arena.incorporate(&a);
        let vb = arena.incorporate(&b);
        let vc = arena.incorporate(&c);
        let ab_c = {
            let ab = arena.union([va, vb]);
            arena.union([ab, vc])
        };
        let a_bc = {
            let bc = arena.union([vb, vc]);
            arena.union([va, bc])
        };
        prop_assert_eq!(ab_c, a_bc);
        let ba = arena.union([vb, va]);
        let ab = arena.union([va, vb]);
        prop_assert_eq!(ab, ba);
    }

    /// Distributivity through application: (f ⊎ g) x ⊇ {f x, g x}.
    #[test]
    fn application_distributes_over_union(f in int_expr(), g in int_expr(), x in int_expr()) {
        let mut arena = SpaceArena::new();
        let vf = arena.incorporate(&f);
        let vg = arena.incorporate(&g);
        let vx = arena.incorporate(&x);
        let u = arena.union([vf, vg]);
        let app = arena.application(u, vx);
        prop_assert!(arena.contains(app, &Expr::application(f.clone(), x.clone())));
        prop_assert!(arena.contains(app, &Expr::application(g.clone(), x.clone())));
    }

    /// The substitutions operator really inverts β: every (body, value)
    /// pair with a concrete body+value reduces back to the original.
    #[test]
    fn substitutions_invert_beta(e in int_expr()) {
        let mut arena = SpaceArena::new();
        let v = arena.incorporate(&e);
        for (value, body) in arena.substitutions(v, 0) {
            let bodies = arena.extension_sample(body, 8);
            let values = arena.extension_sample(value, 4);
            for be in &bodies {
                for ve in &values {
                    let redex = Expr::application(Expr::abstraction(be.clone()), ve.clone());
                    let nf = redex.beta_normal_form(10_000);
                    prop_assert_eq!(
                        nf.as_ref(),
                        Some(&e),
                        "({}) applied to ({}) did not reduce to {}",
                        be,
                        ve,
                        e
                    );
                }
            }
        }
    }
}
