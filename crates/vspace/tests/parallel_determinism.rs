//! Parallel compression must be bit-for-bit deterministic: a run with the
//! worker count forced to 1 (via the `DC_THREADS` env var, then via
//! `rayon::set_max_threads`) and a run at full parallelism must accept
//! the same inventions, in the same order, with the same scores, and
//! rewrite the corpus to the same programs. Candidate selection ties
//! break on proposal order, never on thread arrival.

use std::sync::Arc;

use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::Grammar;
use dc_grammar::library::Library;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::{tint, tlist, Type};
use dc_vspace::{compress, CompressionConfig, CompressionResult};

fn list_corpus() -> (Arc<Library>, Vec<Frontier>) {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(Arc::clone(&lib));
    let tl = Type::arrow(tlist(tint()), tlist(tint()));
    let ti = tint();
    let sources: Vec<(&str, &Type)> = vec![
        (
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
            &tl,
        ),
        (
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (- (car $0) 1) ($1 (cdr $0)))))) $0))",
            &tl,
        ),
        ("(+ 1 1)", &ti),
        ("(+ 0 0)", &ti),
        ("(+ (+ 1 1) (+ 1 1))", &ti),
    ];
    let frontiers = sources
        .into_iter()
        .map(|(src, request)| {
            let e = Expr::parse(src, &prims).expect("corpus program parses");
            let mut f = Frontier::new(request.clone());
            f.insert(
                FrontierEntry {
                    log_prior: g.log_prior(request, &e),
                    log_likelihood: 0.0,
                    expr: e,
                },
                5,
            );
            f
        })
        .collect();
    (lib, frontiers)
}

/// Everything observable about a compression run, with scores kept as
/// exact bit patterns so "identical" means identical floating point.
#[allow(clippy::type_complexity)]
fn summarize(r: &CompressionResult) -> (Vec<(String, u64, u64)>, Vec<String>, Vec<String>) {
    let steps = r
        .steps
        .iter()
        .map(|s| {
            (
                s.invention.body.to_string(),
                s.score_before.to_bits(),
                s.score_after.to_bits(),
            )
        })
        .collect();
    let library = r
        .library
        .items
        .iter()
        .map(|it| it.expr.to_string())
        .collect();
    let programs = r
        .frontiers
        .iter()
        .flat_map(|f| f.entries.iter().map(|e| e.expr.to_string()))
        .collect();
    (steps, library, programs)
}

#[test]
fn parallel_compression_matches_single_thread() {
    let (lib, frontiers) = list_corpus();
    let cfg = CompressionConfig {
        refactor_steps: 2,
        top_candidates: 60,
        max_inventions: 3,
        structure_penalty: 0.3,
        ..CompressionConfig::default()
    };

    // Forced single-thread via the env var (the documented user-facing
    // cap). This test binary has exactly one test, so no other thread
    // races the environment.
    std::env::set_var("DC_THREADS", "1");
    let sequential = compress(&lib, &frontiers, &cfg);
    std::env::remove_var("DC_THREADS");

    // And once more through the programmatic cap, which takes precedence.
    rayon::set_max_threads(Some(1));
    let sequential_api = compress(&lib, &frontiers, &cfg);
    rayon::set_max_threads(None);

    // Full parallelism (available_parallelism workers).
    let parallel = compress(&lib, &frontiers, &cfg);

    assert!(
        !sequential.steps.is_empty(),
        "corpus must compress for the test to be meaningful"
    );
    assert_eq!(summarize(&sequential), summarize(&parallel));
    assert_eq!(summarize(&sequential_api), summarize(&parallel));
}
