//! Building recognition-model training data from replays and fantasies
//! (§4): the two self-supervised data sources of dream sleep.

use dc_grammar::frontier::Frontier;
use dc_lambda::types::Type;

use crate::model::{Objective, TrainingExample};

/// Turn a solved task's frontier into a *replay* training example.
///
/// Under [`Objective::Map`] only the maximum-a-posteriori member is
/// trained on (weight 1); under [`Objective::Posterior`] every beam member
/// contributes with its normalized posterior weight. Returns `None` for
/// empty frontiers.
pub fn replay_example(
    features: Vec<f64>,
    frontier: &Frontier,
    objective: Objective,
) -> Option<TrainingExample> {
    if frontier.is_empty() {
        return None;
    }
    let programs = match objective {
        Objective::Map => {
            let best = frontier.best()?;
            vec![(best.expr.clone(), 1.0)]
        }
        Objective::Posterior => frontier
            .entries
            .iter()
            .zip(frontier.posterior_weights())
            .map(|(e, w)| (e.expr.clone(), w))
            .collect(),
    };
    Some(TrainingExample {
        features,
        request: frontier.request.clone(),
        programs,
    })
}

/// Turn a dreamed (program, task-features) pair into a *fantasy* example.
///
/// For `L_MAP` fantasies the caller should pass the cheapest program found
/// that reproduces the dreamed task (Appendix Algorithm 3 enumerates in
/// decreasing prior order and keeps the argmax); passing the sampled
/// program itself recovers the classic wake-sleep objective.
pub fn fantasy_example(
    features: Vec<f64>,
    request: Type,
    programs: Vec<(dc_lambda::expr::Expr, f64)>,
) -> TrainingExample {
    TrainingExample {
        features,
        request,
        programs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_grammar::frontier::FrontierEntry;
    use dc_lambda::expr::Expr;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::tint;

    fn frontier() -> Frontier {
        let prims = base_primitives();
        let mut f = Frontier::new(tint());
        f.insert(
            FrontierEntry {
                expr: Expr::parse("(+ 1 1)", &prims).unwrap(),
                log_likelihood: 0.0,
                log_prior: -1.0,
            },
            5,
        );
        f.insert(
            FrontierEntry {
                expr: Expr::parse("(+ 1 (+ 1 0))", &prims).unwrap(),
                log_likelihood: 0.0,
                log_prior: -4.0,
            },
            5,
        );
        f
    }

    #[test]
    fn map_replay_uses_only_the_best() {
        let ex = replay_example(vec![0.0], &frontier(), Objective::Map).unwrap();
        assert_eq!(ex.programs.len(), 1);
        assert_eq!(ex.programs[0].1, 1.0);
        assert_eq!(ex.programs[0].0.to_string(), "(+ 1 1)");
    }

    #[test]
    fn posterior_replay_weights_the_whole_beam() {
        let ex = replay_example(vec![0.0], &frontier(), Objective::Posterior).unwrap();
        assert_eq!(ex.programs.len(), 2);
        let total: f64 = ex.programs.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(ex.programs[0].1 > ex.programs[1].1);
    }

    #[test]
    fn empty_frontier_gives_no_example() {
        let f = Frontier::new(tint());
        assert!(replay_example(vec![0.0], &f, Objective::Map).is_none());
    }
}
