//! Minimal dense linear algebra for the recognition network.
//!
//! The paper trains its recognition model with PyTorch; offline we
//! implement the few operations an MLP needs (matrix-vector products,
//! elementwise nonlinearities, Adam) directly. `f64` throughout — the
//! networks are tiny, numerical robustness matters more than speed.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn glorot<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// `y = W x` for a vector `x` of length `cols`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *yr = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
        }
        y
    }

    /// `y = Wᵀ x` for a vector `x` of length `rows`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, w) in y.iter_mut().zip(row) {
                *yc += w * xr;
            }
        }
        y
    }
}

/// Adam optimizer state for one parameter tensor.
///
/// Serializable so checkpoints capture optimizer moments: resuming a
/// training run mid-trajectory then matches an uninterrupted one
/// bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    /// Learning rate.
    pub lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
}

impl Adam {
    /// Fresh state for `n` parameters at learning rate `lr`.
    pub fn new(n: usize, lr: f64) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Apply one update: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    /// Panics if slices disagree in length with the state.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Elementwise tanh.
pub fn tanh(x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| v.tanh()).collect()
}

/// Derivative of tanh given its *output* `y = tanh(x)`: `1 - y²`.
pub fn tanh_grad_from_output(y: &[f64]) -> Vec<f64> {
    y.iter().map(|v| 1.0 - v * v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_known_values() {
        let w = Matrix {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        assert_eq!(w.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(w.matvec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn glorot_is_bounded() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let w = Matrix::glorot(10, 10, &mut rng);
        let limit = (6.0 / 20.0f64).sqrt();
        assert!(w.data.iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize (x - 3)^2
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn tanh_grad_matches_finite_difference() {
        let x = [0.3, -1.2, 2.0];
        let y = tanh(&x);
        let g = tanh_grad_from_output(&y);
        for (i, xi) in x.iter().enumerate() {
            let fd = ((xi + 1e-6).tanh() - (xi - 1e-6).tanh()) / 2e-6;
            assert!((g[i] - fd).abs() < 1e-6);
        }
    }
}
