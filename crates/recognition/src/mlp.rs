//! A small multi-layer perceptron with manual backpropagation and Adam.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tensor::{tanh, tanh_grad_from_output, Adam, Matrix};

/// One fully connected layer `y = W x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Linear {
    w: Matrix,
    b: Vec<f64>,
    w_opt: Adam,
    b_opt: Adam,
}

impl Linear {
    fn new<R: Rng + ?Sized>(input: usize, output: usize, lr: f64, rng: &mut R) -> Linear {
        Linear {
            w: Matrix::glorot(output, input, rng),
            b: vec![0.0; output],
            w_opt: Adam::new(output * input, lr),
            b_opt: Adam::new(output, lr),
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.w.matvec(x);
        for (yi, bi) in y.iter_mut().zip(&self.b) {
            *yi += bi;
        }
        y
    }
}

/// A feed-forward network `features -> tanh hidden layers -> linear logits`.
///
/// Serializable (weights, biases, and Adam moments) so recognition
/// models survive checkpoint/resume bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    input_dim: usize,
    output_dim: usize,
}

/// Cached activations from a forward pass, needed for backprop.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Input followed by the output of each layer (post-activation).
    activations: Vec<Vec<f64>>,
}

impl ForwardTrace {
    /// The network output (logits).
    pub fn output(&self) -> &[f64] {
        self.activations.last().expect("nonempty trace")
    }
}

impl Mlp {
    /// Build a network with the given layer sizes, e.g. `[64, 32, 10]`
    /// makes `64 -> tanh(32) -> 10`.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], lr: f64, rng: &mut R) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], lr, rng))
            .collect();
        Mlp {
            layers,
            input_dim: sizes[0],
            output_dim: *sizes.last().expect("nonempty"),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Forward pass, keeping activations for backprop.
    ///
    /// # Panics
    /// Panics if `x.len() != input_dim`.
    pub fn forward(&self, x: &[f64]) -> ForwardTrace {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut activations = vec![x.to_vec()];
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(activations.last().expect("nonempty"));
            let post = if i + 1 < self.layers.len() {
                tanh(&pre)
            } else {
                pre
            };
            activations.push(post);
        }
        ForwardTrace { activations }
    }

    /// Clone this network with a freshly initialized output layer of a
    /// new size, keeping all hidden layers (and their optimizer state).
    ///
    /// Used when the library grows during abstraction sleep: the learned
    /// task featurization survives; only the per-production head restarts.
    pub fn with_resized_output<R: Rng + ?Sized>(
        &self,
        new_output: usize,
        lr: f64,
        rng: &mut R,
    ) -> Mlp {
        let mut layers = self.layers.clone();
        let last_input = layers
            .last()
            .map(|l| l.w.cols)
            .expect("mlp has at least one layer");
        *layers.last_mut().expect("nonempty") = Linear::new(last_input, new_output, lr, rng);
        Mlp {
            layers,
            input_dim: self.input_dim,
            output_dim: new_output,
        }
    }

    /// Backpropagate `d loss / d logits` and take one Adam step.
    ///
    /// # Panics
    /// Panics if the gradient length does not match the output dimension.
    pub fn backward(&mut self, trace: &ForwardTrace, grad_output: &[f64]) {
        assert_eq!(grad_output.len(), self.output_dim);
        let mut grad = grad_output.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let input = &trace.activations[i];
            let output = &trace.activations[i + 1];
            // For hidden layers the stored activation is post-tanh: fold the
            // activation derivative into the incoming gradient.
            if i + 1 < trace.activations.len() - 1 {
                let d = tanh_grad_from_output(output);
                for (g, di) in grad.iter_mut().zip(&d) {
                    *g *= di;
                }
            }
            // Gradients.
            let mut wg = vec![0.0; layer.w.rows * layer.w.cols];
            for r in 0..layer.w.rows {
                for c in 0..layer.w.cols {
                    wg[r * layer.w.cols + c] = grad[r] * input[c];
                }
            }
            let next_grad = layer.w.matvec_transposed(&grad);
            layer.w_opt.step(&mut layer.w.data, &wg);
            layer.b_opt.step(&mut layer.b, &grad);
            grad = next_grad;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mlp_learns_xor() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut net = Mlp::new(&[2, 8, 1], 0.02, &mut rng);
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..2000 {
            for (x, y) in &data {
                let trace = net.forward(x);
                let pred = trace.output()[0];
                // squared loss gradient
                net.backward(&trace, &[2.0 * (pred - y)]);
            }
        }
        for (x, y) in &data {
            let pred = net.forward(x).output()[0];
            assert!((pred - y).abs() < 0.25, "xor({x:?}) = {pred}, want {y}");
        }
    }

    #[test]
    fn forward_dimensions() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let net = Mlp::new(&[5, 7, 3], 0.01, &mut rng);
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.forward(&[0.0; 5]).output().len(), 3);
    }
}
