//! The recognition model `Q(ρ|x)` (§4): a neural network mapping task
//! features to a bigram transition tensor `Q_ijk` over the current library,
//! trained to perform MAP inference (`L_MAP`) or full posterior inference
//! (`L_post`), with either a bigram or a unigram output parameterization.
//!
//! The network runs **once per task**; enumeration then consumes the
//! predicted tensor exactly like a [`ContextualGrammar`], so neurally
//! guided search is not slowed by per-node network calls — the design
//! point the paper emphasizes.

use std::sync::Arc;

use dc_grammar::grammar::{generation_trace, ContextualGrammar, GenEvent, Grammar};
use dc_grammar::library::{logsumexp, BigramParent, Library};
use dc_lambda::expr::Expr;
use dc_lambda::types::Type;
use rand::Rng;

use crate::mlp::Mlp;

/// How the output distribution is parameterized (§4, Fig 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Parameterization {
    /// One weight per library routine, independent of context (as in EC2).
    Unigram,
    /// A full (parent × argument-index × child) transition tensor.
    Bigram,
}

/// Which training objective the model optimizes (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// `L_MAP`: predict only the maximum-a-posteriori program per task.
    Map,
    /// `L_post`: match the full (beam-approximated) posterior.
    Posterior,
}

/// One supervised pair for the recognition model: a task's features plus
/// the program(s) that should receive probability mass.
#[derive(Debug, Clone)]
pub struct TrainingExample {
    /// The task featurization.
    pub features: Vec<f64>,
    /// The task's request type.
    pub request: Type,
    /// Weighted target programs. `L_MAP` uses a single weight-1 program;
    /// `L_post` uses the beam with normalized posterior weights.
    pub programs: Vec<(Expr, f64)>,
}

/// The neural recognition model.
#[derive(Debug, Clone)]
pub struct RecognitionModel {
    library: Arc<Library>,
    parameterization: Parameterization,
    objective: Objective,
    max_arity: usize,
    mlp: Mlp,
    /// Optional prior bias: the network predicts a *residual* on top of
    /// these (typically the fitted generative weights `θ`), so an
    /// untrained network degrades gracefully to grammar-guided search
    /// instead of misleading it. No gradient flows into the bias.
    prior_bias: Option<crate::WeightVectorBias>,
}

impl RecognitionModel {
    /// Build a model for `library` over `feature_dim`-dimensional task
    /// features with one tanh hidden layer of `hidden_dim` units.
    pub fn new<R: Rng + ?Sized>(
        library: Arc<Library>,
        feature_dim: usize,
        hidden_dim: usize,
        parameterization: Parameterization,
        objective: Objective,
        learning_rate: f64,
        rng: &mut R,
    ) -> RecognitionModel {
        let n = library.len();
        let max_arity = library.max_arity().max(1);
        let out_dim = match parameterization {
            Parameterization::Unigram => n + 1,
            Parameterization::Bigram => BigramParent::row_count(n) * max_arity * (n + 1),
        };
        let mlp = Mlp::new(&[feature_dim, hidden_dim, out_dim], learning_rate, rng);
        RecognitionModel {
            library,
            parameterization,
            objective,
            max_arity,
            mlp,
            prior_bias: None,
        }
    }

    /// Install (or clear) the prior bias added to every slot's logits.
    ///
    /// # Panics
    /// Panics when the bias length disagrees with the library size.
    pub fn set_prior_bias(&mut self, bias: Option<crate::WeightVectorBias>) {
        if let Some(b) = &bias {
            assert_eq!(b.log_productions.len(), self.library.len());
        }
        self.prior_bias = bias;
    }

    fn bias_for(&self, production: Option<usize>) -> f64 {
        match (&self.prior_bias, production) {
            (Some(b), Some(j)) => b.log_productions[j],
            (Some(b), None) => b.log_variable,
            (None, _) => 0.0,
        }
    }

    /// The library this model predicts over.
    pub fn library(&self) -> &Arc<Library> {
        &self.library
    }

    /// Rebuild the model for a grown library: hidden layers (the learned
    /// task featurization) are kept; the output head is re-initialized at
    /// the new library's size.
    pub fn rebuild_for_library<R: Rng + ?Sized>(
        &self,
        library: Arc<Library>,
        learning_rate: f64,
        rng: &mut R,
    ) -> RecognitionModel {
        let n = library.len();
        let max_arity = library.max_arity().max(1);
        let out_dim = match self.parameterization {
            Parameterization::Unigram => n + 1,
            Parameterization::Bigram => BigramParent::row_count(n) * max_arity * (n + 1),
        };
        RecognitionModel {
            library,
            parameterization: self.parameterization,
            objective: self.objective,
            max_arity,
            mlp: self.mlp.with_resized_output(out_dim, learning_rate, rng),
            prior_bias: None,
        }
    }

    /// Snapshot the model's mutable state (weights, moments, bias) for
    /// persistence. The library is saved separately — see
    /// [`crate::persist`] for the contract.
    pub fn to_saved(&self) -> crate::persist::SavedRecognitionModel {
        crate::persist::SavedRecognitionModel {
            parameterization: self.parameterization,
            objective: self.objective,
            max_arity: self.max_arity,
            mlp: self.mlp.clone(),
            prior_bias: self.prior_bias.as_ref().map(|b| crate::persist::SavedBias {
                log_variable: b.log_variable,
                log_productions: b.log_productions.clone(),
            }),
        }
    }

    /// Restore a model from its saved state against `library`.
    ///
    /// # Errors
    /// [`crate::persist::ModelLoadError`] when the library's size or
    /// arity disagrees with the dimensions the head was saved with.
    pub fn from_saved(
        saved: crate::persist::SavedRecognitionModel,
        library: Arc<Library>,
    ) -> Result<RecognitionModel, crate::persist::ModelLoadError> {
        use crate::persist::ModelLoadError;
        let n = library.len();
        let library_arity = library.max_arity().max(1);
        if saved.max_arity != library_arity {
            return Err(ModelLoadError::ArityMismatch {
                saved: saved.max_arity,
                library: library_arity,
            });
        }
        let expected = match saved.parameterization {
            Parameterization::Unigram => n + 1,
            Parameterization::Bigram => BigramParent::row_count(n) * saved.max_arity * (n + 1),
        };
        if saved.mlp.output_dim() != expected {
            return Err(ModelLoadError::HeadMismatch {
                saved: saved.mlp.output_dim(),
                expected,
            });
        }
        let prior_bias = match saved.prior_bias {
            Some(b) => {
                if b.log_productions.len() != n {
                    return Err(ModelLoadError::BiasMismatch {
                        saved: b.log_productions.len(),
                        expected: n,
                    });
                }
                Some(crate::WeightVectorBias {
                    log_variable: b.log_variable,
                    log_productions: b.log_productions,
                })
            }
            None => None,
        };
        Ok(RecognitionModel {
            library,
            parameterization: saved.parameterization,
            objective: saved.objective,
            max_arity: saved.max_arity,
            mlp: saved.mlp,
            prior_bias,
        })
    }

    /// The training objective in force.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The output parameterization in force.
    pub fn parameterization(&self) -> Parameterization {
        self.parameterization
    }

    fn slot_base(&self, parent: BigramParent, arg: usize) -> usize {
        let n = self.library.len();
        match self.parameterization {
            Parameterization::Unigram => 0,
            Parameterization::Bigram => {
                let row = parent.row(n);
                (row * self.max_arity + arg.min(self.max_arity - 1)) * (n + 1)
            }
        }
    }

    /// Run the network once and decode the logits into a contextual
    /// grammar for enumeration. This is `Q(·|x)` as a search distribution.
    ///
    /// # Panics
    /// Panics if `features.len()` differs from the configured dimension.
    pub fn predict(&self, features: &[f64]) -> ContextualGrammar {
        let logits = self.mlp.forward(features).output().to_vec();
        let n = self.library.len();
        let mut cg = ContextualGrammar::uniform(Arc::clone(&self.library));
        let rows = BigramParent::row_count(n);
        for row in 0..rows {
            let parent = if row == n {
                BigramParent::Start
            } else if row == n + 1 {
                BigramParent::Var
            } else {
                BigramParent::Prod(row)
            };
            for arg in 0..self.max_arity.min(cg.max_arity) {
                let base = self.slot_base(parent, arg);
                let wv = cg.weights_mut(parent, arg);
                wv.log_productions.copy_from_slice(&logits[base..base + n]);
                wv.log_variable = logits[base + n];
                if let Some(bias) = &self.prior_bias {
                    for (w, b) in wv.log_productions.iter_mut().zip(&bias.log_productions) {
                        *w += b;
                    }
                    wv.log_variable += bias.log_variable;
                }
            }
        }
        cg
    }

    /// One stochastic training step on a single example; returns the loss.
    ///
    /// The loss is the negative log-probability the predicted tensor
    /// assigns to the target program(s), with the normalizer computed over
    /// the *type-feasible* candidates at each generation choice point —
    /// exactly the probability enumeration would assign.
    pub fn train_step(&mut self, example: &TrainingExample) -> f64 {
        // One-shot path: trace against a throwaway uniform grammar. The
        // epoch loop in [`RecognitionModel::train`] hoists both the grammar
        // and the traces out of the hot path instead.
        let scorer = Grammar::uniform(Arc::clone(&self.library));
        let traces = prepare_traces(&scorer, example);
        self.train_step_traced(&example.features, &traces)
    }

    /// The SGD inner step over precomputed generation traces. The trace
    /// events (type-feasibility per choice point) are weight-independent,
    /// so callers compute them once per example and replay them every
    /// epoch; only the logits and gradients here change between steps.
    fn train_step_traced(&mut self, features: &[f64], traces: &[(f64, Vec<GenEvent>)]) -> f64 {
        let trace = self.mlp.forward(features);
        let n = self.library.len();
        let mut grad = vec![0.0; trace.output().len()];
        let mut loss = 0.0;
        let mut terms: Vec<f64> = Vec::new();
        for (weight, events) in traces {
            let weight = *weight;
            let logits = trace.output();
            for ev in events {
                let base = self.slot_base(ev.parent, ev.arg);
                let var_logit = logits[base + n] + self.bias_for(None);
                terms.clear();
                terms.extend(
                    ev.feasible_prods
                        .iter()
                        .map(|&j| logits[base + j] + self.bias_for(Some(j))),
                );
                if ev.feasible_vars > 0 {
                    terms.push(var_logit + (ev.feasible_vars as f64).ln());
                }
                let z = logsumexp(&terms);
                let chosen_logit = match ev.chosen {
                    Some(j) => logits[base + j] + self.bias_for(Some(j)),
                    None => var_logit,
                };
                loss += weight * (z - chosen_logit);
                for &j in &ev.feasible_prods {
                    let p = (logits[base + j] + self.bias_for(Some(j)) - z).exp();
                    grad[base + j] += weight * p;
                }
                if ev.feasible_vars > 0 {
                    let p_var = (var_logit + (ev.feasible_vars as f64).ln() - z).exp();
                    grad[base + n] += weight * p_var;
                }
                match ev.chosen {
                    Some(j) => grad[base + j] -= weight,
                    None => grad[base + n] -= weight,
                }
            }
        }
        self.mlp.backward(&trace, &grad);
        loss
    }

    /// Train over the examples for `epochs` passes (order shuffled by the
    /// provided RNG); returns the mean loss of the final epoch.
    ///
    /// The weight-independent generation traces are computed once per
    /// example (in parallel, order-preserving) and replayed across epochs;
    /// the SGD steps themselves stay strictly sequential in shuffle order,
    /// so training is bit-for-bit identical at any thread count.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        examples: &[TrainingExample],
        epochs: usize,
        rng: &mut R,
    ) -> f64 {
        let mut last = 0.0;
        if examples.is_empty() {
            return last;
        }
        // Hoisted out of the epoch loop: one uniform grammar (the old code
        // rebuilt it on every step) and one trace per example (the old code
        // re-derived them `epochs` times).
        let scorer = Grammar::uniform(Arc::clone(&self.library));
        let prepared: Vec<Vec<(f64, Vec<GenEvent>)>> = {
            use rayon::prelude::*;
            examples
                .par_iter()
                .map(|ex| prepare_traces(&scorer, ex))
                .collect()
        };
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for epoch in 0..epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            last = order
                .iter()
                .map(|&i| self.train_step_traced(&examples[i].features, &prepared[i]))
                .sum::<f64>()
                / examples.len() as f64;
            dc_telemetry::incr("recognition.epochs");
            dc_telemetry::event(
                dc_telemetry::Level::Debug,
                "recognition.epoch",
                &[
                    ("epoch", epoch.into()),
                    ("examples", examples.len().into()),
                    ("mean_loss", last.into()),
                ],
            );
        }
        dc_telemetry::add("recognition.examples_trained", examples.len() as u64);
        dc_telemetry::set_gauge("recognition.final_loss", last);
        last
    }
}

/// Compute the weight-independent generation traces for one example: the
/// feasible-candidate events of each target program, against a uniform
/// grammar over the model's library (feasibility depends only on types,
/// never on θ). Programs the grammar cannot generate contribute nothing.
fn prepare_traces(scorer: &Grammar, example: &TrainingExample) -> Vec<(f64, Vec<GenEvent>)> {
    example
        .programs
        .iter()
        .filter_map(|(expr, weight)| {
            generation_trace(scorer, &example.request, expr).map(|(_, events)| (*weight, events))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_grammar::grammar::ProgramPrior;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::tint;
    use rand::SeedableRng;

    fn tiny_library() -> Arc<Library> {
        let prims = base_primitives();
        Arc::new(Library::from_primitives(
            prims
                .iter()
                .filter(|p| ["+", "0", "1"].contains(&p.name.as_str()))
                .cloned(),
        ))
    }

    fn example(src: &str, features: Vec<f64>) -> TrainingExample {
        let prims = base_primitives();
        TrainingExample {
            features,
            request: tint(),
            programs: vec![(Expr::parse(src, &prims).unwrap(), 1.0)],
        }
    }

    #[test]
    fn predict_produces_usable_grammar() {
        let lib = tiny_library();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let model = RecognitionModel::new(
            lib,
            4,
            8,
            Parameterization::Bigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        let cg = model.predict(&[0.1, 0.2, 0.3, 0.4]);
        let prims = base_primitives();
        let e = Expr::parse("(+ 1 1)", &prims).unwrap();
        assert!(cg.log_prior(&tint(), &e).is_finite());
    }

    #[test]
    fn training_reduces_loss_and_shifts_mass() {
        let lib = tiny_library();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut model = RecognitionModel::new(
            Arc::clone(&lib),
            2,
            16,
            Parameterization::Bigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        // Feature [1,0] tasks are solved by (+ 1 1); [0,1] by 0.
        let examples = vec![
            example("(+ 1 1)", vec![1.0, 0.0]),
            example("0", vec![0.0, 1.0]),
        ];
        let first: f64 = examples
            .iter()
            .map(|e| {
                let mut m = model.clone();
                m.train_step(e)
            })
            .sum();
        let last = model.train(&examples, 300, &mut rng);
        assert!(last < first, "loss should fall: {first} -> {last}");
        // Conditioned on features, priors should now be task-appropriate.
        let prims = base_primitives();
        let plus = Expr::parse("(+ 1 1)", &prims).unwrap();
        let zero = Expr::parse("0", &prims).unwrap();
        let g_plus = model.predict(&[1.0, 0.0]);
        let g_zero = model.predict(&[0.0, 1.0]);
        assert!(g_plus.log_prior(&tint(), &plus) > g_zero.log_prior(&tint(), &plus));
        assert!(g_zero.log_prior(&tint(), &zero) > g_plus.log_prior(&tint(), &zero));
    }

    #[test]
    fn unigram_head_is_context_independent() {
        let lib = tiny_library();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let model = RecognitionModel::new(
            lib,
            3,
            8,
            Parameterization::Unigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        let cg = model.predict(&[0.5, 0.5, 0.5]);
        // Every slot carries identical weights.
        let w_start = cg.weights(BigramParent::Start, 0).clone();
        let w_prod = cg.weights(BigramParent::Prod(0), 1).clone();
        assert_eq!(w_start, w_prod);
    }

    #[test]
    fn posterior_examples_with_multiple_programs_train() {
        let lib = tiny_library();
        let prims = base_primitives();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut model = RecognitionModel::new(
            lib,
            2,
            8,
            Parameterization::Bigram,
            Objective::Posterior,
            0.01,
            &mut rng,
        );
        let ex = TrainingExample {
            features: vec![1.0, 0.0],
            request: tint(),
            programs: vec![
                (Expr::parse("(+ 1 0)", &prims).unwrap(), 0.7),
                (Expr::parse("(+ 0 1)", &prims).unwrap(), 0.3),
            ],
        };
        let l0 = model.train_step(&ex);
        for _ in 0..200 {
            model.train_step(&ex);
        }
        let l1 = model.train_step(&ex);
        assert!(l1 < l0);
    }
}
