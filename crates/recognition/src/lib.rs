//! # dc-recognition
//!
//! The neural recognition model `Q(ρ|x)` of DreamCoder's dream-sleep phase
//! (§4 of the paper), implemented as a pure-Rust MLP (the paper used
//! PyTorch; see DESIGN.md for the substitution rationale).
//!
//! The model maps a task feature vector to the bigram transition tensor
//! `Q_ijk` — indexed by parent production, argument slot, and child — and
//! is trained under either the `L_MAP` or `L_post` objective with either a
//! bigram or unigram output head, the four regimes compared in Fig 6.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dc_grammar::Library;
//! use dc_lambda::primitives::base_primitives;
//! use dc_recognition::{Objective, Parameterization, RecognitionModel};
//! use rand::SeedableRng;
//!
//! let prims = base_primitives();
//! let library = Arc::new(Library::from_primitives(prims.iter().cloned()));
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let model = RecognitionModel::new(
//!     library, 8, 16, Parameterization::Bigram, Objective::Map, 0.01, &mut rng,
//! );
//! let guide = model.predict(&[0.0; 8]); // a ContextualGrammar for search
//! assert_eq!(guide.library.len(), model.library().len());
//! ```

#![warn(missing_docs)]

pub mod dream;
pub mod mlp;
pub mod model;
pub mod persist;
pub mod tensor;

pub use dream::{fantasy_example, replay_example};
pub use mlp::{ForwardTrace, Mlp};
pub use model::{Objective, Parameterization, RecognitionModel, TrainingExample};
pub use persist::{ModelLoadError, SavedBias, SavedRecognitionModel};
pub use tensor::{Adam, Matrix};

/// The prior-bias vector type (the generative grammar's weights `θ`).
pub type WeightVectorBias = dc_grammar::library::WeightVector;
