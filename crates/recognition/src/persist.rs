//! Saving and loading recognition-model weights.
//!
//! A [`SavedRecognitionModel`] captures everything mutable about a
//! [`crate::RecognitionModel`] — MLP weights, Adam moments, the output
//! parameterization, and the prior bias — but *not* the library, which is
//! persisted separately (as a `SavedGrammar`) and supplied again at load
//! time. Loading validates that the supplied library agrees with the
//! saved head dimensions, so a checkpoint cannot silently pair weights
//! with the wrong production set.

use serde::{Deserialize, Serialize};

use crate::mlp::Mlp;
use crate::model::{Objective, Parameterization};

/// Serialized prior-bias vector (the generative weights `θ` the network
/// predicts a residual on top of).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedBias {
    /// Log-weight of choosing any bound variable.
    pub log_variable: f64,
    /// Per-production log weights.
    pub log_productions: Vec<f64>,
}

/// Serialized form of a [`crate::RecognitionModel`] minus its library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedRecognitionModel {
    /// Output head parameterization.
    pub parameterization: Parameterization,
    /// Training objective.
    pub objective: Objective,
    /// Maximum production arity the bigram head was sized for.
    pub max_arity: usize,
    /// The network itself: weights, biases, and optimizer moments.
    pub mlp: Mlp,
    /// Installed prior bias, if any.
    pub prior_bias: Option<SavedBias>,
}

/// Error restoring a recognition model against a library.
#[derive(Debug)]
pub enum ModelLoadError {
    /// The library's maximum arity disagrees with the saved head layout.
    ArityMismatch {
        /// Arity the head was saved with.
        saved: usize,
        /// Arity implied by the supplied library.
        library: usize,
    },
    /// The saved output layer is the wrong size for the library.
    HeadMismatch {
        /// Output dimension of the saved network.
        saved: usize,
        /// Output dimension the library requires.
        expected: usize,
    },
    /// The saved prior bias is the wrong length for the library.
    BiasMismatch {
        /// Length of the saved bias.
        saved: usize,
        /// Productions in the supplied library.
        expected: usize,
    },
}

impl std::fmt::Display for ModelLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelLoadError::ArityMismatch { saved, library } => write!(
                f,
                "saved recognition head sized for max arity {saved}, library has {library}"
            ),
            ModelLoadError::HeadMismatch { saved, expected } => write!(
                f,
                "saved recognition head has {saved} outputs, library requires {expected}"
            ),
            ModelLoadError::BiasMismatch { saved, expected } => write!(
                f,
                "saved prior bias covers {saved} productions, library has {expected}"
            ),
        }
    }
}

impl std::error::Error for ModelLoadError {}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use dc_grammar::library::{Library, WeightVector};
    use dc_lambda::expr::Expr;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::tint;
    use rand::SeedableRng;

    use crate::model::{RecognitionModel, TrainingExample};
    use crate::{Objective, Parameterization};

    use super::*;

    fn tiny_library() -> Arc<Library> {
        let prims = base_primitives();
        Arc::new(Library::from_primitives(
            prims
                .iter()
                .filter(|p| ["+", "0", "1"].contains(&p.name.as_str()))
                .cloned(),
        ))
    }

    fn example(src: &str, features: Vec<f64>) -> TrainingExample {
        let prims = base_primitives();
        TrainingExample {
            features,
            request: tint(),
            programs: vec![(Expr::parse(src, &prims).unwrap(), 1.0)],
        }
    }

    #[test]
    fn model_round_trips_bit_for_bit() {
        let lib = tiny_library();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut model = RecognitionModel::new(
            Arc::clone(&lib),
            2,
            8,
            Parameterization::Bigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        model.set_prior_bias(Some(WeightVector {
            log_variable: -0.25,
            log_productions: vec![0.1; lib.len()],
        }));
        // Train a little so Adam moments are non-trivial.
        let ex = example("(+ 1 1)", vec![1.0, 0.0]);
        for _ in 0..5 {
            model.train_step(&ex);
        }

        let json = serde_json::to_string(&model.to_saved()).unwrap();
        let back: SavedRecognitionModel = serde_json::from_str(&json).unwrap();
        let mut loaded = RecognitionModel::from_saved(back, Arc::clone(&lib)).unwrap();

        // Identical predictions and — because Adam moments survive —
        // identical continued-training trajectories.
        let prims = base_primitives();
        let probe = Expr::parse("(+ 1 0)", &prims).unwrap();
        let a = model.predict(&[0.3, 0.7]).log_prior(&tint(), &probe);
        let b = loaded.predict(&[0.3, 0.7]).log_prior(&tint(), &probe);
        assert_eq!(a.to_bits(), b.to_bits(), "predictions must be bit-equal");
        for _ in 0..3 {
            let l1 = model.train_step(&ex);
            let l2 = loaded.train_step(&ex);
            assert_eq!(l1.to_bits(), l2.to_bits(), "training must stay in lockstep");
        }
    }

    #[test]
    fn load_rejects_mismatched_library() {
        let lib = tiny_library();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let model = RecognitionModel::new(
            Arc::clone(&lib),
            2,
            4,
            Parameterization::Bigram,
            Objective::Map,
            0.01,
            &mut rng,
        );
        let saved = model.to_saved();
        // A bigger library than the head was sized for must be rejected.
        let prims = base_primitives();
        let big = Arc::new(Library::from_primitives(prims.iter().cloned()));
        assert!(RecognitionModel::from_saved(saved, big).is_err());
    }
}
