//! # dc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! DreamCoder paper (see DESIGN.md's experiment index). Each figure has a
//! binary (`cargo run --release -p dc-bench --bin fig7_accuracy`), and
//! Criterion microbenches cover the hot algorithmic paths
//! (`cargo bench --workspace`).
//!
//! Budgets are laptop-scale: this reproduction runs on a single CPU where
//! the paper used 20–128, so absolute numbers are smaller while the
//! qualitative shape (who wins, by roughly what factor) is preserved.
//! Results are also dumped as JSON under `results/`.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Duration;

use dc_grammar::enumeration::EnumerationConfig;
use dc_vspace::CompressionConfig;
use dc_wakesleep::{Condition, DreamCoderConfig, RecognitionConfig, RunSummary};

/// Scale factor for benchmark budgets, settable via `DC_BENCH_SCALE`
/// (default 1.0). `DC_BENCH_SCALE=4 cargo run ...` runs 4× longer
/// searches for higher-fidelity reproductions.
pub fn scale() -> f64 {
    std::env::var("DC_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// A laptop-scale configuration for figure benchmarks. Also switches the
/// telemetry subsystem on, so every figure binary's `write_report` call
/// drops a `results/telemetry.json` beside its JSON report.
pub fn bench_config(condition: Condition, seed: u64) -> DreamCoderConfig {
    dc_telemetry::enable();
    let s = scale();
    DreamCoderConfig {
        condition,
        cycles: 3,
        minibatch: 12,
        beam_size: 5,
        compression_beam: 2,
        enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis((700.0 * s) as u64)),
            ..EnumerationConfig::default()
        },
        test_enumeration: EnumerationConfig {
            timeout: Some(Duration::from_millis((300.0 * s) as u64)),
            ..EnumerationConfig::default()
        },
        compression: CompressionConfig {
            refactor_steps: 2,
            top_candidates: 25,
            structure_penalty: 0.75,
            max_inventions: 3,
            ..CompressionConfig::default()
        },
        recognition: RecognitionConfig {
            fantasies: 60,
            epochs: 40,
            hidden_dim: 48,
            ..RecognitionConfig::default()
        },
        seed,
        ..DreamCoderConfig::default()
    }
}

/// Pretty-print one accuracy row.
pub fn print_row(label: &str, values: &[(String, f64)]) {
    print!("{label:<18}");
    for (name, v) in values {
        print!(" | {name}: {:>5.1}%", 100.0 * v);
    }
    println!();
}

/// Write a JSON report under `results/<name>.json` (best effort).
pub fn write_report<T: serde::Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if std::fs::write(&path, json).is_ok() {
                println!("[report written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize report: {e}"),
    }
    // Drop the metrics captured while producing this report next to it.
    if dc_telemetry::is_enabled() {
        let tpath = dir.join("telemetry.json");
        if dc_telemetry::export_to_file(&tpath).is_ok() {
            println!("[telemetry written to {}]", tpath.display());
        }
    }
}

/// Summarize a run for the console: final accuracy plus library stats.
pub fn print_summary(summary: &RunSummary) {
    println!(
        "{:<18} final test: {:>5.1}%  library: {} inventions",
        summary.condition,
        100.0 * summary.final_test_solved,
        summary.library.len()
    );
    for c in &summary.cycles {
        println!(
            "  cycle {}: train {}  test {:>5.1}%  |D|={} depth={} mean-solve {:.2}s",
            c.cycle,
            c.train_solved,
            100.0 * c.test_solved,
            c.library_size,
            c.library_depth,
            c.mean_solve_time
        );
    }
}

/// Pearson correlation coefficient (used for the Fig 7C "r = 0.79" style
/// depth-vs-performance statistic).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn bench_config_respects_condition() {
        let c = bench_config(Condition::NoRecognition, 0);
        assert!(!c.condition.uses_recognition());
        assert!(c.enumeration.timeout.is_some());
    }
}
