//! **E8 — Fig 8 reproduction.** LOGO inverse graphics: learn parametric
//! drawing routines, and show how *dreams* change before vs after
//! learning (unstructured scribbles → compositional figures).

use std::collections::BTreeSet;
use std::sync::Arc;

use dc_grammar::grammar::Grammar;
use dc_grammar::sample::sample_program_with_retries;
use dc_tasks::domains::logo::{rasterize, run_logo_program, LogoDomain, CANVAS};
use dc_tasks::Domain;
use dc_wakesleep::{Condition, DreamCoder};
use rand::SeedableRng;
use serde::Serialize;

fn ascii(pixels: &BTreeSet<(u8, u8)>) -> String {
    let mut out = String::new();
    for y in (0..CANVAS as u8).rev().step_by(2) {
        for x in 0..CANVAS as u8 {
            let lit = pixels.contains(&(x, y)) || pixels.contains(&(x, y.saturating_sub(1)));
            out.push(if lit { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn dream_gallery(grammar: &Grammar, domain: &LogoDomain, seed: u64, n: usize) -> Vec<String> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let request = domain.dream_requests()[0].clone();
    let mut shown = Vec::new();
    let mut attempts = 0;
    while shown.len() < n && attempts < 300 {
        attempts += 1;
        let Some(p) = sample_program_with_retries(grammar, &request, &mut rng, 10, 10) else {
            continue;
        };
        let Ok(state) = run_logo_program(&p, 30_000) else {
            continue;
        };
        let pixels = rasterize(&state.segments);
        if pixels.len() >= 4 {
            shown.push(format!("{p}\n{}", ascii(&pixels)));
        }
    }
    shown
}

#[derive(Debug, Serialize)]
struct Report {
    train_solved: usize,
    train_total: usize,
    test_solved: f64,
    inventions: Vec<String>,
}

fn main() {
    let domain = LogoDomain::new(0);
    println!(
        "== Fig 8: LOGO graphics ({} train / {} test image tasks) ==\n",
        domain.train_tasks().len(),
        domain.test_tasks().len()
    );

    let before = Grammar::uniform(Arc::clone(&domain.initial_library()));
    println!("--- dreams BEFORE learning (random programs, base library) ---");
    for d in dream_gallery(&before, &domain, 1, 2) {
        println!("{d}");
    }

    let mut config = dc_bench::bench_config(Condition::NoRecognition, 0);
    config.cycles = 3;
    config.minibatch = domain.train_tasks().len();
    config.enumeration.timeout = Some(std::time::Duration::from_millis(
        (2000.0 * dc_bench::scale()) as u64,
    ));
    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();

    println!("--- learned library routines ---");
    for inv in &summary.library {
        println!("  {inv}");
    }
    if summary.library.is_empty() {
        println!("  (none at this budget; raise DC_BENCH_SCALE)");
    }

    println!("\n--- dreams AFTER learning ---");
    for d in dream_gallery(&dc.grammar, &domain, 2, 2) {
        println!("{d}");
    }

    let last = summary.cycles.last().unwrap();
    println!(
        "solved {}/{} train tasks; test {:.0}%",
        last.train_solved,
        domain.train_tasks().len(),
        100.0 * last.test_solved
    );
    println!(
        "\npaper's shape: learned routines are parametric curve families \
         (polygons, spirals) and dreams become structured after learning."
    );
    dc_bench::write_report(
        "fig8_logo",
        &Report {
            train_solved: last.train_solved,
            train_total: domain.train_tasks().len(),
            test_solved: last.test_solved,
            inventions: summary.library.clone(),
        },
    );
}
