//! **E4 — Fig 6 reproduction.** Symmetry breaking requires both the
//! bigram parameterization *and* the `L_MAP` objective: train the
//! recognition model in all four regimes on a tiny arithmetic DSL
//! `{+, 0, 1}`, sample 500 programs from each trained model, and report
//! the % of right(or left)-associative additions and the % of samples
//! containing an addition of zero.

use std::collections::HashMap;
use std::sync::Arc;

use dc_grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dc_grammar::grammar::Grammar;
use dc_grammar::library::Library;
use dc_grammar::sample::sample_program_with_retries;
use dc_lambda::eval::run_program;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::tint;
use dc_recognition::{Objective, Parameterization, RecognitionModel, TrainingExample};
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Does the expression contain `(+ 0 _)` or `(+ _ 0)`?
fn has_plus_zero(e: &Expr) -> bool {
    e.subexpressions().iter().any(|s| {
        if let Expr::Application(f, x) = s {
            if let Expr::Application(g, y) = &**f {
                return g.to_string() == "+" && (y.to_string() == "0" || x.to_string() == "0");
            }
        }
        false
    })
}

/// Classify nested additions: returns (right_nested, left_nested) counts.
fn associativity(e: &Expr) -> (usize, usize) {
    let mut right = 0;
    let mut left = 0;
    for s in e.subexpressions() {
        // s = (+ a b): right-nested if b is an addition, left if a is.
        if let Expr::Application(f, b) = s {
            if let Expr::Application(g, a) = &**f {
                if g.to_string() == "+" {
                    if matches!(&**b, Expr::Application(bf, _) if matches!(&**bf, Expr::Application(bg, _) if bg.to_string() == "+"))
                    {
                        right += 1;
                    }
                    if matches!(&**a, Expr::Application(af, _) if matches!(&**af, Expr::Application(ag, _) if ag.to_string() == "+"))
                    {
                        left += 1;
                    }
                }
            }
        }
    }
    (right, left)
}

#[derive(Debug, Serialize)]
struct Regime {
    parameterization: String,
    objective: String,
    pct_associative_consistency: f64,
    pct_plus_zero: f64,
    samples: Vec<String>,
}

fn main() {
    let prims = base_primitives();
    let library = Arc::new(Library::from_primitives(
        prims
            .iter()
            .filter(|p| ["+", "0", "1"].contains(&p.name.as_str()))
            .cloned(),
    ));
    let grammar = Grammar::uniform(Arc::clone(&library));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);

    // Dreamed training tasks: values 0..=6, featurized one-hot-ish. For
    // each value, the L_MAP target is the *first* (cheapest) enumerated
    // program producing it; L_post targets the top-5 with posterior mass.
    let mut maps: HashMap<i64, Vec<(Expr, f64)>> = HashMap::new();
    let cfg = EnumerationConfig::default();
    enumerate_programs(&grammar, &tint(), &cfg, &mut |e, lp| {
        if let Ok(dc_lambda::Value::Int(v)) = run_program(&e, &[], 10_000) {
            if (0..=6).contains(&v) {
                let entry = maps.entry(v).or_default();
                if entry.len() < 5 {
                    entry.push((e, lp));
                }
            }
        }
        maps.len() < 7 || maps.values().any(|v| v.len() < 5)
    });

    fn features(v: i64) -> Vec<f64> {
        let mut f = vec![0.0; 8];
        f[(v as usize).min(7)] = 1.0;
        f
    }

    let mut report = Vec::new();
    println!("== Fig 6: symmetry breaking needs bigrams + L_MAP ==\n");
    println!("{:<22} {:>24} {:>8}", "regime", "% dominant-assoc", "% +0");
    for (param, pname) in [
        (Parameterization::Unigram, "Unigram"),
        (Parameterization::Bigram, "Bigram"),
    ] {
        for (obj, oname) in [(Objective::Posterior, "L_post"), (Objective::Map, "L_MAP")] {
            let mut model =
                RecognitionModel::new(Arc::clone(&library), 8, 16, param, obj, 0.02, &mut rng);
            let mut examples = Vec::new();
            for (&v, progs) in &maps {
                let programs = match obj {
                    Objective::Map => vec![(progs[0].0.clone(), 1.0)],
                    Objective::Posterior => {
                        let z: f64 = progs.iter().map(|(_, lp)| lp.exp()).sum();
                        progs
                            .iter()
                            .map(|(e, lp)| (e.clone(), lp.exp() / z))
                            .collect()
                    }
                };
                examples.push(TrainingExample {
                    features: features(v),
                    request: tint(),
                    programs,
                });
            }
            model.train(&examples, 400, &mut rng);

            // Sample 500 programs conditioned on random task features.
            let mut right = 0usize;
            let mut left = 0usize;
            let mut plus_zero = 0usize;
            let mut total = 0usize;
            let mut shown = Vec::new();
            while total < 500 {
                let v = rng.gen_range(0..=6);
                let q = model.predict(&features(v));
                if let Some(e) = sample_program_with_retries(&q, &tint(), &mut rng, 10, 20) {
                    total += 1;
                    let (r, l) = associativity(&e);
                    right += r;
                    left += l;
                    if has_plus_zero(&e) {
                        plus_zero += 1;
                    }
                    if shown.len() < 3 {
                        shown.push(e.to_string());
                    }
                }
            }
            let nested = (right + left).max(1);
            // Symmetry breaking = committing to ONE associativity
            // direction (random initialization picks which; the paper
            // notes "different random initializations lead to either
            // right or left association").
            let dominant = right.max(left) as f64 / nested as f64;
            let pz = plus_zero as f64 / total as f64;
            println!(
                "{:<22} {:>22.1}% {:>7.1}%",
                format!("{pname}/{oname}"),
                100.0 * dominant,
                100.0 * pz
            );
            for s in &shown {
                println!("    sample: {s}");
            }
            report.push(Regime {
                parameterization: pname.to_owned(),
                objective: oname.to_owned(),
                pct_associative_consistency: dominant,
                pct_plus_zero: pz,
                samples: shown,
            });
        }
    }
    println!(
        "\npaper's shape: L_MAP/Bigram is most associatively consistent (97.9%) \
         with few +0's (2.5%); L_post regimes keep ~30-37% +0's."
    );
    dc_bench::write_report("fig6_symmetry", &report);
}
