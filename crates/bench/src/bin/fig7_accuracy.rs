//! **E5/E6/E13 — Fig 7A-B reproduction.** Held-out test accuracy across
//! experimental conditions on the list and text domains (panel A:
//! DreamCoder vs its ablations and baselines; panel B: vs minibatched
//! EC2), plus the solve-time statistics of Appendix Fig 20.
//!
//! Usage: `fig7_accuracy [--panel a|b] [--domain list|text|both] [--seeds N]`

use dc_tasks::domain::Domain;
use dc_tasks::domains::list::ListDomain;
use dc_tasks::domains::text::TextDomain;
use dc_wakesleep::{Condition, DreamCoder, RunSummary};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    domain: String,
    condition: String,
    mean_test_solved: f64,
    std_test_solved: f64,
    mean_solve_time: f64,
    median_solve_time: f64,
    runs: Vec<RunSummary>,
}

fn run_condition(domain: &dyn Domain, condition: Condition, seeds: u64) -> Row {
    let mut runs = Vec::new();
    for seed in 0..seeds {
        let config = dc_bench::bench_config(condition, seed);
        let mut dc = DreamCoder::new(domain, config);
        runs.push(dc.run());
    }
    let accs: Vec<f64> = runs.iter().map(|r| r.final_test_solved).collect();
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let var = accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / accs.len() as f64;
    let last = runs.last().and_then(|r| r.cycles.last());
    Row {
        domain: domain.name().to_owned(),
        condition: condition.label().to_owned(),
        mean_test_solved: mean,
        std_test_solved: var.sqrt(),
        mean_solve_time: last.map_or(0.0, |c| c.mean_solve_time),
        median_solve_time: last.map_or(0.0, |c| c.median_solve_time),
        runs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "a".to_owned());
    let domain_arg = args
        .iter()
        .position(|a| a == "--domain")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "list".to_owned());
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let conditions: Vec<Condition> = match panel.as_str() {
        "b" => vec![Condition::Full, Condition::Ec2],
        _ => vec![
            Condition::Full,
            Condition::NoRecognition,
            Condition::NoCompression,
            Condition::Memorize {
                with_recognition: true,
            },
            Condition::Memorize {
                with_recognition: false,
            },
            Condition::NeuralOnly,
            Condition::EnumerationOnly,
        ],
    };

    let mut domains: Vec<Box<dyn Domain>> = Vec::new();
    if domain_arg == "list" || domain_arg == "both" {
        domains.push(Box::new(ListDomain::new(0)));
    }
    if domain_arg == "text" || domain_arg == "both" {
        domains.push(Box::new(TextDomain::new(0)));
    }

    println!(
        "== Fig 7{} : held-out accuracy by condition ==\n",
        panel.to_uppercase()
    );
    let mut rows = Vec::new();
    for domain in &domains {
        println!("domain: {}", domain.name());
        println!(
            "{:<18} {:>12} {:>8} {:>12} {:>12}",
            "condition", "test solved", "± std", "mean solve", "median solve"
        );
        for &condition in &conditions {
            let row = run_condition(domain.as_ref(), condition, seeds);
            println!(
                "{:<18} {:>11.1}% {:>7.1}% {:>11.2}s {:>11.2}s",
                row.condition,
                100.0 * row.mean_test_solved,
                100.0 * row.std_test_solved,
                row.mean_solve_time,
                row.median_solve_time
            );
            rows.push(row);
        }
        println!();
    }
    println!(
        "paper's shape: DreamCoder >= every ablation on every domain; the gap is\n\
         largest for generative/structure-building domains; solve times are\n\
         seconds-scale for solved tasks (paper: mean 54.1s, median 15.0s at\n\
         20-100 CPUs — scaled down here)."
    );
    dc_bench::write_report(&format!("fig7_accuracy_panel_{panel}"), &rows);
}
