//! **E9 — Fig 9 reproduction.** Block-tower copy tasks: learn planning
//! macros ("options") like arches and walls, and show dreams before vs
//! after learning.

use std::collections::BTreeSet;
use std::sync::Arc;

use dc_grammar::grammar::Grammar;
use dc_grammar::sample::sample_program_with_retries;
use dc_tasks::domains::tower::{run_tower_program, Block, TowerDomain};
use dc_tasks::Domain;
use dc_wakesleep::{Condition, DreamCoder};
use rand::SeedableRng;
use serde::Serialize;

fn ascii(blocks: &BTreeSet<Block>) -> String {
    if blocks.is_empty() {
        return "(empty stage)\n".into();
    }
    let min_x = blocks.iter().map(|b| b.x).min().unwrap() - 1;
    let max_x = blocks.iter().map(|b| b.x + b.width()).max().unwrap() + 1;
    let max_y = blocks.iter().map(|b| b.y + b.height()).max().unwrap();
    let mut out = String::new();
    for y in (0..max_y).rev() {
        for x in min_x..max_x {
            let hit = blocks
                .iter()
                .any(|b| x >= b.x && x < b.x + b.width() && y >= b.y && y < b.y + b.height());
            out.push(if hit { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn dream_gallery(grammar: &Grammar, domain: &TowerDomain, seed: u64, n: usize) -> Vec<String> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let request = domain.dream_requests()[0].clone();
    let mut shown = Vec::new();
    let mut attempts = 0;
    while shown.len() < n && attempts < 300 {
        attempts += 1;
        let Some(p) = sample_program_with_retries(grammar, &request, &mut rng, 10, 10) else {
            continue;
        };
        let Ok(state) = run_tower_program(&p, 30_000) else {
            continue;
        };
        let blocks = state.block_set();
        if blocks.len() >= 2 {
            shown.push(format!("{p}\n{}", ascii(&blocks)));
        }
    }
    shown
}

#[derive(Debug, Serialize)]
struct Report {
    train_solved: usize,
    train_total: usize,
    test_solved: f64,
    inventions: Vec<String>,
}

fn main() {
    let domain = TowerDomain::new(0);
    println!(
        "== Fig 9: towers ({} train / {} test copy tasks) ==\n",
        domain.train_tasks().len(),
        domain.test_tasks().len()
    );

    let before = Grammar::uniform(Arc::clone(&domain.initial_library()));
    println!("--- dreams BEFORE learning ---");
    for d in dream_gallery(&before, &domain, 1, 2) {
        println!("{d}");
    }

    let mut config = dc_bench::bench_config(Condition::NoRecognition, 0);
    config.cycles = 3;
    config.minibatch = domain.train_tasks().len();
    config.enumeration.timeout = Some(std::time::Duration::from_millis(
        (2000.0 * dc_bench::scale()) as u64,
    ));
    let mut dc = DreamCoder::new(&domain, config);
    let summary = dc.run();

    println!("--- learned planning macros ---");
    for inv in &summary.library {
        println!("  {inv}");
    }
    if summary.library.is_empty() {
        println!("  (none at this budget; raise DC_BENCH_SCALE)");
    }

    println!("\n--- dreams AFTER learning ---");
    for d in dream_gallery(&dc.grammar, &domain, 2, 2) {
        println!("{d}");
    }

    let last = summary.cycles.last().unwrap();
    println!(
        "solved {}/{} train; test {:.0}%",
        last.train_solved,
        domain.train_tasks().len(),
        100.0 * last.test_solved
    );
    println!(
        "\npaper's shape: learned macros include arches/walls/bridges, and\n\
         post-learning dreams recombine them into novel towers."
    );
    dc_bench::write_report(
        "fig9_towers",
        &Report {
            train_solved: last.train_solved,
            train_total: domain.train_tasks().len(),
            test_solved: last.test_solved,
            inventions: summary.library.clone(),
        },
    );
}
