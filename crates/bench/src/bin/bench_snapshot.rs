//! `bench_snapshot` — the perf-trajectory benchmark.
//!
//! Runs four fixed workloads (enumeration, compression, dream sleep,
//! evaluation) with
//! deterministic budgets and emits a machine-readable snapshot
//! (`BENCH_<n>.json`) holding wall-clock numbers, throughput, and the
//! telemetry counters gathered while running. Successive PRs commit
//! successive snapshots, so the repo accumulates a perf trajectory that
//! CI (and reviewers) can diff.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin bench_snapshot             # full
//! cargo run --release -p dc-bench --bin bench_snapshot -- --smoke  # tiny
//! cargo run --release -p dc-bench --bin bench_snapshot -- \
//!     --out BENCH_2.json --baseline results/bench_baseline.json
//! ```
//!
//! `--baseline FILE` merges a previous snapshot in and adds
//! `speedup_vs_baseline` per workload (baseline wall / current wall).
//! The compression workload is additionally run with the worker cap
//! forced to one thread, so each snapshot also records the parallel
//! self-speedup on the machine that produced it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::Grammar;
use dc_grammar::library::Library;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::{tint, tlist, Type};
use dc_vspace::{compress, CompressionConfig};
use dc_wakesleep::{search_task, Guide};
use serde::Serialize;
use serde_json::Value;

#[derive(Debug, Clone, Serialize)]
struct WorkloadResult {
    wall_ms: f64,
    programs: Option<u64>,
    programs_per_sec: Option<f64>,
    inventions: Option<Vec<String>>,
    tasks_solved: Option<u64>,
    fantasies: Option<u64>,
    final_loss: Option<f64>,
    single_thread_wall_ms: Option<f64>,
    parallel_self_speedup: Option<f64>,
    speedup_vs_baseline: Option<f64>,
}

#[derive(Debug, Clone, Serialize)]
struct InstrumentationOverhead {
    disabled_wall_ms: f64,
    enabled_wall_ms: f64,
    overhead_ratio: f64,
}

#[derive(Debug, Serialize)]
struct Snapshot {
    schema: &'static str,
    mode: &'static str,
    threads: usize,
    instrumentation: InstrumentationOverhead,
    enumeration: WorkloadResult,
    compression: WorkloadResult,
    dream: WorkloadResult,
    eval: WorkloadResult,
    telemetry: Value,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The fixed enumeration workload: enumerate `int` and `list int -> int`
/// programs to a fixed description-length budget (no wall-clock timeout,
/// so the measured work is identical on every machine).
fn enumeration_workload(budget: f64) -> WorkloadResult {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(lib);
    let cfg = EnumerationConfig {
        budget_start: 6.0,
        budget_step: 1.5,
        max_budget: budget,
        max_depth: 16,
        timeout: None,
    };
    let started = Instant::now();
    let mut total = 0u64;
    for request in [tint(), Type::arrow(tlist(tint()), tint())] {
        total += enumerate_programs(&g, &request, &cfg, &mut |_, _| true) as u64;
    }
    let wall = started.elapsed();
    WorkloadResult {
        wall_ms: wall.as_secs_f64() * 1e3,
        programs: Some(total),
        programs_per_sec: Some(total as f64 / wall.as_secs_f64().max(1e-9)),
        inventions: None,
        tasks_solved: None,
        fantasies: None,
        final_loss: None,
        single_thread_wall_ms: None,
        parallel_self_speedup: None,
        speedup_vs_baseline: None,
    }
}

/// One timed pass of the enumeration workload body, returning wall ms.
fn timed_enumeration_pass(budget: f64) -> f64 {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(lib);
    let cfg = EnumerationConfig {
        budget_start: 6.0,
        budget_step: 1.5,
        max_budget: budget,
        max_depth: 16,
        timeout: None,
    };
    let started = Instant::now();
    for request in [tint(), Type::arrow(tlist(tint()), tint())] {
        enumerate_programs(&g, &request, &cfg, &mut |_, _| true);
    }
    started.elapsed().as_secs_f64() * 1e3
}

/// Measure the observability layer's cost on the enumeration hot path:
/// min-of-3 wall time with telemetry (counters, histograms, spans) fully
/// disabled versus enabled. Asserts the enabled run stays within the 5%
/// overhead budget of DESIGN.md §10. Must run before anything else turns
/// the global telemetry switch on — there is no public way to turn it
/// back off.
fn instrumentation_overhead(budget: f64) -> InstrumentationOverhead {
    assert!(
        !dc_telemetry::is_enabled(),
        "overhead check must run before telemetry is enabled"
    );
    let min3 = |sample: &dyn Fn() -> f64| (0..3).map(|_| sample()).fold(f64::INFINITY, f64::min);
    let disabled_wall_ms = min3(&|| timed_enumeration_pass(budget));
    dc_telemetry::enable();
    let enabled_wall_ms = min3(&|| timed_enumeration_pass(budget));
    let overhead_ratio = enabled_wall_ms / disabled_wall_ms.max(1e-9);
    assert!(
        overhead_ratio <= 1.05,
        "instrumentation overhead {overhead_ratio:.4}x exceeds the 5% budget \
         (disabled {disabled_wall_ms:.1} ms, enabled {enabled_wall_ms:.1} ms)"
    );
    InstrumentationOverhead {
        disabled_wall_ms,
        enabled_wall_ms,
        overhead_ratio,
    }
}

/// The fixed compression corpus: recursive list programs plus arithmetic
/// sharing a doubling motif — large enough that candidate scoring (the
/// hot loop) dominates.
fn compression_corpus() -> (Arc<Library>, Vec<Frontier>) {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(Arc::clone(&lib));
    let tl = Type::arrow(tlist(tint()), tlist(tint()));
    let ti = tint();
    let sources: Vec<(&str, &Type)> = vec![
        (
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
            &tl,
        ),
        (
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (- (car $0) 1) ($1 (cdr $0)))))) $0))",
            &tl,
        ),
        (
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (* (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
            &tl,
        ),
        (
            "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) 1) ($1 (cdr $0)))))) $0))",
            &tl,
        ),
        ("(+ 1 1)", &ti),
        ("(+ 0 0)", &ti),
        ("(* (+ 1 1) (+ 1 1))", &ti),
        ("(+ (+ 1 1) (+ 1 1))", &ti),
    ];
    let frontiers = sources
        .into_iter()
        .map(|(src, request)| {
            let e = Expr::parse(src, &prims).expect("workload program parses");
            let mut f = Frontier::new(request.clone());
            f.insert(
                FrontierEntry {
                    log_prior: g.log_prior(request, &e),
                    log_likelihood: 0.0,
                    expr: e,
                },
                5,
            );
            f
        })
        .collect();
    (lib, frontiers)
}

fn run_compression(cfg: &CompressionConfig) -> (f64, Vec<String>) {
    let (lib, frontiers) = compression_corpus();
    let started = Instant::now();
    let result = compress(&lib, &frontiers, cfg);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let names = result
        .steps
        .iter()
        .map(|s| s.invention.body.to_string())
        .collect();
    (wall_ms, names)
}

fn compression_workload(smoke: bool) -> WorkloadResult {
    let cfg = CompressionConfig {
        refactor_steps: 2,
        top_candidates: if smoke { 10 } else { 100 },
        max_inventions: if smoke { 1 } else { 3 },
        ..CompressionConfig::default()
    };
    let (wall_ms, inventions) = run_compression(&cfg);
    // Same workload with the worker cap forced to one thread: the ratio is
    // this machine's honest parallel self-speedup (~1.0 on a single core).
    rayon::set_max_threads(Some(1));
    let (single_ms, single_inventions) = run_compression(&cfg);
    rayon::set_max_threads(None);
    assert_eq!(
        inventions, single_inventions,
        "parallel and single-thread compression must accept identical inventions"
    );
    WorkloadResult {
        wall_ms,
        programs: None,
        programs_per_sec: None,
        inventions: Some(inventions),
        tasks_solved: None,
        fantasies: None,
        final_loss: None,
        single_thread_wall_ms: Some(single_ms),
        parallel_self_speedup: Some(single_ms / wall_ms.max(1e-9)),
        speedup_vs_baseline: None,
    }
}

fn run_dream(seed: u64, rcfg: &dc_wakesleep::RecognitionConfig) -> (f64, u64, f64) {
    use dc_recognition::{Objective, Parameterization, RecognitionModel};
    use dc_tasks::domains::list::ListDomain;
    use dc_tasks::Domain;
    use dc_wakesleep::dream_sleep;
    use rand::SeedableRng;
    let domain = ListDomain::new(0);
    let lib = domain.initial_library();
    let g = Grammar::uniform(Arc::clone(&lib));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut model = RecognitionModel::new(
        Arc::clone(&lib),
        domain.feature_dim(),
        rcfg.hidden_dim,
        Parameterization::Bigram,
        Objective::Map,
        rcfg.learning_rate,
        &mut rng,
    );
    let started = Instant::now();
    let stats = dream_sleep(&mut model, &domain, &g, &[], rcfg, &mut rng);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    (wall_ms, stats.fantasies as u64, stats.final_loss)
}

/// The fixed dream-sleep workload: fantasize and train on the list domain
/// with MAP fantasies bounded by nats (no wall clock in the work itself).
/// Run twice — parallel and capped to one thread — asserting the fantasy
/// count and final loss are bit-identical: the §9 determinism contract.
fn dream_workload(smoke: bool) -> WorkloadResult {
    let rcfg = dc_wakesleep::RecognitionConfig {
        fantasies: if smoke { 8 } else { 48 },
        epochs: if smoke { 2 } else { 8 },
        hidden_dim: 16,
        map_fantasies: true,
        map_fantasy_budget: Some(6.5),
        ..dc_wakesleep::RecognitionConfig::default()
    };
    let (wall_ms, fantasies, final_loss) = run_dream(17, &rcfg);
    rayon::set_max_threads(Some(1));
    let (single_ms, single_fantasies, single_loss) = run_dream(17, &rcfg);
    rayon::set_max_threads(None);
    assert_eq!(
        fantasies, single_fantasies,
        "parallel and single-thread dreams must fantasize identically"
    );
    assert_eq!(
        final_loss.to_bits(),
        single_loss.to_bits(),
        "parallel and single-thread dream training must converge identically"
    );
    WorkloadResult {
        wall_ms,
        programs: None,
        programs_per_sec: None,
        inventions: None,
        tasks_solved: None,
        fantasies: Some(fantasies),
        final_loss: Some(final_loss),
        single_thread_wall_ms: Some(single_ms),
        parallel_self_speedup: Some(single_ms / wall_ms.max(1e-9)),
        speedup_vs_baseline: None,
    }
}

/// The fixed evaluation workload: solve the list domain's test split with
/// a fixed enumeration timeout per task.
fn eval_workload(per_task: Duration) -> WorkloadResult {
    use dc_tasks::domains::list::ListDomain;
    use dc_tasks::Domain;
    let domain = ListDomain::new(0);
    let g = Grammar::uniform(Arc::clone(&domain.initial_library()));
    let cfg = EnumerationConfig {
        timeout: Some(per_task),
        ..EnumerationConfig::default()
    };
    let tasks = domain.test_tasks();
    let started = Instant::now();
    let solved = tasks
        .iter()
        .filter(|t| {
            !search_task(t, &Guide::Generative(g.clone()), &g, 3, &cfg)
                .frontier
                .is_empty()
        })
        .count();
    WorkloadResult {
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        programs: None,
        programs_per_sec: None,
        inventions: None,
        tasks_solved: Some(solved as u64),
        fantasies: None,
        final_loss: None,
        single_thread_wall_ms: None,
        parallel_self_speedup: None,
        speedup_vs_baseline: None,
    }
}

fn baseline_wall(baseline: &Value, workload: &str) -> Option<f64> {
    baseline.get(workload)?.get("wall_ms")?.as_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_5.json".to_owned());
    let baseline: Option<Value> = flag(&args, "--baseline").map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"))
    });
    eprintln!("[bench_snapshot] instrumentation overhead check...");
    let instrumentation = instrumentation_overhead(if smoke { 9.5 } else { 12.0 });
    eprintln!(
        "  disabled {:.1} ms, enabled {:.1} ms ({:.4}x, budget 1.05x)",
        instrumentation.disabled_wall_ms,
        instrumentation.enabled_wall_ms,
        instrumentation.overhead_ratio
    );
    dc_telemetry::enable();

    eprintln!("[bench_snapshot] enumeration workload...");
    let mut enumeration = enumeration_workload(if smoke { 10.0 } else { 13.5 });
    eprintln!(
        "  {:.0} ms, {} programs ({:.0}/s)",
        enumeration.wall_ms,
        enumeration.programs.unwrap_or(0),
        enumeration.programs_per_sec.unwrap_or(0.0)
    );

    eprintln!("[bench_snapshot] compression workload...");
    let mut compression = compression_workload(smoke);
    eprintln!(
        "  {:.0} ms, inventions: {:?}",
        compression.wall_ms, compression.inventions
    );

    eprintln!("[bench_snapshot] dream workload...");
    let mut dream = dream_workload(smoke);
    eprintln!(
        "  {:.0} ms ({:.0} ms single-thread), {} fantasies, final loss {:.4}",
        dream.wall_ms,
        dream.single_thread_wall_ms.unwrap_or(0.0),
        dream.fantasies.unwrap_or(0),
        dream.final_loss.unwrap_or(f64::NAN)
    );

    eprintln!("[bench_snapshot] eval workload...");
    let mut eval = eval_workload(Duration::from_millis(if smoke { 50 } else { 400 }));
    eprintln!(
        "  {:.0} ms, {} tasks solved",
        eval.wall_ms,
        eval.tasks_solved.unwrap_or(0)
    );

    if let Some(b) = &baseline {
        for (w, name) in [
            (&mut enumeration, "enumeration"),
            (&mut compression, "compression"),
            (&mut dream, "dream"),
            (&mut eval, "eval"),
        ] {
            if let Some(before) = baseline_wall(b, name) {
                w.speedup_vs_baseline = Some(before / w.wall_ms.max(1e-9));
            }
        }
    }

    let telemetry: Value =
        serde_json::from_str(&dc_telemetry::export_json()).expect("telemetry JSON");
    let snapshot = Snapshot {
        schema: "dc-bench-snapshot/1",
        mode: if smoke { "smoke" } else { "full" },
        threads: rayon::current_num_threads(),
        instrumentation,
        enumeration,
        compression,
        dream,
        eval,
        telemetry,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("[bench snapshot written to {out}]");
}
