//! **E11 — Fig 11A reproduction.** Learning a language for physical laws:
//! starting from sequence primitives + arithmetic, solve the 60-law
//! dataset and report both the solve rate and the mathematical vocabulary
//! (dot products, norms, inverse-square schemas) that abstraction sleep
//! invents, comparing DreamCoder against EC-style (no-refactoring)
//! compression.

use dc_tasks::domains::physics::PhysicsDomain;
use dc_tasks::Domain;
use dc_wakesleep::{Condition, DreamCoder};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Report {
    condition: String,
    solved: usize,
    total: usize,
    inventions: Vec<String>,
    example_solutions: Vec<(String, String)>,
}

fn main() {
    let domain = PhysicsDomain::new(0);
    let total = domain.train_tasks().len();
    println!("== Fig 11A: discovering a language for physics ({total} laws) ==\n");

    let mut reports = Vec::new();
    for condition in [Condition::NoRecognition, Condition::Ec] {
        let mut config = dc_bench::bench_config(condition, 0);
        config.cycles = 3;
        config.minibatch = total;
        config.enumeration.timeout = Some(std::time::Duration::from_millis(
            (1200.0 * dc_bench::scale()) as u64,
        ));
        config.compression.structure_penalty = 0.5;
        let mut dc = DreamCoder::new(&domain, config);
        let summary = dc.run();
        let solved = summary.cycles.last().unwrap().train_solved;
        println!(
            "{:<16} solved {}/{} laws ({:.1}%)",
            summary.condition,
            solved,
            total,
            100.0 * solved as f64 / total as f64
        );
        println!("  vocabulary:");
        for inv in &summary.library {
            println!("    {inv}");
        }
        if summary.library.is_empty() {
            println!("    (none at this budget)");
        }
        let mut examples = Vec::new();
        let mut idxs: Vec<&usize> = dc.frontiers.keys().collect();
        idxs.sort();
        for idx in idxs.into_iter().take(6) {
            if let Some(best) = dc.frontiers[idx].best() {
                let name = domain.train_tasks()[*idx].name.clone();
                println!("    {:<32} {}", name, best.expr);
                examples.push((name, best.expr.to_string()));
            }
        }
        println!();
        reports.push(Report {
            condition: summary.condition.clone(),
            solved,
            total,
            inventions: summary.library.clone(),
            example_solutions: examples,
        });
    }
    println!(
        "paper's shape: DreamCoder solves 93.3% (best of 5) / 84.3% (mean) of\n\
         the laws and invents vector-algebra building blocks first (inner\n\
         products, norms), then physics schemas (inverse-square); EC trails\n\
         slightly (86.6% best / 81.1% mean). Expect lower absolute rates at\n\
         laptop budgets but the same ordering."
    );
    dc_bench::write_report("fig11_physics", &reports);
}
