//! **E12 — Fig 11B reproduction.** Origami programming: bootstrap
//! functional programming from the 1959-Lisp basis plus the fixed-point
//! combinator, with no recognition model (as in the paper).
//!
//! The paper's run took ~5 days on 64 CPUs; the raw wake-phase search for
//! the first 14-node `fix` programs is far beyond a single-CPU budget, so
//! this bench *seeds* the first wake phase with solutions to six easy
//! tasks (standing in for that multi-day search) and then reproduces the
//! figure's actual claim: **abstraction sleep refactors those solutions
//! into fold-family recursion schemes, and the learned library brings the
//! remaining tasks into reach of a seconds-scale search** — while
//! EC-style (no-refactoring) compression does not.

use std::sync::Arc;

use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::Grammar;
use dc_lambda::expr::Expr;
use dc_tasks::domains::origami::OrigamiDomain;
use dc_tasks::Domain;
use dc_wakesleep::{search_task, Condition, Guide};
use serde::Serialize;

/// Ground-truth seed solutions, as the multi-day wake phase would find.
const SEEDS: &[(&str, &str)] = &[
    (
        "length",
        "(lambda (fix (lambda (lambda (if (is-nil $0) 0 (+ 1 ($1 (cdr $0)))))) $0))",
    ),
    (
        "sum",
        "(lambda (fix (lambda (lambda (if (is-nil $0) 0 (+ (car $0) ($1 (cdr $0)))))) $0))",
    ),
    (
        "increment each",
        "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) 1) ($1 (cdr $0)))))) $0))",
    ),
    (
        "double each",
        "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
    ),
    (
        "append zero",
        "(lambda (fix (lambda (lambda (if (is-nil $0) (cons 0 nil) (cons (car $0) ($1 (cdr $0)))))) $0))",
    ),
    (
        "count positives",
        "(lambda (fix (lambda (lambda (if (is-nil $0) 0 (if (> (car $0) 0) (+ 1 ($1 (cdr $0))) ($1 (cdr $0)))))) $0))",
    ),
    // unfold-family seeds: lists *generated* from a seed value, the dual
    // recursion scheme the paper reports discovering second.
    (
        "count down from head",
        "(lambda (fix (lambda (lambda (if (= $0 0) nil (cons $0 ($1 (- $0 1)))))) (car $0)))",
    ),
];

#[derive(Debug, Serialize)]
struct Report {
    condition: String,
    inventions: Vec<String>,
    fix_wrapping_inventions: usize,
    newly_solved_after_learning: Vec<String>,
    newly_solved_count: usize,
}

fn main() {
    let domain = OrigamiDomain::new(0);
    let prims = domain.primitives();
    println!(
        "== Fig 11B: origami — bootstrapping from 1959 Lisp ({} tasks) ==\n",
        domain.train_tasks().len()
    );
    println!(
        "(wake phase seeded with {} known fix-solutions — the paper spent\n\
         ~5 days x 64 CPUs on this search; see EXPERIMENTS.md)\n",
        SEEDS.len()
    );

    let library = domain.initial_library();
    let g0 = Grammar::uniform(Arc::clone(&library));
    let frontiers: Vec<Frontier> = SEEDS
        .iter()
        .map(|(name, src)| {
            let task = domain
                .train_tasks()
                .iter()
                .find(|t| t.name == *name)
                .unwrap_or_else(|| panic!("missing task {name}"));
            let e = Expr::parse(src, prims).unwrap();
            assert!(task.check(&e), "seed for {name} is wrong");
            let mut f = Frontier::new(task.request.clone());
            f.insert(
                FrontierEntry {
                    log_prior: g0.log_prior(&task.request, &e),
                    log_likelihood: 0.0,
                    expr: e,
                },
                5,
            );
            f
        })
        .collect();

    let mut reports = Vec::new();
    for condition in [Condition::NoRecognition, Condition::Ec] {
        let cfg = dc_vspace::CompressionConfig {
            refactor_steps: if condition == Condition::Ec { 0 } else { 2 },
            top_candidates: 150,
            structure_penalty: 0.5,
            max_inventions: 4,
            ..dc_vspace::CompressionConfig::default()
        };
        let result = dc_wakesleep::abstraction_sleep(&library, &frontiers, &cfg, condition);
        let inventions: Vec<String> = result
            .steps
            .iter()
            .map(|s| s.invention.name.clone())
            .collect();
        let fix_wrappers = inventions.iter().filter(|i| i.contains("fix")).count();
        println!(
            "{:<16} invented {} routines ({} wrap fix):",
            condition.label(),
            inventions.len(),
            fix_wrappers
        );
        for inv in &inventions {
            println!("    {inv}");
        }

        // Can the learned library now solve *unseeded* tasks in seconds?
        let grammar = result.grammar.clone();
        let seeded: Vec<&str> = SEEDS.iter().map(|(n, _)| *n).collect();
        let search = dc_grammar::enumeration::EnumerationConfig {
            timeout: Some(std::time::Duration::from_millis(
                (2000.0 * dc_bench::scale()) as u64,
            )),
            ..dc_grammar::enumeration::EnumerationConfig::default()
        };
        let mut newly_solved = Vec::new();
        for task in domain.train_tasks() {
            if seeded.contains(&task.name.as_str()) {
                continue;
            }
            let r = search_task(
                task,
                &Guide::Generative(grammar.clone()),
                &grammar,
                1,
                &search,
            );
            if let Some(best) = r.frontier.best() {
                newly_solved.push(format!("{} := {}", task.name, best.expr));
            }
        }
        println!(
            "  with this library, {}/{} unseeded tasks become solvable in {}ms:",
            newly_solved.len(),
            domain.train_tasks().len() - seeded.len(),
            (2000.0 * dc_bench::scale()) as u64,
        );
        for s in &newly_solved {
            println!("    {s}");
        }
        println!();
        reports.push(Report {
            condition: condition.label().to_owned(),
            inventions,
            fix_wrapping_inventions: fix_wrappers,
            newly_solved_count: newly_solved.len(),
            newly_solved_after_learning: newly_solved,
        });
    }

    if reports.len() == 2 {
        println!(
            "shape check: DreamCoder invents {} fix-wrapping recursion schemes \
             and unlocks {} new tasks; EC invents {} and unlocks {}.",
            reports[0].fix_wrapping_inventions,
            reports[0].newly_solved_count,
            reports[1].fix_wrapping_inventions,
            reports[1].newly_solved_count
        );
    }
    println!(
        "\npaper's shape: DreamCoder retraces 'origami programming' — the \
         fold-family skeleton first, then other routines as variations; EC's \
         subtree-only compression cannot expose the shared recursion scheme."
    );
    dc_bench::write_report("fig11_origami", &reports);
}
