//! **E2/E3 — Fig 2 & Fig 4/5 reproduction.** Two different recursive
//! list programs (double-every-element and decrement-every-element,
//! written with the fixed-point combinator) share almost no surface
//! structure; inverse-β refactoring exposes the common `map` skeleton,
//! which compression extracts. Also reports the E-graph economics: how
//! many refactorings the version space represents vs how many nodes it
//! holds (the paper's "10^14 refactorings in a graph of 10^6 nodes").

use std::sync::Arc;
use std::time::Instant;

use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::Grammar;
use dc_grammar::library::Library;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::{tint, tlist, Type};
use dc_vspace::{compress, CompressionConfig, SpaceArena};

fn main() {
    let prims = base_primitives();
    let double_all = "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))";
    let decrement_all = "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (- (car $0) 1) ($1 (cdr $0)))))) $0))";
    let t = Type::arrow(tlist(tint()), tlist(tint()));

    println!("== Fig 2: refactoring two recursive programs exposes map ==\n");
    println!("program A (double every element):\n  {double_all}");
    println!("program B (decrement every element):\n  {decrement_all}\n");

    // E3: version-space economics per program.
    println!(
        "{:<10} {:>6} {:>12} {:>22} {:>12}",
        "steps n", "size", "nodes", "refactorings", "time"
    );
    for n in 1..=3 {
        let e = Expr::parse(double_all, &prims).unwrap();
        let mut arena = SpaceArena::new();
        let started = Instant::now();
        let space = arena.refactor(&e, n);
        let elapsed = started.elapsed();
        let count = arena.extension_count(space, 1e30);
        println!(
            "{:<10} {:>6} {:>12} {:>22.3e} {:>10.1?}",
            n,
            e.size(),
            arena.len(),
            count,
            elapsed
        );
    }

    // E2: compression extracts the shared skeleton.
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(Arc::clone(&lib));
    let frontiers: Vec<Frontier> = [double_all, decrement_all]
        .iter()
        .map(|src| {
            let e = Expr::parse(src, &prims).unwrap();
            let mut f = Frontier::new(t.clone());
            f.insert(
                FrontierEntry {
                    log_prior: g.log_prior(&t, &e),
                    log_likelihood: 0.0,
                    expr: e,
                },
                5,
            );
            f
        })
        .collect();
    // n = 2 suffices to expose the map skeleton (inner redex + outer
    // abstraction) and runs in seconds; the n = 3 space statistics above
    // show the paper-default cost envelope.
    let cfg = CompressionConfig {
        refactor_steps: 2,
        top_candidates: 150,
        max_inventions: 2,
        ..CompressionConfig::default()
    };
    let started = Instant::now();
    let result = compress(&lib, &frontiers, &cfg);
    println!("\ncompression took {:.1?}", started.elapsed());
    if result.steps.is_empty() {
        println!("no invention found (unexpected — see the dc-vspace tests)");
    }
    for step in &result.steps {
        println!(
            "invented: {}\n  objective {:.2} -> {:.2}",
            step.invention.name, step.score_before, step.score_after
        );
    }
    println!("\nrewritten programs:");
    for (f, label) in result.frontiers.iter().zip(["A", "B"]) {
        let e = &f.entries[0].expr;
        println!("  {label}: {e}  (size {} vs original {})", e.size(), {
            let orig = if label == "A" {
                double_all
            } else {
                decrement_all
            };
            Expr::parse(orig, &prims).unwrap().size()
        });
    }

    let report: Vec<(String, f64, f64)> = result
        .steps
        .iter()
        .map(|s| (s.invention.name.clone(), s.score_before, s.score_after))
        .collect();
    dc_bench::write_report("fig2_refactor_map", &report);
}
