//! **E1 — Fig 1B reproduction.** The headline qualitative claim: after
//! library learning, hard tasks have short solutions in the learned
//! language whose base-language equivalents are so long that brute-force
//! enumeration would take astronomically long to find them.
//!
//! We reproduce the *shape* with the paper's own example structure: a
//! hierarchy `filter -> maximum -> nth-largest -> sort` expressed over
//! the learned/invented routines, re-expressed in base primitives, with a
//! measured-enumeration-rate extrapolation of brute-force search cost
//! (the paper reports 32 calls and "in excess of 10^72 years").

use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dc_grammar::grammar::Grammar;
use dc_grammar::library::Library;
use dc_lambda::eval::{run_program, Value};
use dc_lambda::expr::{Expr, Invented};
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::{tint, tlist, Type};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Report {
    sort_in_library_size: usize,
    sort_in_base_size: usize,
    base_calls: usize,
    measured_programs_per_second: f64,
    estimated_brute_force_years: f64,
}

fn main() {
    let prims = base_primitives();

    // The learned hierarchy of Fig 1B, built bottom-up. Each layer calls
    // the ones before it (filter -> maximum -> nth largest -> sort).
    let filter_body = Expr::parse(
        "(lambda (lambda (fold $0 nil (lambda (lambda (if ($3 $1) (cons $1 $0) $0))))))",
        &prims,
    )
    .unwrap();
    let filter = Invented::new("#filter", filter_body).unwrap();

    let mut set = base_primitives();
    set.add_invented(Arc::clone(&filter));
    let maximum_body = Expr::parse(
        "(lambda (fold $0 0 (lambda (lambda (if (> $1 $0) $1 $0)))))",
        &set,
    )
    .unwrap();
    let maximum = Invented::new("#maximum", maximum_body).unwrap();
    set.add_invented(Arc::clone(&maximum));

    // nth-largest n xs = maximum of xs with the (n-1) larger items removed:
    // implemented as: repeatedly take maximum of (filter (> max) xs).
    let nth_largest_body = Expr::parse(
        "(lambda (fix (lambda (lambda (lambda (if (= $1 0) (#maximum $0) ($2 (- $1 1) (#filter (lambda (> (#maximum $1) $0)) $0)))))) $0))",
        &set,
    )
    .unwrap();
    let nth_largest = Invented::new("#nth-largest", nth_largest_body).unwrap();
    set.add_invented(Arc::clone(&nth_largest));

    // sort xs = map (λi. (nth-largest i xs)) over [n-1 .. 0] — ascending.
    let sort_body = Expr::parse(
        "(lambda (map (lambda (#nth-largest $0 $1)) (fix (lambda (lambda (if (= $0 0) nil (cons (- $0 1) ($1 (- $0 1)))))) (length $0))))",
        &set,
    )
    .unwrap();
    let sort = Invented::new("#sort", sort_body).unwrap();

    // Check the program actually sorts.
    let sort_expr = Expr::Invented(Arc::clone(&sort));
    let input = Value::list(vec![
        Value::Int(3),
        Value::Int(9),
        Value::Int(1),
        Value::Int(7),
    ]);
    let out = run_program(&sort_expr, &[input], 2_000_000).expect("sort runs");
    println!("== Fig 1B: 'Sort List' through the learned hierarchy ==\n");
    println!("sort [3,9,1,7] = {out:?} (ascending: index i maps to the\n  (n-1-i)-th largest)\n");
    assert_eq!(
        out,
        Value::list(vec![
            Value::Int(1),
            Value::Int(3),
            Value::Int(7),
            Value::Int(9)
        ])
    );

    let in_library = sort.body.size();
    let expanded = sort.body.strip_inventions();
    let in_base = expanded.size();
    let base_calls = expanded
        .subexpressions()
        .iter()
        .filter(|e| matches!(e, Expr::Application(_, _)))
        .count();
    println!("solution size in the learned library : {in_library} nodes");
    println!("re-expressed in base primitives      : {in_base} nodes ({base_calls} calls)");

    // Measure this machine's enumeration rate on the same type, then
    // extrapolate brute force to the base-form description length.
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(Arc::clone(&lib));
    let request = Type::arrow(tlist(tint()), tlist(tint()));
    let started = Instant::now();
    let mut count = 0usize;
    let cfg = EnumerationConfig {
        timeout: Some(Duration::from_secs(3)),
        ..EnumerationConfig::default()
    };
    enumerate_programs(&g, &request, &cfg, &mut |_, _| {
        count += 1;
        true
    });
    let rate = count as f64 / started.elapsed().as_secs_f64();
    // Description length of the base-form solution under the uniform
    // grammar ≈ size × ln(#choices per node).
    let choices = lib.len() as f64;
    let nats = in_base as f64 * choices.ln() * 0.5; // calls dominate; conservative
    let programs_needed = nats.exp();
    let years = programs_needed / rate / (3600.0 * 24.0 * 365.0);
    println!("\nmeasured enumeration rate: {rate:.0} programs/sec");
    println!("estimated brute-force time for the base-language form: {years:.2e} years");
    println!(
        "\npaper's shape: the learned-library solution is found in minutes while\n\
         the base-language equivalent (32 calls) would take >10^72 years of\n\
         brute-force search."
    );

    dc_bench::write_report(
        "fig1_sort_list",
        &Report {
            sort_in_library_size: in_library,
            sort_in_base_size: in_base,
            base_calls,
            measured_programs_per_second: rate,
            estimated_brute_force_years: years,
        },
    );
}
