//! **E7 — Fig 7C-D reproduction.** How library structure evolves over
//! wake/sleep cycles, with and without the recognition model: per-cycle
//! (depth, size, % solved) points and the depth-vs-performance /
//! size-vs-performance correlations.

use dc_tasks::domains::list::ListDomain;
use dc_tasks::domains::text::TextDomain;
use dc_tasks::Domain;
use dc_wakesleep::{Condition, DreamCoder};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    domain: String,
    condition: String,
    cycle: usize,
    depth: usize,
    size: usize,
    test_solved: f64,
}

fn main() {
    let domains: Vec<Box<dyn Domain>> =
        vec![Box::new(ListDomain::new(0)), Box::new(TextDomain::new(0))];
    let mut points: Vec<Point> = Vec::new();
    for domain in &domains {
        for condition in [Condition::Full, Condition::NoRecognition] {
            for seed in 0..1 {
                let mut config = dc_bench::bench_config(condition, seed);
                config.cycles = 4;
                let mut dc = DreamCoder::new(domain.as_ref(), config);
                let summary = dc.run();
                for c in &summary.cycles {
                    points.push(Point {
                        domain: domain.name().to_owned(),
                        condition: condition.label().to_owned(),
                        cycle: c.cycle,
                        depth: c.library_depth,
                        size: c.library_size,
                        test_solved: c.test_solved,
                    });
                }
            }
        }
    }

    println!("== Fig 7C-D: library structure vs performance ==\n");
    println!(
        "{:<6} {:<16} {:>5} {:>6} {:>5} {:>8}",
        "domain", "condition", "cycle", "depth", "size", "solved"
    );
    for p in &points {
        println!(
            "{:<6} {:<16} {:>5} {:>6} {:>5} {:>7.1}%",
            p.domain,
            p.condition,
            p.cycle,
            p.depth,
            p.size,
            100.0 * p.test_solved
        );
    }

    let depths: Vec<f64> = points.iter().map(|p| p.depth as f64).collect();
    let sizes: Vec<f64> = points.iter().map(|p| p.size as f64).collect();
    let solved: Vec<f64> = points.iter().map(|p| p.test_solved).collect();
    let r_depth = dc_bench::pearson(&depths, &solved);
    let r_size = dc_bench::pearson(&sizes, &solved);
    println!("\ncorrelation(depth, solved)  r = {r_depth:.2}   (paper: r = 0.79)");
    println!("correlation(size,  solved)  r = {r_size:.2}   (paper: similar but weaker)");

    // Recognition vs not: final accuracy at comparable depth.
    for condition in ["DreamCoder", "No Recognition"] {
        let acc: Vec<f64> = points
            .iter()
            .filter(|p| p.condition == condition)
            .map(|p| p.test_solved)
            .collect();
        if !acc.is_empty() {
            println!(
                "{condition:<16} mean solved over cycles: {:.1}%",
                100.0 * acc.iter().sum::<f64>() / acc.len() as f64
            );
        }
    }
    dc_bench::write_report("fig7_library_structure", &points);
}
