//! **E14 — the "batching buys 6×" claim (§5).** DreamCoder minibatches
//! tasks during waking where EC2 solved every task every wake. Compare
//! cumulative train-tasks-solved per unit of total search time under a
//! minibatched vs full-batch wake with the same per-task budget.

use std::time::{Duration, Instant};

use dc_tasks::domains::list::ListDomain;
use dc_tasks::Domain;
use dc_wakesleep::{Condition, DreamCoder};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    regime: String,
    cycles: usize,
    total_seconds: f64,
    train_solved: usize,
    inventions: usize,
}

fn main() {
    let domain = ListDomain::new(0);
    let per_task = Duration::from_millis((400.0 * dc_bench::scale()) as u64);
    println!("== batching: minibatched vs full-batch waking ==\n");
    let mut rows = Vec::new();
    for (regime, minibatch, cycles) in [
        ("minibatch (12)", 12usize, 4usize),
        ("full batch", usize::MAX, 2),
    ] {
        let mut config = dc_bench::bench_config(Condition::NoRecognition, 0);
        config.minibatch = minibatch.min(domain.train_tasks().len());
        config.cycles = cycles;
        config.enumeration.timeout = Some(per_task);
        config.test_enumeration.timeout = Some(Duration::from_millis(1));
        let started = Instant::now();
        let mut dc = DreamCoder::new(&domain, config);
        let summary = dc.run();
        let secs = started.elapsed().as_secs_f64();
        let solved = summary.cycles.last().unwrap().train_solved;
        println!(
            "{regime:<16} {cycles} cycles, {secs:>6.1}s total, solved {solved}, {} inventions",
            summary.library.len()
        );
        rows.push(Row {
            regime: regime.to_owned(),
            cycles,
            total_seconds: secs,
            train_solved: solved,
            inventions: summary.library.len(),
        });
    }
    if rows.len() == 2 {
        let eff0 = rows[0].train_solved as f64 / rows[0].total_seconds;
        let eff1 = rows[1].train_solved as f64 / rows[1].total_seconds;
        println!(
            "\nsolved-per-second: minibatch {eff0:.3} vs full-batch {eff1:.3} \
             (paper reports ~6x compute savings on list/text, 15x on symbolic \
             regression, from minibatching)"
        );
    }
    dc_bench::write_report("tbl_batching", &rows);
}
