//! **E10 — Fig 10 reproduction.** Held-out generative text concepts:
//! infer the MAP probabilistic regex from 5 example strings and imagine
//! new samples, comparing the full system against its two ablations.
//! Also reports the Fig 7A metric for this domain: posterior-predictive
//! log-likelihood per character of held-out strings.

use std::time::Duration;

use dc_grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dc_grammar::grammar::Grammar;
use dc_lambda::expr::Expr;
use dc_tasks::domains::regex::{concepts, run_regex_program, RegexDomain};
use dc_tasks::Domain;
use dc_wakesleep::{Condition, DreamCoder};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ConceptResult {
    concept: String,
    condition: String,
    map_program: Option<String>,
    samples: Vec<String>,
    held_out_ll_per_char: f64,
}

/// Search for the MAP regex for a task under a grammar.
fn map_regex(grammar: &Grammar, task: &dc_tasks::Task, timeout: Duration) -> Option<(Expr, f64)> {
    let cfg = EnumerationConfig {
        timeout: Some(timeout),
        ..EnumerationConfig::default()
    };
    let mut best: Option<(Expr, f64)> = None;
    enumerate_programs(grammar, &task.request, &cfg, &mut |e, prior| {
        let ll = task.oracle.log_likelihood(&e);
        if ll.is_finite() {
            let post = ll + prior;
            if best.as_ref().is_none_or(|(_, b)| post > *b) {
                best = Some((e, post));
            }
        }
        true
    });
    best
}

fn main() {
    let domain = RegexDomain::new(0);
    let search_time = Duration::from_millis((1500.0 * dc_bench::scale()) as u64);

    // Train the three conditions briefly on the training concepts.
    let mut grammars: Vec<(String, Grammar)> = Vec::new();
    for condition in [
        Condition::Full,
        Condition::NoCompression,
        Condition::NoRecognition,
    ] {
        let mut config = dc_bench::bench_config(condition, 0);
        config.cycles = 2;
        config.minibatch = domain.train_tasks().len();
        let mut dc = DreamCoder::new(&domain, config);
        let _ = dc.run();
        grammars.push((condition.label().to_owned(), dc.grammar.clone()));
    }

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut results = Vec::new();
    println!("== Fig 10: held-out generative text concepts ==");
    for task in domain.test_tasks().iter().take(3) {
        println!("\nconcept {:?}; observed:", task.name);
        for ex in &task.examples {
            println!("    {:?}", ex.output);
        }
        // Fresh held-out strings from the true concept for the predictive
        // likelihood metric.
        let true_regex = concepts()
            .into_iter()
            .find(|(n, _)| *n == task.name)
            .map(|(_, r)| r)
            .expect("known concept");
        let held_out: Vec<String> = (0..5)
            .filter_map(|_| {
                let mut s = String::new();
                let mut budget = 30;
                true_regex.sample(&mut rng, &mut s, &mut budget);
                (!s.is_empty()).then_some(s)
            })
            .collect();

        for (label, grammar) in &grammars {
            let found = map_regex(grammar, task, search_time);
            match found {
                Some((program, _)) => {
                    let regex = run_regex_program(&program, 20_000).expect("runs");
                    let mut samples = Vec::new();
                    for _ in 0..2 {
                        let mut s = String::new();
                        let mut budget = 30;
                        regex.sample(&mut rng, &mut s, &mut budget);
                        samples.push(s);
                    }
                    let chars: usize = held_out
                        .iter()
                        .map(|s| s.chars().count())
                        .sum::<usize>()
                        .max(1);
                    let ll: f64 = held_out.iter().map(|s| regex.log_prob(s)).sum();
                    let per_char = ll / chars as f64;
                    println!(
                        "  {label:<16} MAP: {:<22} samples: {:?}  held-out ll/char {per_char:.2}",
                        regex.display(),
                        samples
                    );
                    results.push(ConceptResult {
                        concept: task.name.clone(),
                        condition: label.clone(),
                        map_program: Some(regex.display()),
                        samples,
                        held_out_ll_per_char: per_char,
                    });
                }
                None => {
                    println!("  {label:<16} (no regex found)");
                    results.push(ConceptResult {
                        concept: task.name.clone(),
                        condition: label.clone(),
                        map_program: None,
                        samples: vec![],
                        held_out_ll_per_char: f64::NEG_INFINITY,
                    });
                }
            }
        }
    }
    println!(
        "\npaper's shape: the full system recovers clean concept structure\n\
         ((ddd) ddd-dddd for phone numbers, $d.d0 for prices) while the\n\
         ablations produce noisier or overly generic patterns."
    );
    dc_bench::write_report("fig10_regex", &results);
}
