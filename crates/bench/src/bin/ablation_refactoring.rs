//! **Ablation: how much refactoring does compression need?** Sweep the
//! inverse-β step bound `n` (the paper fixes n = 3) on a fixed corpus of
//! recursive list programs and report what gets invented, how much the
//! corpus shrinks, and what it costs. `n = 0` is the EC-style
//! subtree-only regime; `n ≥ 2` unlocks the map-style rewrites of Fig 2.

use std::sync::Arc;
use std::time::Instant;

use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::Grammar;
use dc_grammar::library::Library;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::{tint, tlist, Type};
use dc_vspace::{compress, CompressionConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    refactor_steps: usize,
    inventions: Vec<String>,
    corpus_nodes_before: usize,
    corpus_nodes_after: usize,
    seconds: f64,
}

fn main() {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(Arc::clone(&lib));
    let t = Type::arrow(tlist(tint()), tlist(tint()));
    // Four recursive programs sharing the map/filter skeletons only up to
    // refactoring.
    let sources = [
        "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
        "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (- (car $0) 1) ($1 (cdr $0)))))) $0))",
        "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (* (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
        "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) 1) ($1 (cdr $0)))))) $0))",
    ];
    let frontiers: Vec<Frontier> = sources
        .iter()
        .map(|src| {
            let e = Expr::parse(src, &prims).unwrap();
            let mut f = Frontier::new(t.clone());
            f.insert(
                FrontierEntry {
                    log_prior: g.log_prior(&t, &e),
                    log_likelihood: 0.0,
                    expr: e,
                },
                5,
            );
            f
        })
        .collect();
    let before: usize = frontiers.iter().map(|f| f.entries[0].expr.size()).sum();

    println!("== ablation: inverse-beta step bound n ==\n");
    println!(
        "{:<4} {:>10} {:>12} {:>10}   inventions",
        "n", "time", "corpus size", "reduction"
    );
    let mut rows = Vec::new();
    for n in 0..=3usize {
        let cfg = CompressionConfig {
            refactor_steps: n,
            top_candidates: if n >= 3 { 60 } else { 150 },
            max_inventions: 2,
            ..CompressionConfig::default()
        };
        let started = Instant::now();
        let result = compress(&lib, &frontiers, &cfg);
        let secs = started.elapsed().as_secs_f64();
        let after: usize = result
            .frontiers
            .iter()
            .map(|f| f.entries[0].expr.size())
            .sum();
        let names: Vec<String> = result
            .steps
            .iter()
            .map(|s| s.invention.name.clone())
            .collect();
        println!(
            "{:<4} {:>9.2}s {:>7} -> {:>3} {:>9.0}%   {}",
            n,
            secs,
            before,
            after,
            100.0 * (before - after) as f64 / before as f64,
            if names.is_empty() {
                "(none)".to_owned()
            } else {
                names.join("  ")
            }
        );
        rows.push(Row {
            refactor_steps: n,
            inventions: names,
            corpus_nodes_before: before,
            corpus_nodes_after: after,
            seconds: secs,
        });
    }
    println!(
        "\nexpected shape: n = 0 (EC-style) finds nothing on this corpus; \
         n >= 2 invents the map skeleton and cuts the corpus roughly 3x; \
         n = 3 (the paper's default) costs the most and adds little here."
    );
    dc_bench::write_report("ablation_refactoring", &rows);
}
