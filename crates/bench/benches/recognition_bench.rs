//! Criterion: recognition model forward pass and training step — the
//! paper's design point is that prediction runs once per task, so it must
//! be cheap relative to search.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_grammar::library::Library;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::tint;
use dc_recognition::{Objective, Parameterization, RecognitionModel, TrainingExample};
use rand::SeedableRng;
use std::sync::Arc;

fn bench_recognition(c: &mut Criterion) {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
    let model = RecognitionModel::new(
        Arc::clone(&lib),
        64,
        32,
        Parameterization::Bigram,
        Objective::Map,
        0.01,
        &mut rng,
    );
    let features = vec![0.1; 64];
    c.bench_function("recognition_predict", |b| {
        b.iter(|| model.predict(&features))
    });

    let example = TrainingExample {
        features: features.clone(),
        request: tint(),
        programs: vec![(Expr::parse("(+ 1 (+ 1 1))", &prims).unwrap(), 1.0)],
    };
    c.bench_function("recognition_train_step", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| m.train_step(&example),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_recognition
}
criterion_main!(benches);
