//! Criterion: the fuel-limited evaluator (every enumerated candidate is
//! checked against task examples, so this dominates oracle time).

use criterion::{criterion_group, criterion_main, Criterion};
use dc_lambda::eval::{run_program, Value};
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;

fn bench_eval(c: &mut Criterion) {
    let prims = base_primitives();
    let map_prog = Expr::parse("(lambda (map (lambda (+ $0 $0)) $0))", &prims).unwrap();
    let fix_prog = Expr::parse(
        "(lambda (fix (lambda (lambda (if (is-nil $0) 0 (+ (car $0) ($1 (cdr $0)))))) $0))",
        &prims,
    )
    .unwrap();
    let input = Value::list((0..20).map(Value::Int).collect());
    c.bench_function("eval_map_20", |b| {
        b.iter(|| run_program(&map_prog, std::slice::from_ref(&input), 100_000).unwrap())
    });
    c.bench_function("eval_fix_sum_20", |b| {
        b.iter(|| run_program(&fix_prog, std::slice::from_ref(&input), 100_000).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_eval
}
criterion_main!(benches);
