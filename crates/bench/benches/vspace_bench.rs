//! Criterion: version-space inversion scaling (`Iβn`, Fig 5 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_vspace::SpaceArena;

fn bench_refactor(c: &mut Criterion) {
    let prims = base_primitives();
    let small = Expr::parse("(+ (+ 1 1) (+ 1 1))", &prims).unwrap();
    let recursive = Expr::parse(
        "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
        &prims,
    ).unwrap();
    let mut group = c.benchmark_group("refactor");
    for n in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("small", n), &n, |b, &n| {
            b.iter(|| {
                let mut arena = SpaceArena::new();
                arena.refactor(&small, n)
            })
        });
    }
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("recursive32", n), &n, |b, &n| {
            b.iter(|| {
                let mut arena = SpaceArena::new();
                arena.refactor(&recursive, n)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_refactor
}
criterion_main!(benches);
