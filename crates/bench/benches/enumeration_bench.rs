//! Criterion: typed enumeration throughput (the wake-phase hot loop).

use criterion::{criterion_group, criterion_main, Criterion};
use dc_grammar::enumeration::{enumerate_programs, EnumerationConfig};
use dc_grammar::grammar::{ContextualGrammar, Grammar};
use dc_grammar::library::Library;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::{tint, tlist, Type};
use std::sync::Arc;

fn bench_enumeration(c: &mut Criterion) {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let unigram = Grammar::uniform(Arc::clone(&lib));
    let bigram = ContextualGrammar::uniform(Arc::clone(&lib));
    let request = Type::arrow(tlist(tint()), tint());
    let cfg = EnumerationConfig {
        budget_start: 9.0,
        budget_step: 1.0,
        max_budget: 9.0,
        ..Default::default()
    };

    c.bench_function("enumerate_unigram_9nats", |b| {
        b.iter(|| {
            let mut n = 0usize;
            enumerate_programs(&unigram, &request, &cfg, &mut |_, _| {
                n += 1;
                true
            });
            n
        })
    });
    c.bench_function("enumerate_bigram_9nats", |b| {
        b.iter(|| {
            let mut n = 0usize;
            enumerate_programs(&bigram, &request, &cfg, &mut |_, _| {
                n += 1;
                true
            });
            n
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_enumeration
}
criterion_main!(benches);
