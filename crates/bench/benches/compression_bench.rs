//! Criterion: one full abstraction-sleep step (propose + score + rewrite).

use criterion::{criterion_group, criterion_main, Criterion};
use dc_grammar::frontier::{Frontier, FrontierEntry};
use dc_grammar::grammar::Grammar;
use dc_grammar::library::Library;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::base_primitives;
use dc_lambda::types::{tint, tlist, Type};
use dc_vspace::{compress, CompressionConfig};
use std::sync::Arc;

fn bench_compress(c: &mut Criterion) {
    let prims = base_primitives();
    let lib = Arc::new(Library::from_primitives(prims.iter().cloned()));
    let g = Grammar::uniform(Arc::clone(&lib));
    let t = Type::arrow(tlist(tint()), tlist(tint()));
    let sources = [
        "(lambda (map (lambda (+ $0 1)) $0))",
        "(lambda (map (lambda (+ $0 $0)) $0))",
        "(lambda (map (lambda (* $0 $0)) $0))",
        "(lambda (cons 0 $0))",
        "(lambda (cdr $0))",
    ];
    let frontiers: Vec<Frontier> = sources
        .iter()
        .map(|src| {
            let e = Expr::parse(src, &prims).unwrap();
            let mut f = Frontier::new(t.clone());
            f.insert(
                FrontierEntry {
                    log_prior: g.log_prior(&t, &e),
                    log_likelihood: 0.0,
                    expr: e,
                },
                5,
            );
            f
        })
        .collect();
    let cfg = CompressionConfig {
        refactor_steps: 2,
        top_candidates: 15,
        max_inventions: 1,
        ..CompressionConfig::default()
    };
    c.bench_function("compress_5beams_n2", |b| {
        b.iter(|| compress(&lib, &frontiers, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compress
}
criterion_main!(benches);
