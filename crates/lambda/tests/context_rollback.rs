//! Property tests for the [`Context`] checkpoint/rollback (undo-trail)
//! API: a trial unification — successful or failed — followed by a
//! rollback must leave no observable trace, i.e. substitution application
//! and fresh-variable allocation behave exactly as in a context that never
//! attempted the unification. This is the contract the enumerator's
//! allocation-lean hot loop relies on instead of cloning contexts.

use dc_lambda::types::{tbool, tint, tlist, tvar, Context, Type};
use proptest::prelude::*;

/// Arbitrary (possibly polymorphic, possibly clashing) types over the
/// constructors unification actually sees: ground atoms, type variables,
/// lists, and arrows.
fn any_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![Just(tint()), Just(tbool()), (0usize..6).prop_map(tvar),];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(tlist),
            (inner.clone(), inner).prop_map(|(a, b)| Type::arrow(a, b)),
        ]
    })
}

/// Observable fingerprint of a context: how it rewrites a set of probe
/// types, plus which index the next fresh variable would get.
fn fingerprint(ctx: &Context, probes: &[Type]) -> (Vec<Type>, usize) {
    let applied = probes.iter().map(|t| t.apply(ctx)).collect();
    let next = ctx.clone().fresh_variable_index();
    (applied, next)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// unify-then-rollback is a no-op on the observable state, for
    /// arbitrary type pairs and arbitrary pre-existing bindings.
    #[test]
    fn unify_then_rollback_restores_observables(
        pre in proptest::collection::vec((any_type(), any_type()), 0..4),
        a in any_type(),
        b in any_type(),
    ) {
        let mut ctx = Context::new();
        // Build up an arbitrary pre-state; failed unifications may leave
        // partial bindings, which is fine — they are part of the state
        // the rollback must preserve.
        for (x, y) in &pre {
            let _ = ctx.unify(x, y);
        }
        let probes: Vec<Type> = pre
            .iter()
            .flat_map(|(x, y)| [x.clone(), y.clone()])
            .chain([a.clone(), b.clone()])
            .chain((0..8).map(tvar))
            .collect();
        let before = fingerprint(&ctx, &probes);
        let cp = ctx.checkpoint();
        let _ = ctx.unify(&a, &b);
        ctx.rollback(cp);
        prop_assert_eq!(fingerprint(&ctx, &probes), before);
    }

    /// Nested checkpoints unwind like a stack: rolling back the outer
    /// checkpoint discards everything the inner trial left behind, even
    /// when the inner trial was itself committed (never rolled back).
    #[test]
    fn nested_rollback_unwinds_inner_commits(
        a in any_type(),
        b in any_type(),
        c in any_type(),
        d in any_type(),
    ) {
        let mut ctx = Context::new();
        let probes = [a.clone(), b.clone(), c.clone(), d.clone()];
        let before = fingerprint(&ctx, &probes);
        let outer = ctx.checkpoint();
        let _ = ctx.unify(&a, &b);
        // Inner trial committed: its bindings stay until the outer rollback.
        let _ = ctx.unify(&c, &d);
        ctx.rollback(outer);
        prop_assert_eq!(fingerprint(&ctx, &probes), before);
    }

    /// After a rollback, redoing the same unification reproduces the same
    /// result and the same observable bindings — rollback restores the
    /// fresh-variable counter, not just the substitution.
    #[test]
    fn rollback_then_redo_is_reproducible(a in any_type(), b in any_type()) {
        let mut ctx = Context::new();
        let cp = ctx.checkpoint();
        let first = ctx.unify(&a, &b).is_ok();
        let first_applied = (a.apply(&ctx), b.apply(&ctx));
        ctx.rollback(cp);
        let second = ctx.unify(&a, &b).is_ok();
        prop_assert_eq!(first, second);
        prop_assert_eq!((a.apply(&ctx), b.apply(&ctx)), first_applied);
    }
}
