//! Edge-case tests for the λ-calculus substrate: parser torture cases,
//! de Bruijn arithmetic at boundaries, evaluator guards, and type-system
//! corners.

use dc_lambda::eval::{run_program, EvalCtx, Value};
use dc_lambda::expr::Expr;
use dc_lambda::primitives::{base_primitives, rich_list_primitives};
use dc_lambda::types::{tbool, tint, tlist, tvar, Context, Type};
use dc_lambda::Env;

fn parse(s: &str) -> Expr {
    Expr::parse(s, &base_primitives()).unwrap()
}

#[test]
fn parser_handles_deep_nesting() {
    let mut src = String::from("1");
    for _ in 0..50 {
        src = format!("(+ 1 {src})");
    }
    let e = Expr::parse(&src, &base_primitives()).unwrap();
    // each layer adds app(app(+, 1), ·) = 4 nodes
    assert_eq!(e.size(), 50 * 4 + 1);
    assert_eq!(run_program(&e, &[], 100_000).unwrap(), Value::Int(51));
}

#[test]
fn parser_rejects_mismatched_parens_everywhere() {
    let prims = base_primitives();
    for bad in [
        "((+ 1 1)", "(+ 1 1))", "(lambda)", "#", "($x)", "$-1", "$1x",
    ] {
        assert!(
            Expr::parse(bad, &prims).is_err(),
            "{bad:?} should not parse"
        );
    }
}

#[test]
fn whitespace_is_flexible() {
    let prims = base_primitives();
    let a = Expr::parse("(+ 1    1)", &prims).unwrap();
    let b = Expr::parse("( +\n1\t1 )", &prims).unwrap();
    assert_eq!(a, b);
}

#[test]
fn shift_boundary_conditions() {
    // Shifting the variable bound *at* the cutoff.
    let e = parse("(lambda ($0 $1 $2))");
    let shifted = e.shift(3).unwrap();
    assert_eq!(shifted.to_string(), "(lambda ($0 $4 $5))");
    // Negative shift of the outermost free variable (index 0 outside the
    // binder) is invalid, however it is written.
    assert!(parse("(lambda $1)").shift(-1).is_none());
    assert!(parse("(lambda $2)").shift(-1).is_some());
}

#[test]
fn substitution_at_depth_respects_binders() {
    // [(λλ $2)][$0 := 1] — the index under two binders refers outward.
    let e = Expr::abstraction(Expr::abstraction(Expr::Index(2)));
    let one = parse("1");
    let result = e.substitute(0, &one);
    assert_eq!(result.to_string(), "(lambda (lambda 1))");
}

#[test]
fn beta_reduction_is_capture_avoiding() {
    // (λ (λ $1)) ($0 free) — substituting a free variable under a binder
    // must shift it: result (λ $1), not (λ $0).
    let f = Expr::abstraction(Expr::abstraction(Expr::Index(1)));
    let app = Expr::application(f, Expr::Index(0));
    let reduced = app.beta_normal_form(10).unwrap();
    assert_eq!(reduced.to_string(), "(lambda $1)");
}

#[test]
fn evaluator_bounds_list_growth() {
    // Repeated doubling of a list would explode; the guard trips first.
    let prims = rich_list_primitives();
    let e = Expr::parse(
        "(lambda (fix (lambda (lambda (cons 1 ($1 $0)))) $0))",
        &prims,
    )
    .unwrap();
    let r = run_program(&e, &[Value::list(vec![])], 10_000_000);
    assert!(r.is_err(), "unbounded cons must fail cleanly");
}

#[test]
fn evaluator_depth_guard_reports_fuel_exhaustion() {
    let prims = base_primitives();
    // Deep non-recursive nesting is fine…
    let mut src = String::from("$0");
    for _ in 0..50 {
        src = format!("((lambda $0) {src})");
    }
    let e = Expr::parse(&format!("(lambda {src})"), &prims).unwrap();
    assert_eq!(
        run_program(&e, &[Value::Int(7)], 100_000).unwrap(),
        Value::Int(7)
    );
}

#[test]
fn env_is_persistent_not_destructive() {
    let base = Env::new().push(Value::Int(1));
    let a = base.push(Value::Int(2));
    let b = base.push(Value::Int(3));
    assert_eq!(a.lookup(0), Some(&Value::Int(2)));
    assert_eq!(b.lookup(0), Some(&Value::Int(3)));
    assert_eq!(a.lookup(1), Some(&Value::Int(1)));
    assert_eq!(b.lookup(1), Some(&Value::Int(1)));
}

#[test]
fn polymorphic_self_application_is_rejected() {
    // (λ ($0 $0)) cannot typecheck in HM.
    let e = Expr::abstraction(Expr::application(Expr::Index(0), Expr::Index(0)));
    assert!(e.infer().is_err());
}

#[test]
fn if_branches_unify() {
    let e = parse("(lambda (if $0 1 0))");
    assert_eq!(
        e.infer().unwrap().canonicalize(),
        Type::arrow(tbool(), tint())
    );
    let bad = Expr::parse("(lambda (if $0 1 nil))", &base_primitives()).unwrap();
    assert!(bad.infer().is_err());
}

#[test]
fn instantiation_respects_sharing_within_a_type() {
    // fold : list(t0) -> t1 -> (t0 -> t1 -> t1) -> t1. Instantiate twice:
    // separate variables per instantiation, shared within one.
    let prims = base_primitives();
    let fold = prims.iter().find(|p| p.name == "fold").unwrap().ty.clone();
    let mut ctx = Context::new();
    let i1 = fold.instantiate(&mut ctx);
    let i2 = fold.instantiate(&mut ctx);
    assert_ne!(i1, i2);
    let v1 = i1.free_variables();
    let v2 = i2.free_variables();
    assert_eq!(v1.len(), 2);
    assert!(v1.iter().all(|v| !v2.contains(v)));
}

#[test]
fn unification_is_order_insensitive_for_these_cases() {
    for (a, b) in [
        (tlist(tvar(0)), tlist(tint())),
        (Type::arrow(tvar(0), tvar(1)), Type::arrow(tint(), tbool())),
    ] {
        let mut c1 = Context::starting_after(&a);
        let mut c2 = Context::starting_after(&a);
        assert!(c1.unify(&a, &b).is_ok());
        assert!(c2.unify(&b, &a).is_ok());
        assert_eq!(a.apply(&c1), a.apply(&c2));
    }
}

#[test]
fn fuel_is_consumed_monotonically() {
    let prims = base_primitives();
    let e = Expr::parse("(+ 1 (+ 1 (+ 1 1)))", &prims).unwrap();
    let mut ctx = EvalCtx::with_fuel(1000);
    let before = ctx.fuel();
    ctx.eval(&e, &Env::new()).unwrap();
    assert!(ctx.fuel() < before);
}

#[test]
fn higher_order_if_as_value() {
    // `if` passed where a function is expected still behaves (strictly).
    let prims = base_primitives();
    let e = Expr::parse(
        "(map (if true (lambda (+ $0 1)) (lambda $0)) (cons 1 nil))",
        &prims,
    )
    .unwrap();
    assert_eq!(
        run_program(&e, &[], 100_000).unwrap(),
        Value::list(vec![Value::Int(2)])
    );
}

#[test]
fn display_of_invented_routines_is_stable() {
    let prims = base_primitives();
    let e = Expr::parse("(#(lambda (+ $0 $0)) 1)", &prims).unwrap();
    assert_eq!(e.to_string(), "(#(lambda (+ $0 $0)) 1)");
    // And re-parsable.
    let e2 = Expr::parse(&e.to_string(), &prims).unwrap();
    assert_eq!(e, e2);
}
