//! Hindley–Milner style polymorphic types and unification.
//!
//! Types are either variables (`t0`, `t1`, ...) or constructors applied to
//! argument types (`int`, `list(t0)`, `t0 -> t1`). Function types are the
//! binary constructor [`ARROW`]. A [`Context`] carries the current
//! substitution and a fresh-variable counter; unification is performed
//! against a context, mirroring the type machinery of the original
//! DreamCoder implementation.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Name of the function-type constructor.
pub const ARROW: &str = "->";

/// A (possibly polymorphic) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A type variable, identified by its index.
    Var(usize),
    /// A type constructor applied to zero or more arguments.
    Con(Arc<str>, Vec<Type>),
}

impl Type {
    /// A nullary type constructor such as `int`.
    pub fn con0(name: &str) -> Type {
        Type::Con(Arc::from(name), Vec::new())
    }

    /// A unary type constructor such as `list(int)`.
    pub fn con1(name: &str, arg: Type) -> Type {
        Type::Con(Arc::from(name), vec![arg])
    }

    /// The function type `alpha -> beta`.
    pub fn arrow(alpha: Type, beta: Type) -> Type {
        Type::Con(Arc::from(ARROW), vec![alpha, beta])
    }

    /// Right-associative chain `t1 -> t2 -> ... -> ret`.
    ///
    /// # Panics
    /// Panics if `args` is used with an empty return chain (it is not; the
    /// function always terminates with `ret`).
    pub fn arrows(args: Vec<Type>, ret: Type) -> Type {
        args.into_iter()
            .rev()
            .fold(ret, |acc, a| Type::arrow(a, acc))
    }

    /// Is this type a function type?
    pub fn is_arrow(&self) -> bool {
        matches!(self, Type::Con(name, _) if &**name == ARROW)
    }

    /// If this is `a -> b`, return `(a, b)`.
    pub fn as_arrow(&self) -> Option<(&Type, &Type)> {
        match self {
            Type::Con(name, args) if &**name == ARROW && args.len() == 2 => {
                Some((&args[0], &args[1]))
            }
            _ => None,
        }
    }

    /// The sequence of argument types of a (curried) function type.
    pub fn arguments(&self) -> Vec<&Type> {
        let mut out = Vec::new();
        let mut cur = self;
        while let Some((a, b)) = cur.as_arrow() {
            out.push(a);
            cur = b;
        }
        out
    }

    /// The final return type after stripping all arrows.
    pub fn returns(&self) -> &Type {
        let mut cur = self;
        while let Some((_, b)) = cur.as_arrow() {
            cur = b;
        }
        cur
    }

    /// Number of curried arguments (the arity of a function of this type).
    pub fn arity(&self) -> usize {
        self.arguments().len()
    }

    /// Collect the free type variables, in first-occurrence order.
    pub fn free_variables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Type::Var(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Type::Con(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Does the type contain any variables at all?
    pub fn is_polymorphic(&self) -> bool {
        match self {
            Type::Var(_) => true,
            Type::Con(_, args) => args.iter().any(Type::is_polymorphic),
        }
    }

    /// Apply a substitution encoded in `ctx`, resolving all bound variables.
    pub fn apply(&self, ctx: &Context) -> Type {
        match self {
            Type::Var(i) => match ctx.substitution.get(i) {
                Some(t) => t.apply(ctx),
                None => self.clone(),
            },
            Type::Con(name, args) => Type::Con(
                Arc::clone(name),
                args.iter().map(|a| a.apply(ctx)).collect(),
            ),
        }
    }

    /// Canonicalize variables to `t0, t1, ...` in order of appearance.
    pub fn canonicalize(&self) -> Type {
        let vars = self.free_variables();
        let mapping: HashMap<usize, usize> = vars
            .into_iter()
            .enumerate()
            .map(|(new, old)| (old, new))
            .collect();
        self.rename(&mapping)
    }

    fn rename(&self, mapping: &HashMap<usize, usize>) -> Type {
        match self {
            Type::Var(i) => Type::Var(*mapping.get(i).unwrap_or(i)),
            Type::Con(name, args) => Type::Con(
                Arc::clone(name),
                args.iter().map(|a| a.rename(mapping)).collect(),
            ),
        }
    }

    /// Instantiate this (implicitly universally quantified) type with fresh
    /// variables drawn from `ctx`.
    pub fn instantiate(&self, ctx: &mut Context) -> Type {
        let mut mapping = HashMap::new();
        for v in self.free_variables() {
            mapping.insert(v, ctx.fresh_variable_index());
        }
        self.rename(&mapping)
    }

    fn occurs(&self, var: usize, ctx: &Context) -> bool {
        match self {
            Type::Var(i) => {
                if *i == var {
                    return true;
                }
                match ctx.substitution.get(i) {
                    Some(t) => t.occurs(var, ctx),
                    None => false,
                }
            }
            Type::Con(_, args) => args.iter().any(|a| a.occurs(var, ctx)),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Var(i) => write!(f, "t{i}"),
            Type::Con(name, args) => {
                if &**name == ARROW && args.len() == 2 {
                    if args[0].is_arrow() {
                        write!(f, "({}) -> {}", args[0], args[1])
                    } else {
                        write!(f, "{} -> {}", args[0], args[1])
                    }
                } else if args.is_empty() {
                    write!(f, "{name}")
                } else {
                    write!(f, "{name}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            }
        }
    }
}

/// The builtin `int` type.
pub fn tint() -> Type {
    Type::con0("int")
}
/// The builtin `real` type (used by symbolic regression & physics).
pub fn treal() -> Type {
    Type::con0("real")
}
/// The builtin `bool` type.
pub fn tbool() -> Type {
    Type::con0("bool")
}
/// The builtin `char` type.
pub fn tchar() -> Type {
    Type::con0("char")
}
/// The builtin `str` type.
pub fn tstr() -> Type {
    Type::con0("str")
}
/// The builtin `list` type constructor.
pub fn tlist(elem: Type) -> Type {
    Type::con1("list", elem)
}
/// Type variable `t{i}`.
pub fn tvar(i: usize) -> Type {
    Type::Var(i)
}

/// Error produced when two types cannot be unified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnificationError {
    /// Rendered form of the first type.
    pub left: String,
    /// Rendered form of the second type.
    pub right: String,
}

impl fmt::Display for UnificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot unify {} with {}", self.left, self.right)
    }
}

impl std::error::Error for UnificationError {}

/// A unification context: the current substitution plus a supply of fresh
/// type variables.
///
/// Every binding insertion is recorded on an undo trail, so speculative
/// unification can be wound back with [`Context::checkpoint`] /
/// [`Context::rollback`] instead of cloning the whole substitution —
/// the enumerator's hot path relies on this.
#[derive(Debug, Clone, Default)]
pub struct Context {
    substitution: HashMap<usize, Type>,
    next_variable: usize,
    /// Keys inserted into `substitution`, in insertion order. Unification
    /// only ever binds previously-unbound variables (bound ones are
    /// resolved by `walk` first), so undoing is plain key removal.
    trail: Vec<usize>,
}

/// A point in a [`Context`]'s mutation history, produced by
/// [`Context::checkpoint`] and consumed by [`Context::rollback`].
///
/// Rollback is only valid on the same context the checkpoint came from,
/// and checkpoints must be unwound innermost-first (stack discipline).
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint {
    trail_len: usize,
    next_variable: usize,
}

impl Context {
    /// An empty context with no bindings.
    pub fn new() -> Context {
        Context::default()
    }

    /// A context whose fresh variables start after every variable free in
    /// `ty` (so instantiating other types cannot collide with `ty`).
    pub fn starting_after(ty: &Type) -> Context {
        let next = ty.free_variables().into_iter().max().map_or(0, |m| m + 1);
        Context {
            substitution: HashMap::new(),
            next_variable: next,
            trail: Vec::new(),
        }
    }

    /// Record the current substitution size and variable counter.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            trail_len: self.trail.len(),
            next_variable: self.next_variable,
        }
    }

    /// Undo every binding and fresh variable allocated since `cp` was
    /// taken. Bindings made before the checkpoint cannot mention
    /// variables allocated after it (they did not exist yet), so removal
    /// restores exactly the checkpointed substitution.
    pub fn rollback(&mut self, cp: Checkpoint) {
        debug_assert!(cp.trail_len <= self.trail.len(), "stale checkpoint");
        while self.trail.len() > cp.trail_len {
            let key = self.trail.pop().expect("trail length checked");
            self.substitution.remove(&key);
        }
        self.next_variable = cp.next_variable;
    }

    /// Insert a binding, recording it on the undo trail.
    fn bind(&mut self, var: usize, ty: Type) {
        let prior = self.substitution.insert(var, ty);
        debug_assert!(prior.is_none(), "rebinding variable t{var}");
        self.trail.push(var);
    }

    /// Allocate a fresh type variable.
    pub fn fresh_variable(&mut self) -> Type {
        Type::Var(self.fresh_variable_index())
    }

    /// Allocate a fresh type-variable index.
    pub fn fresh_variable_index(&mut self) -> usize {
        let i = self.next_variable;
        self.next_variable += 1;
        i
    }

    /// Follow the substitution one step for a variable type.
    fn walk<'a>(&'a self, ty: &'a Type) -> &'a Type {
        let mut cur = ty;
        while let Type::Var(i) = cur {
            match self.substitution.get(i) {
                Some(t) => cur = t,
                None => break,
            }
        }
        cur
    }

    /// Unify two types, extending the substitution.
    ///
    /// # Errors
    /// Returns [`UnificationError`] when the types clash or when binding
    /// would create an infinite type (occurs check).
    pub fn unify(&mut self, a: &Type, b: &Type) -> Result<(), UnificationError> {
        let a = self.walk(a).clone();
        let b = self.walk(b).clone();
        match (&a, &b) {
            (Type::Var(i), Type::Var(j)) if i == j => Ok(()),
            (Type::Var(i), _) => {
                if b.occurs(*i, self) {
                    Err(self.error(&a, &b))
                } else {
                    self.bind(*i, b);
                    Ok(())
                }
            }
            (_, Type::Var(j)) => {
                if a.occurs(*j, self) {
                    Err(self.error(&a, &b))
                } else {
                    self.bind(*j, a);
                    Ok(())
                }
            }
            (Type::Con(n1, a1), Type::Con(n2, a2)) => {
                if n1 != n2 || a1.len() != a2.len() {
                    return Err(self.error(&a, &b));
                }
                for (x, y) in a1.iter().zip(a2.iter()) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
        }
    }

    /// Test whether two types *could* unify, without mutating `self`.
    pub fn might_unify(&self, a: &Type, b: &Type) -> bool {
        let mut scratch = self.clone();
        scratch.unify(a, b).is_ok()
    }

    fn error(&self, a: &Type, b: &Type) -> UnificationError {
        UnificationError {
            left: a.apply(self).to_string(),
            right: b.apply(self).to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_structure() {
        let t = Type::arrow(tint(), Type::arrow(tlist(tvar(0)), tbool()));
        assert_eq!(t.to_string(), "int -> list(t0) -> bool");
        let nested = Type::arrow(Type::arrow(tint(), tint()), tint());
        assert_eq!(nested.to_string(), "(int -> int) -> int");
    }

    #[test]
    fn arity_and_returns() {
        let t = Type::arrows(vec![tint(), tbool(), tlist(tint())], tstr());
        assert_eq!(t.arity(), 3);
        assert_eq!(t.returns(), &tstr());
        assert_eq!(t.arguments().len(), 3);
        assert_eq!(tint().arity(), 0);
    }

    #[test]
    fn unify_simple() {
        let mut ctx = Context::new();
        let a = ctx.fresh_variable();
        ctx.unify(&a, &tint()).unwrap();
        assert_eq!(a.apply(&ctx), tint());
    }

    #[test]
    fn unify_function_types() {
        let mut ctx = Context::new();
        let a = ctx.fresh_variable();
        let b = ctx.fresh_variable();
        let f = Type::arrow(a.clone(), b.clone());
        let g = Type::arrow(tint(), tlist(tint()));
        ctx.unify(&f, &g).unwrap();
        assert_eq!(a.apply(&ctx), tint());
        assert_eq!(b.apply(&ctx), tlist(tint()));
    }

    #[test]
    fn unify_clash_fails() {
        let mut ctx = Context::new();
        assert!(ctx.unify(&tint(), &tbool()).is_err());
    }

    #[test]
    fn occurs_check_rejects_infinite_type() {
        let mut ctx = Context::new();
        let a = ctx.fresh_variable();
        let f = Type::arrow(a.clone(), tint());
        assert!(ctx.unify(&a, &f).is_err());
    }

    #[test]
    fn occurs_check_through_substitution() {
        let mut ctx = Context::new();
        let a = ctx.fresh_variable();
        let b = ctx.fresh_variable();
        ctx.unify(&a, &b).unwrap();
        // binding b to (a -> int) must fail: a == b transitively
        assert!(ctx.unify(&b, &Type::arrow(a.clone(), tint())).is_err());
    }

    #[test]
    fn instantiate_gives_fresh_variables() {
        let mut ctx = Context::new();
        let poly = Type::arrow(tvar(0), tvar(0));
        let inst1 = poly.instantiate(&mut ctx);
        let inst2 = poly.instantiate(&mut ctx);
        assert_ne!(inst1, inst2);
        // but each instance is still alpha -> alpha
        if let Some((l, r)) = inst1.as_arrow() {
            assert_eq!(l, r);
        } else {
            panic!("expected arrow");
        }
    }

    #[test]
    fn canonicalize_renumbers() {
        let t = Type::arrow(tvar(7), Type::arrow(tvar(3), tvar(7)));
        assert_eq!(
            t.canonicalize(),
            Type::arrow(tvar(0), Type::arrow(tvar(1), tvar(0)))
        );
    }

    #[test]
    fn might_unify_does_not_mutate() {
        let ctx = Context::new();
        assert!(ctx.might_unify(&tvar(0), &tint()));
        assert!(!ctx.might_unify(&tint(), &tbool()));
        // Original context unchanged: fresh unification still possible.
        let mut ctx2 = ctx.clone();
        ctx2.unify(&tvar(0), &tbool()).unwrap();
    }

    #[test]
    fn rollback_restores_bindings_and_counter() {
        let mut ctx = Context::new();
        let a = ctx.fresh_variable();
        ctx.unify(&a, &tint()).unwrap();
        let cp = ctx.checkpoint();
        let b = ctx.fresh_variable();
        ctx.unify(&b, &tlist(a.clone())).unwrap();
        assert_eq!(b.apply(&ctx), tlist(tint()));
        ctx.rollback(cp);
        // Post-checkpoint binding gone, pre-checkpoint binding intact.
        assert_eq!(b.apply(&ctx), b);
        assert_eq!(a.apply(&ctx), tint());
        // The variable counter rewound: the next fresh variable is `b` again.
        assert_eq!(ctx.fresh_variable(), b);
    }

    #[test]
    fn nested_checkpoints_unwind_in_stack_order() {
        let mut ctx = Context::new();
        let a = ctx.fresh_variable();
        let cp_outer = ctx.checkpoint();
        ctx.unify(&a, &tbool()).unwrap();
        let cp_inner = ctx.checkpoint();
        let b = ctx.fresh_variable();
        ctx.unify(&b, &tint()).unwrap();
        ctx.rollback(cp_inner);
        assert_eq!(a.apply(&ctx), tbool());
        assert_eq!(b.apply(&ctx), b);
        ctx.rollback(cp_outer);
        assert_eq!(a.apply(&ctx), a);
    }

    #[test]
    fn starting_after_avoids_collisions() {
        let t = Type::arrow(tvar(4), tvar(2));
        let mut ctx = Context::starting_after(&t);
        let fresh = ctx.fresh_variable();
        assert_eq!(fresh, tvar(5));
    }
}
