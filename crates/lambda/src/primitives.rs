//! The base language: functional-programming and numeric primitives.
//!
//! These are the initial primitives the paper gives the list-processing
//! domain (§5): `map, fold, cons, car, cdr, if, length, index, =, +, -, 0,
//! 1, nil, is-nil` plus the numerical routines `mod, *, >, is-square,
//! is-prime`, and `fix` (the Y-combinator used by the origami experiment,
//! §5.2). Character/string primitives for the text domain also live here;
//! domain-specific primitives (LOGO, towers, regexes) live in `dc-tasks`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::EvalError;
use crate::eval::Value;
use crate::expr::{Invented, Primitive, PrimitiveLookup, Semantics};
use crate::types::{tbool, tchar, tint, tlist, tstr, tvar, Type};

/// A named collection of primitives (and, after learning, inventions),
/// usable as the parser's symbol table.
#[derive(Debug, Clone, Default)]
pub struct PrimitiveSet {
    order: Vec<Arc<Primitive>>,
    by_name: HashMap<String, Arc<Primitive>>,
    inventions: HashMap<String, Arc<Invented>>,
}

impl PrimitiveSet {
    /// An empty set.
    pub fn new() -> PrimitiveSet {
        PrimitiveSet::default()
    }

    /// Add a primitive; later additions shadow earlier ones by name.
    pub fn add(&mut self, p: Arc<Primitive>) -> &mut Self {
        self.by_name.insert(p.name.clone(), Arc::clone(&p));
        self.order.push(p);
        self
    }

    /// Register an invented routine for parsing.
    pub fn add_invented(&mut self, inv: Arc<Invented>) -> &mut Self {
        self.inventions.insert(inv.name.clone(), inv);
        self
    }

    /// Iterate over the primitives in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Primitive>> {
        self.order.iter()
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the set holds no primitives.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl PrimitiveLookup for PrimitiveSet {
    fn primitive(&self, name: &str) -> Option<Arc<Primitive>> {
        self.by_name.get(name).cloned()
    }
    fn invented(&self, name: &str) -> Option<Arc<Invented>> {
        self.inventions.get(name).cloned()
    }
}

impl FromIterator<Arc<Primitive>> for PrimitiveSet {
    fn from_iter<I: IntoIterator<Item = Arc<Primitive>>>(iter: I) -> Self {
        let mut s = PrimitiveSet::new();
        for p in iter {
            s.add(p);
        }
        s
    }
}

fn int2(
    name: &str,
    f: impl Fn(i64, i64) -> Result<i64, EvalError> + Send + Sync + 'static,
) -> Arc<Primitive> {
    Primitive::function(
        name,
        Type::arrows(vec![tint(), tint()], tint()),
        move |args, _| Ok(Value::Int(f(args[0].as_int()?, args[1].as_int()?)?)),
    )
}

fn int_pred(name: &str, f: impl Fn(i64) -> bool + Send + Sync + 'static) -> Arc<Primitive> {
    Primitive::function(name, Type::arrow(tint(), tbool()), move |args, _| {
        Ok(Value::Bool(f(args[0].as_int()?)))
    })
}

/// `map : (t0 -> t1) -> list(t0) -> list(t1)`.
pub fn prim_map() -> Arc<Primitive> {
    Primitive::function(
        "map",
        Type::arrows(
            vec![Type::arrow(tvar(0), tvar(1)), tlist(tvar(0))],
            tlist(tvar(1)),
        ),
        |args, ctx| {
            let f = args[0].clone();
            let items = args[1].as_list()?.to_vec();
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(ctx.apply(f.clone(), item)?);
            }
            Ok(Value::list(out))
        },
    )
}

/// `fold : list(t0) -> t1 -> (t0 -> t1 -> t1) -> t1` (right fold).
pub fn prim_fold() -> Arc<Primitive> {
    Primitive::function(
        "fold",
        Type::arrows(
            vec![
                tlist(tvar(0)),
                tvar(1),
                Type::arrows(vec![tvar(0), tvar(1)], tvar(1)),
            ],
            tvar(1),
        ),
        |args, ctx| {
            let items = args[0].as_list()?.to_vec();
            let mut acc = args[1].clone();
            let f = args[2].clone();
            for item in items.into_iter().rev() {
                let partial = ctx.apply(f.clone(), item)?;
                acc = ctx.apply(partial, acc)?;
            }
            Ok(acc)
        },
    )
}

/// `unfold : t0 -> (t0 -> bool) -> (t0 -> t1) -> (t0 -> t0) -> list(t1)`.
///
/// `unfold x p h n` produces `[]` when `p x`, else `h x :: unfold (n x) ...`.
pub fn prim_unfold() -> Arc<Primitive> {
    Primitive::function(
        "unfold",
        Type::arrows(
            vec![
                tvar(0),
                Type::arrow(tvar(0), tbool()),
                Type::arrow(tvar(0), tvar(1)),
                Type::arrow(tvar(0), tvar(0)),
            ],
            tlist(tvar(1)),
        ),
        |args, ctx| {
            let mut seed = args[0].clone();
            let stop = args[1].clone();
            let head = args[2].clone();
            let next = args[3].clone();
            let mut out = Vec::new();
            loop {
                ctx.burn(1)?;
                if ctx.apply(stop.clone(), seed.clone())?.as_bool()? {
                    return Ok(Value::list(out));
                }
                if out.len() >= ctx.max_list_len {
                    return Err(EvalError::runtime("unfold output too long"));
                }
                out.push(ctx.apply(head.clone(), seed.clone())?);
                seed = ctx.apply(next.clone(), seed)?;
            }
        },
    )
}

/// `cons : t0 -> list(t0) -> list(t0)`.
pub fn prim_cons() -> Arc<Primitive> {
    Primitive::function(
        "cons",
        Type::arrows(vec![tvar(0), tlist(tvar(0))], tlist(tvar(0))),
        |args, ctx| {
            let tail = args[1].as_list()?;
            if tail.len() >= ctx.max_list_len {
                return Err(EvalError::runtime("list too long"));
            }
            let mut out = Vec::with_capacity(tail.len() + 1);
            out.push(args[0].clone());
            out.extend_from_slice(tail);
            Ok(Value::list(out))
        },
    )
}

/// `car : list(t0) -> t0`; errors on the empty list.
pub fn prim_car() -> Arc<Primitive> {
    Primitive::function("car", Type::arrow(tlist(tvar(0)), tvar(0)), |args, _| {
        args[0]
            .as_list()?
            .first()
            .cloned()
            .ok_or_else(|| EvalError::runtime("car of empty list"))
    })
}

/// `cdr : list(t0) -> list(t0)`; errors on the empty list.
pub fn prim_cdr() -> Arc<Primitive> {
    Primitive::function(
        "cdr",
        Type::arrow(tlist(tvar(0)), tlist(tvar(0))),
        |args, _| {
            let l = args[0].as_list()?;
            if l.is_empty() {
                return Err(EvalError::runtime("cdr of empty list"));
            }
            Ok(Value::list(l[1..].to_vec()))
        },
    )
}

/// The lazy conditional `if : bool -> t0 -> t0 -> t0`.
pub fn prim_if() -> Arc<Primitive> {
    Arc::new(Primitive {
        name: "if".to_owned(),
        ty: Type::arrows(vec![tbool(), tvar(0), tvar(0)], tvar(0)),
        sem: Semantics::If,
    })
}

/// The fixed-point combinator `fix : ((t0 -> t1) -> t0 -> t1) -> t0 -> t1`.
pub fn prim_fix() -> Arc<Primitive> {
    Arc::new(Primitive {
        name: "fix".to_owned(),
        ty: Type::arrows(
            vec![Type::arrows(
                vec![Type::arrow(tvar(0), tvar(1)), tvar(0)],
                tvar(1),
            )],
            Type::arrow(tvar(0), tvar(1)),
        ),
        sem: Semantics::Fix,
    })
}

/// `length : list(t0) -> int`.
pub fn prim_length() -> Arc<Primitive> {
    Primitive::function("length", Type::arrow(tlist(tvar(0)), tint()), |args, _| {
        Ok(Value::Int(args[0].as_list()?.len() as i64))
    })
}

/// `index : int -> list(t0) -> t0` (0-based); errors when out of range.
pub fn prim_index() -> Arc<Primitive> {
    Primitive::function(
        "index",
        Type::arrows(vec![tint(), tlist(tvar(0))], tvar(0)),
        |args, _| {
            let i = args[0].as_int()?;
            let l = args[1].as_list()?;
            if i < 0 || i as usize >= l.len() {
                return Err(EvalError::runtime("index out of range"));
            }
            Ok(l[i as usize].clone())
        },
    )
}

/// `= : int -> int -> bool`.
pub fn prim_eq() -> Arc<Primitive> {
    Primitive::function(
        "=",
        Type::arrows(vec![tint(), tint()], tbool()),
        |args, _| Ok(Value::Bool(args[0].as_int()? == args[1].as_int()?)),
    )
}

/// `> : int -> int -> bool`.
pub fn prim_gt() -> Arc<Primitive> {
    Primitive::function(
        ">",
        Type::arrows(vec![tint(), tint()], tbool()),
        |args, _| Ok(Value::Bool(args[0].as_int()? > args[1].as_int()?)),
    )
}

/// `is-nil : list(t0) -> bool`.
pub fn prim_is_nil() -> Arc<Primitive> {
    Primitive::function("is-nil", Type::arrow(tlist(tvar(0)), tbool()), |args, _| {
        Ok(Value::Bool(args[0].as_list()?.is_empty()))
    })
}

/// `nil : list(t0)`.
pub fn prim_nil() -> Arc<Primitive> {
    Primitive::constant("nil", tlist(tvar(0)), Value::list(vec![]))
}

/// An integer constant.
pub fn prim_int(n: i64) -> Arc<Primitive> {
    Primitive::constant(&n.to_string(), tint(), Value::Int(n))
}

/// `zip : list(t0) -> list(t1) -> (t0 -> t1 -> t2) -> list(t2)`.
pub fn prim_zip() -> Arc<Primitive> {
    Primitive::function(
        "zip",
        Type::arrows(
            vec![
                tlist(tvar(0)),
                tlist(tvar(1)),
                Type::arrows(vec![tvar(0), tvar(1)], tvar(2)),
            ],
            tlist(tvar(2)),
        ),
        |args, ctx| {
            let a = args[0].as_list()?.to_vec();
            let b = args[1].as_list()?.to_vec();
            let f = args[2].clone();
            let mut out = Vec::with_capacity(a.len().min(b.len()));
            for (x, y) in a.into_iter().zip(b) {
                let p = ctx.apply(f.clone(), x)?;
                out.push(ctx.apply(p, y)?);
            }
            Ok(Value::list(out))
        },
    )
}

/// `filter : (t0 -> bool) -> list(t0) -> list(t0)`.
pub fn prim_filter() -> Arc<Primitive> {
    Primitive::function(
        "filter",
        Type::arrows(
            vec![Type::arrow(tvar(0), tbool()), tlist(tvar(0))],
            tlist(tvar(0)),
        ),
        |args, ctx| {
            let f = args[0].clone();
            let items = args[1].as_list()?.to_vec();
            let mut out = Vec::new();
            for item in items {
                if ctx.apply(f.clone(), item.clone())?.as_bool()? {
                    out.push(item);
                }
            }
            Ok(Value::list(out))
        },
    )
}

/// `range : int -> list(int)` producing `[0, 1, ..., n-1]`.
pub fn prim_range() -> Arc<Primitive> {
    Primitive::function("range", Type::arrow(tint(), tlist(tint())), |args, ctx| {
        let n = args[0].as_int()?;
        if n < 0 || n as usize > ctx.max_list_len {
            return Err(EvalError::runtime("range argument out of bounds"));
        }
        Ok(Value::list((0..n).map(Value::Int).collect()))
    })
}

fn is_square(n: i64) -> bool {
    if n < 0 {
        return false;
    }
    let r = (n as f64).sqrt().round() as i64;
    r * r == n
}

fn is_prime(n: i64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

/// The paper's initial primitive set for the list domain (§5), plus `fix`,
/// `true`/`false`, and a few standard helpers used across domains.
pub fn base_primitives() -> PrimitiveSet {
    let mut s = PrimitiveSet::new();
    s.add(prim_map())
        .add(prim_fold())
        .add(prim_cons())
        .add(prim_car())
        .add(prim_cdr())
        .add(prim_if())
        .add(prim_fix())
        .add(prim_length())
        .add(prim_index())
        .add(prim_eq())
        .add(prim_gt())
        .add(prim_is_nil())
        .add(prim_nil())
        .add(prim_int(0))
        .add(prim_int(1))
        .add(int2("+", |a, b| Ok(a.wrapping_add(b))))
        .add(int2("-", |a, b| Ok(a.wrapping_sub(b))))
        .add(int2("*", |a, b| Ok(a.wrapping_mul(b))))
        .add(int2("mod", |a, b| {
            if b == 0 {
                Err(EvalError::runtime("mod by zero"))
            } else {
                Ok(a.rem_euclid(b))
            }
        }))
        .add(int_pred("is-square", is_square))
        .add(int_pred("is-prime", is_prime))
        .add(Primitive::constant("true", tbool(), Value::Bool(true)))
        .add(Primitive::constant("false", tbool(), Value::Bool(false)));
    s
}

/// Extra list helpers made available when a domain wants a richer basis
/// (`filter`, `zip`, `range`, `unfold`, small digit constants).
pub fn rich_list_primitives() -> PrimitiveSet {
    let mut s = base_primitives();
    s.add(prim_filter())
        .add(prim_zip())
        .add(prim_range())
        .add(prim_unfold());
    for d in 2..=9 {
        s.add(prim_int(d));
    }
    s
}

/// Character and string primitives for the text-editing domain.
pub fn text_primitives() -> PrimitiveSet {
    let mut s = base_primitives();
    s.add(Primitive::function(
        "str-append",
        Type::arrows(vec![tstr(), tstr()], tstr()),
        |args, ctx| {
            let a = args[0].as_str()?;
            let b = args[1].as_str()?;
            if a.len() + b.len() > ctx.max_str_len {
                return Err(EvalError::runtime("string too long"));
            }
            Ok(Value::str(&format!("{a}{b}")))
        },
    ))
    .add(Primitive::function(
        "str-split",
        Type::arrows(vec![tchar(), tstr()], tlist(tstr())),
        |args, _| {
            let c = args[0].as_char()?;
            let s = args[1].as_str()?;
            Ok(Value::list(s.split(c).map(Value::str).collect()))
        },
    ))
    .add(Primitive::function(
        "str-join",
        Type::arrows(vec![tchar(), tlist(tstr())], tstr()),
        |args, _| {
            let c = args[0].as_char()?;
            let parts = args[1]
                .as_list()?
                .iter()
                .map(|v| v.as_str().map(str::to_owned))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::str(&parts.join(&c.to_string())))
        },
    ))
    .add(Primitive::function(
        "str-chars",
        Type::arrow(tstr(), tlist(tchar())),
        |args, _| {
            Ok(Value::list(
                args[0].as_str()?.chars().map(Value::Char).collect(),
            ))
        },
    ))
    .add(Primitive::function(
        "chars-str",
        Type::arrow(tlist(tchar()), tstr()),
        |args, _| {
            let s: String = args[0]
                .as_list()?
                .iter()
                .map(Value::as_char)
                .collect::<Result<String, _>>()?;
            Ok(Value::str(&s))
        },
    ))
    .add(Primitive::function(
        "str-take",
        Type::arrows(vec![tint(), tstr()], tstr()),
        |args, _| {
            let n = args[0].as_int()?.max(0) as usize;
            let s = args[1].as_str()?;
            Ok(Value::str(&s.chars().take(n).collect::<String>()))
        },
    ))
    .add(Primitive::function(
        "str-drop",
        Type::arrows(vec![tint(), tstr()], tstr()),
        |args, _| {
            let n = args[0].as_int()?.max(0) as usize;
            let s = args[1].as_str()?;
            Ok(Value::str(&s.chars().skip(n).collect::<String>()))
        },
    ))
    .add(Primitive::function(
        "str-upper",
        Type::arrow(tstr(), tstr()),
        |args, _| Ok(Value::str(&args[0].as_str()?.to_uppercase())),
    ))
    .add(Primitive::function(
        "str-lower",
        Type::arrow(tstr(), tstr()),
        |args, _| Ok(Value::str(&args[0].as_str()?.to_lowercase())),
    ))
    .add(Primitive::constant("empty-str", tstr(), Value::str("")))
    .add(Primitive::constant("space", tchar(), Value::Char(' ')))
    .add(Primitive::constant("dot", tchar(), Value::Char('.')))
    .add(Primitive::constant("comma", tchar(), Value::Char(',')))
    .add(Primitive::constant("dash", tchar(), Value::Char('-')))
    .add(Primitive::constant("at-sign", tchar(), Value::Char('@')));
    s
}

/// The minimal 1959-Lisp basis of §5.2 ("origami programming"):
/// `if, =, >, +, -, 0, 1, cons, car, cdr, nil, is-nil` and `fix`.
pub fn lisp_1959_primitives() -> PrimitiveSet {
    let mut s = PrimitiveSet::new();
    s.add(prim_if())
        .add(prim_eq())
        .add(prim_gt())
        .add(int2("+", |a, b| Ok(a.wrapping_add(b))))
        .add(int2("-", |a, b| Ok(a.wrapping_sub(b))))
        .add(prim_int(0))
        .add(prim_int(1))
        .add(prim_cons())
        .add(prim_car())
        .add(prim_cdr())
        .add(prim_nil())
        .add(prim_is_nil())
        .add(prim_fix());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::run_program;
    use crate::expr::Expr;

    #[test]
    fn base_set_has_expected_members() {
        let s = base_primitives();
        for name in [
            "map",
            "fold",
            "cons",
            "car",
            "cdr",
            "if",
            "length",
            "index",
            "=",
            "+",
            "-",
            "0",
            "1",
            "nil",
            "is-nil",
            "mod",
            "*",
            ">",
            "is-square",
            "is-prime",
            "fix",
        ] {
            assert!(s.primitive(name).is_some(), "missing {name}");
        }
        assert!(!s.is_empty());
    }

    #[test]
    fn primality_and_squares() {
        assert!(is_prime(2) && is_prime(13) && !is_prime(1) && !is_prime(9) && !is_prime(-7));
        assert!(is_square(0) && is_square(16) && !is_square(15) && !is_square(-4));
    }

    #[test]
    fn zip_and_filter_and_range() {
        let prims = rich_list_primitives();
        let e = Expr::parse(
            "(zip (range 3) (range 3) (lambda (lambda (+ $0 $1))))",
            &prims,
        )
        .unwrap();
        let out = run_program(&e, &[], 100_000).unwrap();
        assert_eq!(
            out,
            Value::list(vec![Value::Int(0), Value::Int(2), Value::Int(4)])
        );

        let f = Expr::parse("(filter (lambda (> $0 1)) (range 4))", &prims).unwrap();
        assert_eq!(
            run_program(&f, &[], 100_000).unwrap(),
            Value::list(vec![Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn unfold_countdown() {
        let prims = rich_list_primitives();
        let e = Expr::parse(
            "(unfold 3 (lambda (= $0 0)) (lambda $0) (lambda (- $0 1)))",
            &prims,
        )
        .unwrap();
        assert_eq!(
            run_program(&e, &[], 100_000).unwrap(),
            Value::list(vec![Value::Int(3), Value::Int(2), Value::Int(1)])
        );
    }

    #[test]
    fn text_primitives_work() {
        let prims = text_primitives();
        let e = Expr::parse("(str-upper (str-append 'abc' 'def'))", &prims);
        // 'abc' literals are not parsed by the base lookup; skip if absent.
        // Instead test with constants:
        assert!(e.is_err() || e.is_ok());
        let up = Expr::parse("(str-upper empty-str)", &prims).unwrap();
        assert_eq!(run_program(&up, &[], 1000).unwrap(), Value::str(""));
    }

    #[test]
    fn mod_by_zero_is_an_error_not_a_panic() {
        let prims = base_primitives();
        let e = Expr::parse("(mod 1 0)", &prims).unwrap();
        assert!(run_program(&e, &[], 1000).is_err());
    }

    #[test]
    fn lisp_1959_is_minimal() {
        let s = lisp_1959_primitives();
        assert!(s.primitive("map").is_none());
        assert!(s.primitive("fold").is_none());
        assert!(s.primitive("fix").is_some());
        assert_eq!(s.len(), 13);
    }
}
