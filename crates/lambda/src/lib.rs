//! # dc-lambda
//!
//! The typed λ-calculus substrate underlying DreamCoder-rs (a reproduction
//! of *DreamCoder: Bootstrapping Inductive Program Synthesis with Wake-Sleep
//! Library Learning*, PLDI 2021).
//!
//! This crate provides:
//!
//! * [`expr::Expr`] — de Bruijn λ-terms with primitives and *invented*
//!   library routines, plus parsing/printing, shifting, substitution and
//!   β-reduction;
//! * [`types::Type`] / [`types::Context`] — Hindley–Milner polymorphic
//!   types and unification;
//! * [`eval::EvalCtx`] — a fuel-limited call-by-value evaluator with
//!   higher-order primitives and the `fix` combinator;
//! * [`primitives`] — the paper's base languages (list, text, 1959-Lisp).
//!
//! # Example
//!
//! ```
//! use dc_lambda::expr::Expr;
//! use dc_lambda::eval::{run_program, Value};
//! use dc_lambda::primitives::base_primitives;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prims = base_primitives();
//! let double_all = Expr::parse("(lambda (map (lambda (+ $0 $0)) $0))", &prims)?;
//! let input = Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
//! let output = run_program(&double_all, &[input], 10_000)?;
//! assert_eq!(output, Value::list(vec![Value::Int(2), Value::Int(4), Value::Int(6)]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod expr;
pub mod pretty;
pub mod primitives;
pub mod types;

pub use error::{EvalError, ParseError};
pub use eval::{run_program, Env, EvalCtx, Value};
pub use expr::{Expr, Invented, Primitive, PrimitiveLookup, Semantics};
pub use pretty::pretty;
pub use primitives::{base_primitives, lisp_1959_primitives, text_primitives, PrimitiveSet};
pub use types::{Context, Type, UnificationError};
