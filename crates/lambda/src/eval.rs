//! Fuel-limited call-by-value evaluation of λ-expressions.
//!
//! Random programs sampled during dreaming routinely diverge (infinite
//! `fix` recursion, exponential blowups), so every evaluation carries a
//! step budget and aborts cleanly when it is exhausted.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::error::EvalError;
use crate::expr::{Expr, Primitive, Semantics};

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// Machine integer.
    Int(i64),
    /// Floating point number (symbolic regression / physics).
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// Character (text domain).
    Char(char),
    /// String (text domain).
    Str(Arc<str>),
    /// Homogeneous list.
    List(Arc<Vec<Value>>),
    /// A λ-abstraction closed over its environment.
    Closure {
        /// The abstraction body.
        body: Arc<Expr>,
        /// Captured environment.
        env: Env,
    },
    /// A primitive partially applied to fewer arguments than its arity.
    Partial {
        /// The primitive being applied.
        prim: Arc<Primitive>,
        /// Arguments collected so far (≤ arity).
        args: Vec<Value>,
    },
    /// A domain-specific opaque value (turtle state, tower state, regex...).
    Opaque {
        /// Domain tag, e.g. `"logo"`.
        tag: &'static str,
        /// The payload; domains downcast it.
        data: Arc<dyn Any + Send + Sync>,
    },
}

impl Value {
    /// Build a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// Build a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Build an opaque domain value.
    pub fn opaque<T: Any + Send + Sync>(tag: &'static str, data: T) -> Value {
        Value::Opaque {
            tag,
            data: Arc::new(data),
        }
    }

    /// Extract an integer.
    ///
    /// # Errors
    /// Type error if the value is not an [`Value::Int`].
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(EvalError::type_error("int", other)),
        }
    }

    /// Extract a real; integers are promoted.
    ///
    /// # Errors
    /// Type error if the value is not numeric.
    pub fn as_real(&self) -> Result<f64, EvalError> {
        match self {
            Value::Real(r) => Ok(*r),
            Value::Int(i) => Ok(*i as f64),
            other => Err(EvalError::type_error("real", other)),
        }
    }

    /// Extract a boolean.
    ///
    /// # Errors
    /// Type error if the value is not a [`Value::Bool`].
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::type_error("bool", other)),
        }
    }

    /// Extract a character.
    ///
    /// # Errors
    /// Type error if the value is not a [`Value::Char`].
    pub fn as_char(&self) -> Result<char, EvalError> {
        match self {
            Value::Char(c) => Ok(*c),
            other => Err(EvalError::type_error("char", other)),
        }
    }

    /// Extract a string slice.
    ///
    /// # Errors
    /// Type error if the value is not a [`Value::Str`].
    pub fn as_str(&self) -> Result<&str, EvalError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(EvalError::type_error("str", other)),
        }
    }

    /// Extract a list.
    ///
    /// # Errors
    /// Type error if the value is not a [`Value::List`].
    pub fn as_list(&self) -> Result<&[Value], EvalError> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(EvalError::type_error("list", other)),
        }
    }

    /// Downcast an opaque value with the given tag.
    ///
    /// # Errors
    /// Type error on tag or payload-type mismatch.
    pub fn as_opaque<T: Any + Send + Sync>(&self, want_tag: &'static str) -> Result<&T, EvalError> {
        match self {
            Value::Opaque { tag, data } if *tag == want_tag => data
                .downcast_ref::<T>()
                .ok_or_else(|| EvalError::type_error(want_tag, self)),
            other => Err(EvalError::type_error(want_tag, other)),
        }
    }

    /// Is this value a function (closure or unsaturated primitive)?
    pub fn is_function(&self) -> bool {
        matches!(self, Value::Closure { .. } | Value::Partial { .. })
    }

    /// A short tag naming the runtime kind of this value (for diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Bool(_) => "bool",
            Value::Char(_) => "char",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Closure { .. } => "closure",
            Value::Partial { .. } => "partial",
            Value::Opaque { tag, .. } => tag,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Char(c) => write!(f, "{c:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(l) => f.debug_list().entries(l.iter()).finish(),
            Value::Closure { body, .. } => write!(f, "<closure {body}>"),
            Value::Partial { prim, args } => {
                write!(
                    f,
                    "<{}/{} applied to {}>",
                    prim.name,
                    prim.arity(),
                    args.len()
                )
            }
            Value::Opaque { tag, .. } => write!(f, "<{tag}>"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan()),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Opaque { tag: t1, data: d1 }, Value::Opaque { tag: t2, data: d2 }) => {
                t1 == t2 && Arc::ptr_eq(d1, d2)
            }
            _ => false,
        }
    }
}

/// A persistent environment: a cons-list of values, innermost binding first.
#[derive(Clone, Default)]
pub struct Env(Option<Arc<EnvNode>>);

struct EnvNode {
    head: Value,
    tail: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env(None)
    }

    /// Extend with a new innermost binding. O(1); shares the tail.
    pub fn push(&self, v: Value) -> Env {
        Env(Some(Arc::new(EnvNode {
            head: v,
            tail: self.clone(),
        })))
    }

    /// Look up de Bruijn index `i`.
    pub fn lookup(&self, i: usize) -> Option<&Value> {
        let mut cur = self;
        let mut i = i;
        loop {
            let node = cur.0.as_deref()?;
            if i == 0 {
                return Some(&node.head);
            }
            i -= 1;
            cur = &node.tail;
        }
    }

    /// Number of bindings (O(n), for diagnostics).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = cur.0.as_deref() {
            n += 1;
            cur = &node.tail;
        }
        n
    }

    /// True when no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<env of {} bindings>", self.len())
    }
}

/// Evaluation context: the remaining fuel plus output-size guards.
#[derive(Debug)]
pub struct EvalCtx {
    fuel: u64,
    depth: usize,
    /// Maximum native recursion depth (guards the Rust stack against deep
    /// `fix` unrollings before fuel runs out).
    pub max_depth: usize,
    /// Maximum length of any list built during evaluation.
    pub max_list_len: usize,
    /// Maximum length of any string built during evaluation.
    pub max_str_len: usize,
}

impl EvalCtx {
    /// A context with the given step budget.
    pub fn with_fuel(fuel: u64) -> EvalCtx {
        EvalCtx {
            fuel,
            depth: 0,
            max_depth: 700,
            max_list_len: 10_000,
            max_str_len: 10_000,
        }
    }

    fn enter(&mut self) -> Result<(), EvalError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            Err(EvalError::FuelExhausted)
        } else {
            Ok(())
        }
    }

    fn exit(&mut self) {
        self.depth -= 1;
    }

    /// Remaining fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Consume `n` fuel.
    ///
    /// # Errors
    /// [`EvalError::FuelExhausted`] when the budget runs out.
    pub fn burn(&mut self, n: u64) -> Result<(), EvalError> {
        if self.fuel < n {
            self.fuel = 0;
            Err(EvalError::FuelExhausted)
        } else {
            self.fuel -= n;
            Ok(())
        }
    }

    /// Evaluate an expression in an environment.
    ///
    /// # Errors
    /// Any runtime failure: fuel exhaustion, type confusion inside
    /// primitives, partial operations on empty data, etc.
    pub fn eval(&mut self, expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        self.enter()?;
        let result = self.eval_inner(expr, env);
        self.exit();
        result
    }

    fn eval_inner(&mut self, expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        self.burn(1)?;
        match expr {
            Expr::Index(i) => env
                .lookup(*i)
                .cloned()
                .ok_or_else(|| EvalError::runtime(format!("unbound index ${i}"))),
            Expr::Primitive(p) => self.primitive_value(p),
            Expr::Invented(inv) => {
                // Inventions are closed, so evaluate under the empty env.
                self.eval(&inv.body, &Env::new())
            }
            Expr::Abstraction(b) => Ok(Value::Closure {
                body: Arc::clone(b),
                env: env.clone(),
            }),
            Expr::Application(_, _) => {
                // Collect the application spine for lazy control primitives.
                let mut spine = Vec::new();
                let mut cur = expr;
                while let Expr::Application(f, x) = cur {
                    spine.push(&**x);
                    cur = f;
                }
                spine.reverse();
                // `if` is the one lazy form: evaluate its condition first.
                if let Expr::Primitive(p) = cur {
                    if matches!(p.sem, Semantics::If) && spine.len() >= 3 {
                        let cond = self.eval(spine[0], env)?.as_bool()?;
                        let branch = if cond { spine[1] } else { spine[2] };
                        let mut result = self.eval(branch, env)?;
                        for extra in &spine[3..] {
                            let arg = self.eval(extra, env)?;
                            result = self.apply(result, arg)?;
                        }
                        return Ok(result);
                    }
                }
                let mut fun = self.eval(cur, env)?;
                for arg_expr in &spine {
                    let arg = self.eval(arg_expr, env)?;
                    fun = self.apply(fun, arg)?;
                }
                Ok(fun)
            }
        }
    }

    fn primitive_value(&mut self, p: &Arc<Primitive>) -> Result<Value, EvalError> {
        match &p.sem {
            Semantics::Constant(v) => Ok(v.clone()),
            _ => Ok(Value::Partial {
                prim: Arc::clone(p),
                args: Vec::new(),
            }),
        }
    }

    /// Apply a function value to an argument value.
    ///
    /// # Errors
    /// Fails when `fun` is not a function, or when saturated primitive
    /// semantics fail.
    pub fn apply(&mut self, fun: Value, arg: Value) -> Result<Value, EvalError> {
        self.enter()?;
        let result = self.apply_inner(fun, arg);
        self.exit();
        result
    }

    fn apply_inner(&mut self, fun: Value, arg: Value) -> Result<Value, EvalError> {
        self.burn(1)?;
        match fun {
            Value::Closure { body, env } => self.eval(&body, &env.push(arg)),
            Value::Partial { prim, mut args } => {
                args.push(arg);
                if args.len() < prim.arity() {
                    return Ok(Value::Partial { prim, args });
                }
                match &prim.sem {
                    Semantics::Constant(_) => {
                        Err(EvalError::runtime("applied a constant primitive"))
                    }
                    Semantics::Function(f) => f(&args, self),
                    Semantics::If => {
                        // Reached only when `if` escapes first-order position
                        // (e.g. passed to map); args are already evaluated.
                        let cond = args[0].as_bool()?;
                        Ok(if cond {
                            args[1].clone()
                        } else {
                            args[2].clone()
                        })
                    }
                    Semantics::Fix => {
                        // (fix f) x  =  f (fix f) x
                        self.burn(1)?;
                        let f = args[0].clone();
                        let x = args[1].clone();
                        let recur = Value::Partial {
                            prim: Arc::clone(&prim),
                            args: vec![f.clone()],
                        };
                        let step = self.apply(f, recur)?;
                        self.apply(step, x)
                    }
                }
            }
            other => Err(EvalError::type_error("function", &other)),
        }
    }

    /// Evaluate a closed program applied to the given input values.
    ///
    /// # Errors
    /// See [`EvalCtx::eval`].
    pub fn run(&mut self, program: &Expr, inputs: &[Value]) -> Result<Value, EvalError> {
        let result = self.run_inner(program, inputs);
        if dc_telemetry::is_enabled() {
            dc_telemetry::incr("eval.runs");
            match &result {
                Ok(_) => {}
                Err(EvalError::FuelExhausted) => dc_telemetry::incr("eval.fuel_exhausted"),
                Err(_) => dc_telemetry::incr("eval.errors"),
            }
        }
        result
    }

    fn run_inner(&mut self, program: &Expr, inputs: &[Value]) -> Result<Value, EvalError> {
        let mut v = self.eval(program, &Env::new())?;
        for inp in inputs {
            v = self.apply(v, inp.clone())?;
        }
        Ok(v)
    }
}

/// Convenience: run `program` on `inputs` with a fresh budget of `fuel`.
///
/// # Errors
/// See [`EvalCtx::eval`].
pub fn run_program(program: &Expr, inputs: &[Value], fuel: u64) -> Result<Value, EvalError> {
    EvalCtx::with_fuel(fuel).run(program, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::base_primitives;

    fn run(src: &str, inputs: &[Value]) -> Result<Value, EvalError> {
        let e = Expr::parse(src, &base_primitives()).unwrap();
        run_program(&e, inputs, 100_000)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("(+ 1 1)", &[]).unwrap(), Value::Int(2));
        assert_eq!(
            run("(* (+ 1 1) (+ 1 (+ 1 1)))", &[]).unwrap(),
            Value::Int(6)
        );
        assert_eq!(run("(- 0 1)", &[]).unwrap(), Value::Int(-1));
    }

    #[test]
    fn conditional_is_lazy() {
        // The dead branch divides by zero; laziness means no error.
        assert_eq!(run("(if true 1 (mod 1 0))", &[]).unwrap(), Value::Int(1));
        assert!(run("(if false 1 (mod 1 0))", &[]).is_err());
    }

    #[test]
    fn map_over_list() {
        let input = Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let out = run("(lambda (map (lambda (+ $0 $0)) $0))", &[input]).unwrap();
        assert_eq!(
            out,
            Value::list(vec![Value::Int(2), Value::Int(4), Value::Int(6)])
        );
    }

    #[test]
    fn fold_builds_sum() {
        let input = Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let out = run("(lambda (fold $0 0 (lambda (lambda (+ $0 $1)))))", &[input]).unwrap();
        assert_eq!(out, Value::Int(6));
    }

    #[test]
    fn fix_computes_recursion() {
        // length via fix: fix (\r l -> if nil? l then 0 else 1 + r (cdr l))
        let src = "(lambda (fix (lambda (lambda (if (is-nil $0) 0 (+ 1 ($1 (cdr $0)))))) $0))";
        let input = Value::list(vec![Value::Int(5), Value::Int(5), Value::Int(5)]);
        assert_eq!(run(src, &[input]).unwrap(), Value::Int(3));
    }

    #[test]
    fn infinite_recursion_exhausts_fuel() {
        let src = "(lambda (fix (lambda (lambda ($1 $0))) $0))";
        let e = Expr::parse(src, &base_primitives()).unwrap();
        let err = run_program(&e, &[Value::Int(0)], 10_000).unwrap_err();
        assert!(matches!(err, EvalError::FuelExhausted));
    }

    #[test]
    fn car_of_empty_list_errors() {
        let empty = Value::list(vec![]);
        assert!(run("(lambda (car $0))", &[empty]).is_err());
    }

    #[test]
    fn env_lookup_and_sharing() {
        let env = Env::new().push(Value::Int(1)).push(Value::Int(2));
        assert_eq!(env.lookup(0), Some(&Value::Int(2)));
        assert_eq!(env.lookup(1), Some(&Value::Int(1)));
        assert_eq!(env.lookup(2), None);
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
        assert!(Env::new().is_empty());
    }

    #[test]
    fn value_equality_semantics() {
        assert_eq!(Value::Real(1.0), Value::Real(1.0 + 1e-12));
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_eq!(Value::str("ab"), Value::str("ab"));
    }

    #[test]
    fn higher_order_primitive_value() {
        // Pass `+` itself to a function.
        let out = run("((lambda ($0 1 1)) +)", &[]).unwrap();
        assert_eq!(out, Value::Int(2));
    }

    #[test]
    fn partial_application_is_a_value() {
        let out = run("(map (+ 1) (cons 0 (cons 1 nil)))", &[]).unwrap();
        assert_eq!(out, Value::list(vec![Value::Int(1), Value::Int(2)]));
    }
}
