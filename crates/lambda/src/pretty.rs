//! Human-friendly pretty-printing of λ-expressions with named variables.
//!
//! De Bruijn indices are unbeatable for the machinery but painful to read;
//! the paper's figures print programs with named binders
//! (`(λ (z) (+ z z))`). [`pretty`] converts `$i` indices to names `a, b,
//! c, ..., z, v26, v27, ...`, innermost binder latest.

use crate::expr::Expr;

/// Render an expression with named variables, e.g.
/// `(lambda (+ $0 $0))` → `(λ (a) (+ a a))`.
pub fn pretty(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(expr, &mut Vec::new(), false, &mut out);
    out
}

fn var_name(binder_index: usize) -> String {
    if binder_index < 26 {
        ((b'a' + binder_index as u8) as char).to_string()
    } else {
        format!("v{binder_index}")
    }
}

fn write_expr(expr: &Expr, env: &mut Vec<String>, in_spine: bool, out: &mut String) {
    match expr {
        Expr::Index(i) => {
            let name = env
                .len()
                .checked_sub(i + 1)
                .and_then(|slot| env.get(slot).cloned())
                .unwrap_or_else(|| format!("free{i}"));
            out.push_str(&name);
        }
        Expr::Primitive(p) => out.push_str(&p.name),
        Expr::Invented(inv) => out.push_str(&inv.name),
        Expr::Abstraction(_) => {
            // Collapse runs of λs into one binder list.
            let mut names = Vec::new();
            let mut cur = expr;
            while let Expr::Abstraction(b) = cur {
                names.push(var_name(env.len() + names.len()));
                cur = b;
            }
            out.push_str("(λ (");
            out.push_str(&names.join(" "));
            out.push_str(") ");
            let depth = names.len();
            env.extend(names);
            write_expr(cur, env, false, out);
            env.truncate(env.len() - depth);
            out.push(')');
        }
        Expr::Application(f, x) => {
            if !in_spine {
                out.push('(');
            }
            write_expr(f, env, true, out);
            out.push(' ');
            write_expr(x, env, false, out);
            if !in_spine {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::base_primitives;

    fn p(src: &str) -> String {
        pretty(&Expr::parse(src, &base_primitives()).unwrap())
    }

    #[test]
    fn names_single_binder() {
        assert_eq!(p("(lambda (+ $0 $0))"), "(λ (a) (+ a a))");
    }

    #[test]
    fn collapses_binder_runs_and_orders_names() {
        assert_eq!(p("(lambda (lambda (+ $1 $0)))"), "(λ (a b) (+ a b))");
    }

    #[test]
    fn nested_binders_get_fresh_names() {
        assert_eq!(
            p("(lambda (map (lambda (+ $0 $1)) $0))"),
            "(λ (a) (map (λ (b) (+ b a)) a))"
        );
    }

    #[test]
    fn free_indices_are_marked() {
        assert_eq!(pretty(&Expr::Index(2)), "free2");
    }

    #[test]
    fn application_spines_share_parens() {
        assert_eq!(p("(+ 1 (+ 0 1))"), "(+ 1 (+ 0 1))");
    }
}
