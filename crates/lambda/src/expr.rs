//! λ-calculus expressions in de Bruijn notation.
//!
//! An [`Expr`] is an index (`$0`, `$1`, ...), a primitive, an *invented*
//! library routine (a named, closed expression produced by abstraction
//! sleep), an abstraction `(λ body)`, or an application `(f x)`. This is
//! exactly the term language of the paper (§3, Definition 3.1 minus the
//! version-space constructors, which live in `dc-vspace`).

use std::fmt;
use std::sync::Arc;

use crate::error::{EvalError, ParseError};
use crate::eval::{EvalCtx, Value};
use crate::types::{Context, Type};

/// The implementation of a strict primitive: evaluated arguments in, value
/// out, with evaluator access for higher-order primitives.
pub type PrimitiveFn = dyn Fn(&[Value], &mut EvalCtx) -> Result<Value, EvalError> + Send + Sync;

/// Semantics of a primitive: either a constant value or a strict n-ary
/// function over evaluated arguments (which may re-enter the evaluator, e.g.
/// `map` applying its function argument).
#[derive(Clone)]
pub enum Semantics {
    /// A constant (e.g. the number `0`, the empty list `nil`).
    Constant(Value),
    /// A strict function of `arity` evaluated arguments.
    Function(Arc<PrimitiveFn>),
    /// Lazy conditional: `(if c a b)` evaluates `c`, then only one branch.
    If,
    /// Fixed point combinator: `(fix f) x` unrolls to `f (fix f) x`.
    Fix,
}

impl fmt::Debug for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::Constant(v) => write!(f, "Constant({v:?})"),
            Semantics::Function(_) => write!(f, "Function(..)"),
            Semantics::If => write!(f, "If"),
            Semantics::Fix => write!(f, "Fix"),
        }
    }
}

/// A named primitive with a (possibly polymorphic) type and semantics.
#[derive(Debug)]
pub struct Primitive {
    /// Surface name used for parsing and printing.
    pub name: String,
    /// Polymorphic type; variables are implicitly universally quantified.
    pub ty: Type,
    /// Evaluation semantics.
    pub sem: Semantics,
}

impl Primitive {
    /// Create a constant primitive.
    pub fn constant(name: &str, ty: Type, value: Value) -> Arc<Primitive> {
        Arc::new(Primitive {
            name: name.to_owned(),
            ty,
            sem: Semantics::Constant(value),
        })
    }

    /// Create a strict function primitive.
    pub fn function<F>(name: &str, ty: Type, f: F) -> Arc<Primitive>
    where
        F: Fn(&[Value], &mut EvalCtx) -> Result<Value, EvalError> + Send + Sync + 'static,
    {
        Arc::new(Primitive {
            name: name.to_owned(),
            ty,
            sem: Semantics::Function(Arc::new(f)),
        })
    }

    /// The number of arguments the primitive consumes before its semantics
    /// fire (the arity of its type).
    pub fn arity(&self) -> usize {
        self.ty.arity()
    }
}

impl PartialEq for Primitive {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}
impl Eq for Primitive {}
impl std::hash::Hash for Primitive {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

/// A library routine invented during abstraction sleep: a closed expression
/// with a canonical type, given a short name for printing.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Invented {
    /// Display name, e.g. `f7` or `#(lambda (map $0 ...))`.
    pub name: String,
    /// The closed body the routine abbreviates.
    pub body: Expr,
    /// Canonicalized inferred type of `body`.
    pub ty: Type,
}

impl Invented {
    /// Wrap a closed expression as an invented library routine.
    ///
    /// # Errors
    /// Fails if `body` does not typecheck.
    pub fn new(name: &str, body: Expr) -> Result<Arc<Invented>, crate::types::UnificationError> {
        let ty = body.infer()?.canonicalize();
        Ok(Arc::new(Invented {
            name: name.to_owned(),
            body,
            ty,
        }))
    }
}

/// A λ-calculus expression in de Bruijn notation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Bound variable `$i`.
    Index(usize),
    /// A primitive from the base language.
    Primitive(Arc<Primitive>),
    /// A learned library routine.
    Invented(Arc<Invented>),
    /// `(λ body)`.
    Abstraction(Arc<Expr>),
    /// `(f x)`.
    Application(Arc<Expr>, Arc<Expr>),
}

impl Expr {
    /// `(λ body)`.
    pub fn abstraction(body: Expr) -> Expr {
        Expr::Abstraction(Arc::new(body))
    }

    /// `(f x)`.
    pub fn application(f: Expr, x: Expr) -> Expr {
        Expr::Application(Arc::new(f), Arc::new(x))
    }

    /// Apply `f` to each of `args` left to right.
    pub fn apply_all(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
        args.into_iter().fold(f, Expr::application)
    }

    /// Number of nodes in the syntax tree. Inventions count as size 1
    /// (`size(ρ|D)` from §3.1 with the current library's members opaque).
    pub fn size(&self) -> usize {
        match self {
            Expr::Index(_) | Expr::Primitive(_) | Expr::Invented(_) => 1,
            Expr::Abstraction(b) => 1 + b.size(),
            Expr::Application(f, x) => 1 + f.size() + x.size(),
        }
    }

    /// Size when invented routines are expanded to base primitives.
    pub fn size_expanded(&self) -> usize {
        match self {
            Expr::Index(_) | Expr::Primitive(_) => 1,
            Expr::Invented(inv) => inv.body.size_expanded(),
            Expr::Abstraction(b) => 1 + b.size_expanded(),
            Expr::Application(f, x) => 1 + f.size_expanded() + x.size_expanded(),
        }
    }

    /// Maximum nesting depth of the syntax tree.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Index(_) | Expr::Primitive(_) | Expr::Invented(_) => 1,
            Expr::Abstraction(b) => 1 + b.depth(),
            Expr::Application(f, x) => 1 + b_max(f.depth(), x.depth()),
        }
    }

    /// Iterate over all subexpressions, including `self`, preorder.
    pub fn subexpressions(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(e) = stack.pop() {
            out.push(e);
            match e {
                Expr::Abstraction(b) => stack.push(b),
                Expr::Application(f, x) => {
                    stack.push(x);
                    stack.push(f);
                }
                _ => {}
            }
        }
        out
    }

    /// Free de Bruijn indices, adjusted for binders above them.
    pub fn free_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_free(0, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_free(&self, depth: usize, out: &mut Vec<usize>) {
        match self {
            Expr::Index(i) if *i >= depth => out.push(i - depth),
            Expr::Abstraction(b) => b.collect_free(depth + 1, out),
            Expr::Application(f, x) => {
                f.collect_free(depth, out);
                x.collect_free(depth, out);
            }
            _ => {}
        }
    }

    /// True when the expression has no free de Bruijn indices.
    pub fn is_closed(&self) -> bool {
        self.free_indices().is_empty()
    }

    /// Shift free indices `>= cutoff` by `delta` (may be negative).
    /// Returns `None` if a variable would become negative.
    pub fn shift_from(&self, delta: i64, cutoff: usize) -> Option<Expr> {
        match self {
            Expr::Index(i) => {
                if *i < cutoff {
                    Some(self.clone())
                } else {
                    let j = *i as i64 + delta;
                    if j < cutoff as i64 {
                        None
                    } else {
                        Some(Expr::Index(j as usize))
                    }
                }
            }
            Expr::Primitive(_) | Expr::Invented(_) => Some(self.clone()),
            Expr::Abstraction(b) => Some(Expr::abstraction(b.shift_from(delta, cutoff + 1)?)),
            Expr::Application(f, x) => Some(Expr::application(
                f.shift_from(delta, cutoff)?,
                x.shift_from(delta, cutoff)?,
            )),
        }
    }

    /// Shift all free indices by `delta`.
    pub fn shift(&self, delta: i64) -> Option<Expr> {
        self.shift_from(delta, 0)
    }

    /// Substitute `value` for index `index` (capture-avoiding).
    pub fn substitute(&self, index: usize, value: &Expr) -> Expr {
        match self {
            Expr::Index(i) => {
                if *i == index {
                    value.clone()
                } else if *i > index {
                    // A binder was removed below this variable.
                    Expr::Index(i - 1)
                } else {
                    self.clone()
                }
            }
            Expr::Primitive(_) | Expr::Invented(_) => self.clone(),
            Expr::Abstraction(b) => {
                let shifted = value.shift(1).expect("shifting up cannot fail");
                Expr::abstraction(b.substitute(index + 1, &shifted))
            }
            Expr::Application(f, x) => {
                Expr::application(f.substitute(index, value), x.substitute(index, value))
            }
        }
    }

    /// Perform one leftmost-outermost β-reduction step, if any redex exists.
    pub fn beta_step(&self) -> Option<Expr> {
        match self {
            Expr::Application(f, x) => {
                if let Expr::Abstraction(body) = &**f {
                    return Some(body.substitute(0, x));
                }
                if let Some(f2) = f.beta_step() {
                    return Some(Expr::application(f2, (**x).clone()));
                }
                x.beta_step().map(|x2| Expr::application((**f).clone(), x2))
            }
            Expr::Abstraction(b) => b.beta_step().map(Expr::abstraction),
            _ => None,
        }
    }

    /// β-normal form, bounded by `fuel` reduction steps.
    /// Returns `None` if the bound is exhausted.
    pub fn beta_normal_form(&self, fuel: usize) -> Option<Expr> {
        let mut cur = self.clone();
        for _ in 0..fuel {
            match cur.beta_step() {
                Some(next) => cur = next,
                None => return Some(cur),
            }
        }
        if cur.beta_step().is_none() {
            Some(cur)
        } else {
            None
        }
    }

    /// Replace invented routines by their bodies, recursively.
    pub fn strip_inventions(&self) -> Expr {
        match self {
            Expr::Invented(inv) => inv.body.strip_inventions(),
            Expr::Abstraction(b) => Expr::abstraction(b.strip_inventions()),
            Expr::Application(f, x) => {
                Expr::application(f.strip_inventions(), x.strip_inventions())
            }
            _ => self.clone(),
        }
    }

    /// Infer the type of a closed expression.
    ///
    /// # Errors
    /// Returns a [`crate::types::UnificationError`] if the expression is
    /// ill-typed or contains unbound indices.
    pub fn infer(&self) -> Result<Type, crate::types::UnificationError> {
        let mut ctx = Context::new();
        let ty = self.infer_with(&mut ctx, &[])?;
        Ok(ty.apply(&ctx))
    }

    /// Infer a type under an environment of bound-variable types
    /// (innermost binder first).
    ///
    /// # Errors
    /// See [`Expr::infer`].
    pub fn infer_with(
        &self,
        ctx: &mut Context,
        env: &[Type],
    ) -> Result<Type, crate::types::UnificationError> {
        match self {
            Expr::Index(i) => match env.get(*i) {
                Some(t) => Ok(t.clone()),
                None => Err(crate::types::UnificationError {
                    left: format!("${i}"),
                    right: "unbound index".to_owned(),
                }),
            },
            Expr::Primitive(p) => Ok(p.ty.instantiate(ctx)),
            Expr::Invented(inv) => Ok(inv.ty.instantiate(ctx)),
            Expr::Abstraction(b) => {
                let arg = ctx.fresh_variable();
                let mut env2 = Vec::with_capacity(env.len() + 1);
                env2.push(arg.clone());
                env2.extend_from_slice(env);
                let ret = b.infer_with(ctx, &env2)?;
                Ok(Type::arrow(arg, ret).apply(ctx))
            }
            Expr::Application(f, x) => {
                let ft = f.infer_with(ctx, env)?;
                let xt = x.infer_with(ctx, env)?;
                let ret = ctx.fresh_variable();
                ctx.unify(&ft, &Type::arrow(xt, ret.clone()))?;
                Ok(ret.apply(ctx))
            }
        }
    }

    /// Parse an expression from DreamCoder-style surface syntax:
    /// `(lambda (+ $0 1))`, `(map (lambda (* $0 $0)) $0)`, `#(...)` for
    /// inline inventions.
    ///
    /// # Errors
    /// Returns [`ParseError`] on malformed syntax or unknown primitive names.
    pub fn parse(src: &str, lookup: &dyn PrimitiveLookup) -> Result<Expr, ParseError> {
        let tokens = tokenize(src)?;
        let mut pos = 0;
        let expr = parse_expr(&tokens, &mut pos, lookup)?;
        if pos != tokens.len() {
            return Err(ParseError::new(format!(
                "trailing tokens after expression: {:?}",
                &tokens[pos..]
            )));
        }
        Ok(expr)
    }
}

fn b_max(a: usize, b: usize) -> usize {
    if a > b {
        a
    } else {
        b
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Index(i) => write!(f, "${i}"),
            Expr::Primitive(p) => write!(f, "{}", p.name),
            Expr::Invented(inv) => write!(f, "{}", inv.name),
            Expr::Abstraction(b) => write!(f, "(lambda {b})"),
            Expr::Application(_, _) => {
                // Print the whole application spine in one set of parens.
                let mut spine = Vec::new();
                let mut cur = self;
                while let Expr::Application(g, x) = cur {
                    spine.push(&**x);
                    cur = g;
                }
                write!(f, "({cur}")?;
                for arg in spine.iter().rev() {
                    write!(f, " {arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Resolves primitive and invention names during parsing.
pub trait PrimitiveLookup {
    /// Look up a primitive by surface name.
    fn primitive(&self, name: &str) -> Option<Arc<Primitive>>;
    /// Look up an invented routine by surface name (e.g. `f3`).
    fn invented(&self, _name: &str) -> Option<Arc<Invented>> {
        None
    }
}

/// A simple lookup over a slice of primitives.
impl PrimitiveLookup for [Arc<Primitive>] {
    fn primitive(&self, name: &str) -> Option<Arc<Primitive>> {
        self.iter().find(|p| p.name == name).cloned()
    }
}

impl PrimitiveLookup for Vec<Arc<Primitive>> {
    fn primitive(&self, name: &str) -> Option<Arc<Primitive>> {
        self.as_slice().primitive(name)
    }
}

fn tokenize(src: &str) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(c.to_string());
            }
            '\'' => {
                // Quoted string constant token: 'text'
                let mut s = String::from("'");
                for c2 in chars.by_ref() {
                    if c2 == '\'' {
                        break;
                    }
                    s.push(c2);
                }
                s.push('\'');
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(s);
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    if tokens.is_empty() {
        return Err(ParseError::new("empty input"));
    }
    Ok(tokens)
}

fn parse_expr(
    tokens: &[String],
    pos: &mut usize,
    lookup: &dyn PrimitiveLookup,
) -> Result<Expr, ParseError> {
    let tok = tokens
        .get(*pos)
        .ok_or_else(|| ParseError::new("unexpected end of input"))?
        .clone();
    *pos += 1;
    match tok.as_str() {
        "(" => {
            let head = tokens
                .get(*pos)
                .ok_or_else(|| ParseError::new("unexpected end of input after ("))?;
            if head == "lambda" || head == "λ" {
                *pos += 1;
                let body = parse_expr(tokens, pos, lookup)?;
                expect(tokens, pos, ")")?;
                return Ok(Expr::abstraction(body));
            }
            let mut expr = parse_expr(tokens, pos, lookup)?;
            loop {
                let next = tokens
                    .get(*pos)
                    .ok_or_else(|| ParseError::new("unclosed ("))?;
                if next == ")" {
                    *pos += 1;
                    return Ok(expr);
                }
                let arg = parse_expr(tokens, pos, lookup)?;
                expr = Expr::application(expr, arg);
            }
        }
        ")" => Err(ParseError::new("unexpected )")),
        "#" => {
            // `#(...)` invention literal: the body is the next expression.
            let body = parse_expr(tokens, pos, lookup)?;
            let name = format!("#{body}");
            let inv = Invented::new(&name, body)
                .map_err(|e| ParseError::new(format!("ill-typed invention: {e}")))?;
            Ok(Expr::Invented(inv))
        }
        _ => parse_atom(&tok, lookup),
    }
}

fn expect(tokens: &[String], pos: &mut usize, want: &str) -> Result<(), ParseError> {
    match tokens.get(*pos) {
        Some(t) if t == want => {
            *pos += 1;
            Ok(())
        }
        other => Err(ParseError::new(format!(
            "expected {want:?}, found {other:?}"
        ))),
    }
}

fn parse_atom(tok: &str, lookup: &dyn PrimitiveLookup) -> Result<Expr, ParseError> {
    if let Some(rest) = tok.strip_prefix('$') {
        let i: usize = rest
            .parse()
            .map_err(|_| ParseError::new(format!("bad de Bruijn index {tok:?}")))?;
        return Ok(Expr::Index(i));
    }
    if let Some(p) = lookup.primitive(tok) {
        return Ok(Expr::Primitive(p));
    }
    if let Some(inv) = lookup.invented(tok) {
        return Ok(Expr::Invented(inv));
    }
    Err(ParseError::new(format!("unknown primitive {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::base_primitives;
    use crate::types::{tint, tlist};

    fn parse(s: &str) -> Expr {
        Expr::parse(s, &base_primitives()).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for src in [
            "(lambda (+ $0 1))",
            "(lambda (map (lambda (+ $0 $0)) $0))",
            "(lambda (if (is-nil $0) nil (cdr $0)))",
            "(lambda (fold $0 nil (lambda (lambda (cons $1 $0)))))",
            "0",
            "(+ 1 1)",
        ] {
            let e = parse(src);
            assert_eq!(e.to_string(), src, "round trip failed for {src}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        let prims = base_primitives();
        assert!(Expr::parse("(unknown-prim 1)", &prims).is_err());
        assert!(Expr::parse("(lambda", &prims).is_err());
        assert!(Expr::parse(")", &prims).is_err());
        assert!(Expr::parse("", &prims).is_err());
        assert!(Expr::parse("(+ 1 1) extra", &prims).is_err());
    }

    #[test]
    fn size_counts_nodes() {
        let e = parse("(lambda (+ $0 1))");
        // lambda, app(+,$0,1) = app(app(+,$0),1): 1 + (1+ (1+1+1) +1) = 6
        assert_eq!(e.size(), 6);
    }

    #[test]
    fn infer_simple_types() {
        let e = parse("(lambda (+ $0 1))");
        assert_eq!(
            e.infer().unwrap().canonicalize(),
            Type::arrow(tint(), tint())
        );
        let m = parse("(lambda (map (lambda (+ $0 $0)) $0))");
        assert_eq!(
            m.infer().unwrap().canonicalize(),
            Type::arrow(tlist(tint()), tlist(tint()))
        );
    }

    #[test]
    fn infer_rejects_ill_typed() {
        let e = parse("(+ 1 nil)");
        assert!(e.infer().is_err());
        let unbound = Expr::Index(3);
        assert!(unbound.infer().is_err());
    }

    #[test]
    fn free_indices_respect_binders() {
        let e = parse("(lambda ($0 $1 $3))");
        assert_eq!(e.free_indices(), vec![0, 2]);
        assert!(parse("(lambda $0)").is_closed());
    }

    #[test]
    fn shift_and_substitute() {
        let e = Expr::Index(0);
        assert_eq!(e.shift(2).unwrap(), Expr::Index(2));
        assert_eq!(Expr::Index(2).shift(-1).unwrap(), Expr::Index(1));
        assert!(Expr::Index(0).shift(-1).is_none());

        // ((lambda $0) x) beta-reduces to x
        let prims = base_primitives();
        let one = Expr::parse("1", &prims).unwrap();
        let id = Expr::abstraction(Expr::Index(0));
        let app = Expr::application(id, one.clone());
        assert_eq!(app.beta_normal_form(10).unwrap(), one);
    }

    #[test]
    fn beta_normal_form_of_k_combinator() {
        let prims = base_primitives();
        let k = Expr::parse("(lambda (lambda $1))", &prims).unwrap();
        let app = Expr::apply_all(
            k,
            [
                Expr::parse("0", &prims).unwrap(),
                Expr::parse("1", &prims).unwrap(),
            ],
        );
        assert_eq!(app.beta_normal_form(10).unwrap().to_string(), "0");
    }

    #[test]
    fn substitution_shifts_replacement_under_binders() {
        // (lambda ($1 $0)) with $0 := $5 (free var) must become
        // (lambda ($6 $0)): the replacement is shifted under the binder.
        let body = Expr::abstraction(Expr::application(Expr::Index(1), Expr::Index(0)));
        let result = body.substitute(0, &Expr::Index(5));
        assert_eq!(
            result,
            Expr::abstraction(Expr::application(Expr::Index(6), Expr::Index(0)))
        );
    }

    #[test]
    fn strip_inventions_expands() {
        let prims = base_primitives();
        let e = Expr::parse("(#(lambda (+ $0 $0)) 1)", &prims).unwrap();
        let stripped = e.strip_inventions();
        assert_eq!(stripped.to_string(), "((lambda (+ $0 $0)) 1)");
        assert_eq!(
            stripped.beta_normal_form(10).unwrap().to_string(),
            "(+ 1 1)"
        );
    }

    #[test]
    fn depth_and_subexpressions() {
        let e = parse("(+ (+ 1 1) 0)");
        assert!(e.depth() >= 3);
        assert_eq!(e.subexpressions().len(), e.size());
    }
}
