//! Error types for parsing and evaluation.

use std::fmt;

/// Error raised while parsing surface syntax into an [`crate::expr::Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    /// Create a parse error with the given message.
    pub fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Error raised during program evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The step budget ran out (likely divergence).
    FuelExhausted,
    /// A primitive received a value of the wrong runtime kind.
    TypeMismatch {
        /// What the primitive expected, e.g. `"int"`.
        expected: &'static str,
        /// What it actually saw (rendered).
        found: String,
    },
    /// Any other runtime failure (partial operations, bounds, etc.).
    Runtime(String),
}

impl EvalError {
    /// A runtime error with a message.
    pub fn runtime(msg: impl Into<String>) -> EvalError {
        EvalError::Runtime(msg.into())
    }

    /// A kind-mismatch error.
    pub fn type_error(expected: &'static str, found: &crate::eval::Value) -> EvalError {
        EvalError::TypeMismatch {
            expected,
            found: format!("{found:?}"),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::FuelExhausted => write!(f, "evaluation fuel exhausted"),
            EvalError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            EvalError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_no_period() {
        let e = EvalError::runtime("car of empty list");
        let s = e.to_string();
        assert!(s.starts_with("runtime error"));
        assert!(!s.ends_with('.'));
        assert_eq!(ParseError::new("x").to_string(), "parse error: x");
    }
}
