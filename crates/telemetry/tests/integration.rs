//! Cross-thread and serialization guarantees of the telemetry subsystem.

use std::io::Write;
use std::sync::Arc;

use dc_telemetry::{FieldValue, Histogram, Level};
use parking_lot::Mutex;

/// The enable flag and the event sink are process-global; tests that
/// touch them must not interleave.
fn serial() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let _guard = serial();
    dc_telemetry::enable();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 25_000;
    let counter = dc_telemetry::counter("test.concurrent.sum");
    let before = counter.value();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    counter.incr();
                }
            });
        }
    });
    assert_eq!(counter.value() - before, THREADS as u64 * PER_THREAD);
    dc_telemetry::disable();
}

#[test]
fn concurrent_histogram_records_lose_nothing() {
    let h = Histogram::new();
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record_ns(1 + t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_THREAD);
    // Sum of 1..=40_000.
    let n = THREADS * PER_THREAD;
    assert_eq!(h.sum_ns(), n * (n + 1) / 2);
    assert_eq!(h.max_ns(), n);
}

/// A `Write` that appends into a shared buffer, so the test can read back
/// what the sink wrote.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_sink_round_trips_through_serde_json() {
    let _guard = serial();
    dc_telemetry::enable();
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    dc_telemetry::set_event_sink(Box::new(buf.clone()), Level::Debug);
    dc_telemetry::event(
        Level::Info,
        "test.round_trip",
        &[
            ("count", FieldValue::U64(42)),
            ("loss", FieldValue::F64(0.125)),
            ("ok", FieldValue::Bool(true)),
            ("name", FieldValue::Str("quote \"me\"".to_owned())),
        ],
    );
    dc_telemetry::event(Level::Debug, "test.second", &[("n", FieldValue::I64(-3))]);
    dc_telemetry::clear_event_sink();
    let bytes = buf.0.lock().clone();
    dc_telemetry::disable();

    let text = String::from_utf8(bytes).expect("sink output is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSON object per emitted event");
    let first: serde_json::Value = serde_json::from_str(lines[0]).expect("line 0 parses");
    assert_eq!(first["event"].as_str(), Some("test.round_trip"));
    assert_eq!(first["level"].as_str(), Some("info"));
    assert_eq!(first["count"].as_u64(), Some(42));
    assert_eq!(first["loss"].as_f64(), Some(0.125));
    assert_eq!(first["ok"].as_bool(), Some(true));
    assert_eq!(first["name"].as_str(), Some("quote \"me\""));
    assert!(first["ts_ms"].as_u64().is_some(), "timestamp present");
    let second: serde_json::Value = serde_json::from_str(lines[1]).expect("line 1 parses");
    assert_eq!(second["event"].as_str(), Some("test.second"));
    assert_eq!(second["n"].as_i64(), Some(-3));
}

#[test]
fn events_below_sink_level_are_filtered() {
    let _guard = serial();
    dc_telemetry::enable();
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    dc_telemetry::set_event_sink(Box::new(buf.clone()), Level::Warn);
    assert!(!dc_telemetry::event_enabled(Level::Debug));
    assert!(dc_telemetry::event_enabled(Level::Warn));
    dc_telemetry::event(Level::Debug, "test.filtered", &[]);
    dc_telemetry::event(Level::Warn, "test.kept", &[]);
    dc_telemetry::clear_event_sink();
    let text = String::from_utf8(buf.0.lock().clone()).unwrap();
    dc_telemetry::disable();
    assert_eq!(text.lines().count(), 1);
    assert!(text.contains("test.kept"));
}

#[test]
fn snapshot_json_parses_back() {
    let _guard = serial();
    dc_telemetry::enable();
    dc_telemetry::add("test.export.counter", 5);
    dc_telemetry::set_gauge("test.export.gauge", 2.5);
    dc_telemetry::record_duration("test.export.hist", std::time::Duration::from_millis(3));
    let json = dc_telemetry::export_json();
    dc_telemetry::disable();
    let value: serde_json::Value = serde_json::from_str(&json).expect("export parses");
    assert_eq!(value["counters"]["test.export.counter"].as_u64(), Some(5));
    assert_eq!(value["gauges"]["test.export.gauge"].as_f64(), Some(2.5));
    assert!(value["histograms"]["test.export.hist"]["count"].as_u64() >= Some(1));
}
