//! Lock-free log-bucketed timing histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One bucket per power of two of nanoseconds: bucket `i` holds samples
/// in `[2^i, 2^(i+1))`, bucket 0 holds `[0, 2)`. 64 buckets cover any
/// `u64` nanosecond count (~584 years).
const BUCKETS: usize = 64;

/// Concurrent histogram of durations (recorded in nanoseconds).
///
/// Buckets are powers of two, so quantiles are exact to within a factor
/// of two — plenty for "where did the cycle's wall-clock go" questions,
/// and recording is a couple of relaxed atomic adds with no locking.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record a raw nanosecond sample.
    pub fn record_ns(&self, ns: u64) {
        let bucket = if ns < 2 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a duration sample.
    pub fn record(&self, duration: Duration) {
        self.record_ns(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// Per-bucket sample counts (bucket `i` holds samples in
    /// `[2^i, 2^(i+1))` ns) — what the Prometheus exposition walks.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Approximate quantile `q`, in nanoseconds: the upper bound of the
    /// bucket where the cumulative count crosses `q`, so the true
    /// quantile is within a factor of two below the returned value.
    /// Degenerate inputs are total: an empty histogram returns 0, `q`
    /// outside `[0, 1]` is clamped, and a NaN `q` reads as 0.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1, capped by max.
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_ns());
            }
        }
        self.max_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bound_known_uniform_distribution() {
        let h = Histogram::new();
        for ns in 1..=1000u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_ns(), 500_500);
        assert_eq!(h.max_ns(), 1000);
        // True p50 = 500; log buckets may report up to the next power of
        // two (1023) and never less than the true quantile.
        let p50 = h.quantile_ns(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile_ns(1.0), 1000);
    }

    #[test]
    fn point_mass_distribution_is_tight() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_ns(300);
        }
        // All mass in bucket [256, 512): every quantile reports within
        // that bucket, capped at the observed max.
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 300, "q = {q}");
        }
        assert_eq!(h.mean_ns(), 300.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        // Every quantile of an empty histogram is 0 — including the
        // extremes and out-of-range / NaN requests.
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile_ns(q), 0, "q = {q}");
        }
    }

    #[test]
    fn quantile_extremes_and_out_of_range_clamp() {
        let h = Histogram::new();
        for ns in [10u64, 100, 1000] {
            h.record_ns(ns);
        }
        // q = 0.0 still reports a real (lowest-bucket) value, q = 1.0 the
        // max; out-of-range q clamps to those instead of misindexing.
        let q0 = h.quantile_ns(0.0);
        assert!((10..=15).contains(&q0), "q0 = {q0}");
        assert_eq!(h.quantile_ns(1.0), 1000);
        assert_eq!(h.quantile_ns(-3.0), q0);
        assert_eq!(h.quantile_ns(7.5), h.quantile_ns(1.0));
        assert_eq!(h.quantile_ns(f64::NAN), q0);
    }

    #[test]
    fn single_sample_histogram_reports_it_at_every_quantile() {
        let h = Histogram::new();
        h.record_ns(42);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile_ns(q), 42, "q = {q}");
        }
    }

    #[test]
    fn bucket_counts_mirror_recorded_samples() {
        let h = Histogram::new();
        h.record_ns(1); // bucket 0: [0, 2)
        h.record_ns(3); // bucket 1: [2, 4)
        h.record_ns(300); // bucket 8: [256, 512)
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[8], 1);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn records_durations() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_ns(), 3000);
    }
}
