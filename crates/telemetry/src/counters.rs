//! Sharded atomic counters and gauges.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of shards per counter. A small power of two: enough that rayon
/// wake workers on different cores rarely contend on one cache line.
const SHARDS: usize = 16;

/// Pad each shard to its own cache line so concurrent increments from
/// different threads do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// Per-thread shard index: threads hash their id once and stick to
    /// that shard for every counter.
    static SHARD: usize = {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    };
}

/// Monotonic event counter, sharded across cache lines.
///
/// `add` is a single relaxed atomic add on the calling thread's shard;
/// `value` sums all shards. Values are exact: increments are never lost,
/// only the total is computed lazily.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Counter {
        // `AtomicU64::new` is const; arrays of non-Copy consts need the
        // inline-const repeat form.
        Counter {
            shards: [const { PaddedU64(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        SHARD.with(|&s| self.shards[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-write-wins numeric gauge (stored as `f64` bits).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_shards() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0.0);
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.value(), -1.25);
    }
}
