//! Live status server: a dependency-free HTTP endpoint over
//! [`std::net::TcpListener`] (in the spirit of the vendored crates —
//! no framework, no async runtime) that lets an operator inspect a
//! long wake-sleep run while it is running.
//!
//! Three routes:
//!
//! * `/metrics` — Prometheus text exposition (format 0.0.4) of every
//!   registered counter, gauge, and histogram;
//! * `/status`  — a JSON summary: uptime, run-loop fields published via
//!   [`set_status`] (current cycle, phase, solve counts, library size,
//!   checkpoint age), and all gauges;
//! * `/healthz` — `ok`, for liveness probes.
//!
//! Every route reads only atomic metric snapshots and a briefly
//! read-locked status map, so serving a request never blocks the hot
//! loop. One thread, one connection at a time: this is an introspection
//! hatch, not a web server.
//!
//! ## Prometheus naming
//!
//! Internal dotted names (`enumeration.programs`) are exported with the
//! `dc_` prefix and every non-`[a-zA-Z0-9_]` byte mapped to `_`
//! (`dc_enumeration_programs`). Histograms record nanoseconds
//! internally but export seconds, per Prometheus convention, with one
//! cumulative `_bucket` line per occupied power-of-two bucket plus
//! `+Inf`, `_sum`, and `_count`.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::events::FieldValue;

/// Run-loop fields published to `/status` (cycle, phase, solve counts…).
fn status_fields() -> &'static RwLock<BTreeMap<String, FieldValue>> {
    static FIELDS: OnceLock<RwLock<BTreeMap<String, FieldValue>>> = OnceLock::new();
    FIELDS.get_or_init(|| RwLock::new(BTreeMap::new()))
}

fn server_epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Publish (or overwrite) one field of the `/status` document. Cheap
/// enough to call at every phase boundary; takes a short write lock.
pub fn set_status(key: &str, value: impl Into<FieldValue>) {
    status_fields().write().insert(key.to_owned(), value.into());
}

/// Remove every published status field (test isolation).
#[doc(hidden)]
pub fn clear_status() {
    status_fields().write().clear();
}

/// Milliseconds since the unix epoch (0 if the clock is before 1970).
pub fn unix_time_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// `enumeration.programs` → `dc_enumeration_programs`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("dc_");
    for b in name.chars() {
        if b.is_ascii_alphanumeric() || b == '_' {
            out.push(b);
        } else {
            out.push('_');
        }
    }
    out
}

const NS_PER_S: f64 = 1e9;

/// Render every registered metric in Prometheus text exposition format
/// 0.0.4 (what `/metrics` serves; public for tests and one-shot dumps).
pub fn prometheus_text() -> String {
    let mut out = String::new();
    let reg = crate::registry_for_export();
    for (name, c) in reg.counters.read().iter() {
        let pn = prom_name(name);
        out.push_str(&format!("# TYPE {pn} counter\n{pn} {}\n", c.value()));
    }
    for (name, g) in reg.gauges.read().iter() {
        let pn = prom_name(name);
        out.push_str(&format!("# TYPE {pn} gauge\n{pn} {}\n", g.value()));
    }
    for (name, h) in reg.histograms.read().iter() {
        let pn = prom_name(name);
        out.push_str(&format!("# TYPE {pn}_seconds histogram\n"));
        let mut cumulative = 0u64;
        for (i, count) in h.bucket_counts().iter().enumerate() {
            if *count == 0 {
                continue;
            }
            cumulative += count;
            // Bucket i holds samples in [2^i, 2^(i+1)) ns; the inclusive
            // Prometheus `le` bound is the bucket's upper edge in seconds.
            let le = (1u128 << (i + 1)) as f64 / NS_PER_S;
            out.push_str(&format!(
                "{pn}_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "{pn}_seconds_bucket{{le=\"+Inf\"}} {}\n",
            h.count()
        ));
        out.push_str(&format!(
            "{pn}_seconds_sum {}\n",
            h.sum_ns() as f64 / NS_PER_S
        ));
        out.push_str(&format!("{pn}_seconds_count {}\n", h.count()));
    }
    out
}

/// Render the `/status` JSON document: uptime, published status fields,
/// and all gauges (public for tests and one-shot dumps).
pub fn status_json() -> String {
    use serde_json::{Number, Value};
    let mut root = BTreeMap::new();
    root.insert(
        "uptime_seconds".to_owned(),
        Value::Number(Number::U64(server_epoch().elapsed().as_secs())),
    );
    let fields = status_fields().read();
    for (key, value) in fields.iter() {
        root.insert(key.clone(), value.to_json());
    }
    // Derived convenience: how stale is the newest checkpoint?
    if let Some(FieldValue::U64(ms)) = fields.get("last_checkpoint_unix_ms") {
        let age = unix_time_ms().saturating_sub(*ms) / 1000;
        root.insert(
            "checkpoint_age_seconds".to_owned(),
            Value::Number(Number::U64(age)),
        );
    }
    drop(fields);
    let gauges: BTreeMap<String, Value> = crate::snapshot()
        .gauges
        .into_iter()
        .map(|(k, v)| (k, Value::Number(Number::F64(v))))
        .collect();
    root.insert("gauges".to_owned(), Value::Object(gauges));
    serde_json::to_string_pretty(&Value::Object(root)).unwrap_or_else(|_| "{}".to_owned())
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Handle to a running status server; stop with [`StatusServer::shutdown`]
/// (dropping without shutdown leaves the serving thread running until
/// process exit, which is fine for the CLI).
pub struct StatusServer {
    /// The actually bound address (useful when binding port 0).
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks; poke it awake with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Start the status server on `addr` (e.g. `127.0.0.1:9090`; port 0 picks
/// a free port — read it back from [`StatusServer::addr`]). Serves
/// `/metrics`, `/status`, and `/healthz` from a dedicated thread.
///
/// # Errors
/// When the address cannot be parsed or bound.
pub fn start_status_server(addr: &str) -> std::io::Result<StatusServer> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty address"))?;
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    server_epoch(); // pin uptime to server start
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("dc-status".to_owned())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    // One slow client must not wedge the server forever.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_connection(stream);
                }
            }
        })?;
    Ok(StatusServer {
        addr: bound,
        stop,
        thread: Some(thread),
    })
}

fn serve_connection(stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(),
        ),
        "/status" => ("200 OK", "application/json", status_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    fn body(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap_or("")
    }

    #[test]
    fn serves_health_metrics_status_and_404() {
        crate::enable();
        crate::add("test.server.counter", 3);
        crate::set_gauge("test.server.gauge", 2.5);
        crate::record_duration("test.server.hist", Duration::from_millis(5));
        set_status("phase", "wake");
        set_status("cycle", 2u64);

        let server = start_status_server("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert_eq!(body(&health), "ok\n");

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        let mb = body(&metrics);
        assert!(mb.contains("# TYPE dc_test_server_counter counter"), "{mb}");
        assert!(mb.contains("dc_test_server_gauge 2.5"), "{mb}");
        assert!(
            mb.contains("dc_test_server_hist_seconds_bucket{le=\"+Inf\"}"),
            "{mb}"
        );
        assert!(mb.contains("dc_test_server_hist_seconds_count"), "{mb}");

        let status = get(addr, "/status");
        let sb = body(&status);
        let parsed: serde_json::Value = serde_json::from_str(sb).expect("status JSON parses");
        assert_eq!(parsed["phase"].as_str(), Some("wake"));
        assert_eq!(parsed["cycle"].as_u64(), Some(2));
        assert!(parsed["uptime_seconds"].as_u64().is_some());

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }

    #[test]
    fn checkpoint_age_is_derived_from_timestamp() {
        set_status("last_checkpoint_unix_ms", unix_time_ms());
        let parsed: serde_json::Value =
            serde_json::from_str(&status_json()).expect("status JSON parses");
        let age = parsed["checkpoint_age_seconds"].as_u64().expect("age");
        assert!(age < 60, "freshly stamped checkpoint reads as recent");
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("enumeration.programs"), "dc_enumeration_programs");
        assert_eq!(prom_name("wake.task-panics"), "dc_wake_task_panics");
        assert_eq!(prom_name("ok_name9"), "dc_ok_name9");
    }
}
