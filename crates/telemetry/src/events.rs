//! Leveled, structured JSONL event sink.
//!
//! Replaces the ad-hoc `eprintln!` debugging the library crates used to
//! do: events are named, carry typed fields, and land as one JSON object
//! per line in whatever writer the host installed (usually a file next to
//! the run's report output). When no sink is installed, emitting an event
//! is a relaxed load and a branch.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;
use serde_json::Value;

/// Event severity. Ordered so a sink can filter with `level >= min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-candidate, per-window detail).
    Debug = 0,
    /// Normal progress (per-phase, per-cycle milestones).
    Info = 1,
    /// Something degraded but the run continues.
    Warn = 2,
}

impl Level {
    /// Lowercase name, as written in JSONL output and accepted by
    /// [`Level::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }

    /// Parse a level name, case-insensitively (`debug` / `info` /
    /// `warn`; `warning` is accepted as an alias).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            _ => None,
        }
    }
}

/// Resolve the event-sink level from the standard sources, in documented
/// precedence order: an explicit `--log-level` flag beats the `DC_LOG`
/// environment variable beats the default ([`Level::Info`]).
/// Unparseable values are ignored (falling through to the next source)
/// rather than erroring, so a typo degrades loudness, not the run.
pub fn resolve_level(flag: Option<&str>, env: Option<&str>) -> Level {
    flag.and_then(Level::parse)
        .or_else(|| env.and_then(Level::parse))
        .unwrap_or(Level::Info)
}

/// A typed field value attached to an event.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

impl_field_from! {
    i32 => I64 as i64,
    i64 => I64 as i64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    pub(crate) fn to_json(&self) -> Value {
        match self {
            FieldValue::I64(v) => Value::Number(serde_json::Number::I64(*v)),
            FieldValue::U64(v) => Value::Number(serde_json::Number::U64(*v)),
            FieldValue::F64(v) => Value::Number(serde_json::Number::F64(*v)),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::String(v.clone()),
        }
    }
}

/// The process-wide event sink.
pub(crate) struct EventSink {
    writer: Mutex<Option<Box<dyn Write + Send>>>,
    /// `Level` of the installed sink, stored as its discriminant; 255
    /// means "no sink" so the hot path is one load + compare.
    min_level: AtomicU8,
}

const NO_SINK: u8 = u8::MAX;

impl EventSink {
    pub(crate) const fn new() -> EventSink {
        EventSink {
            writer: Mutex::new(None),
            min_level: AtomicU8::new(NO_SINK),
        }
    }

    pub(crate) fn install(&self, writer: Box<dyn Write + Send>, min_level: Level) {
        *self.writer.lock() = Some(writer);
        self.min_level.store(min_level as u8, Ordering::Release);
    }

    /// Remove the sink, flushing and returning nothing.
    pub(crate) fn uninstall(&self) {
        self.min_level.store(NO_SINK, Ordering::Release);
        if let Some(mut w) = self.writer.lock().take() {
            let _ = w.flush();
        }
    }

    pub(crate) fn enabled(&self, level: Level) -> bool {
        level as u8 >= self.min_level.load(Ordering::Acquire)
    }

    pub(crate) fn emit(&self, level: Level, name: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled(level) {
            return;
        }
        let mut map = BTreeMap::new();
        map.insert(
            "ts_ms".to_owned(),
            Value::Number(serde_json::Number::U64(now_ms())),
        );
        map.insert("level".to_owned(), Value::String(level.as_str().to_owned()));
        map.insert("event".to_owned(), Value::String(name.to_owned()));
        for (key, value) in fields {
            map.insert((*key).to_owned(), value.to_json());
        }
        let line = match serde_json::to_string(&Value::Object(map)) {
            Ok(line) => line,
            Err(_) => return,
        };
        let mut guard = self.writer.lock();
        if let Some(writer) = guard.as_mut() {
            let _ = writeln!(writer, "{line}");
        }
    }

    pub(crate) fn flush(&self) {
        if let Some(writer) = self.writer.lock().as_mut() {
            let _ = writer.flush();
        }
    }
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips_and_tolerates_case() {
        for level in [Level::Debug, Level::Info, Level::Warn] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("  WARN "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn resolve_level_prefers_flag_then_env_then_default() {
        assert_eq!(resolve_level(Some("debug"), Some("warn")), Level::Debug);
        assert_eq!(resolve_level(None, Some("warn")), Level::Warn);
        assert_eq!(resolve_level(None, None), Level::Info);
        // Garbage at one layer falls through to the next.
        assert_eq!(resolve_level(Some("nope"), Some("debug")), Level::Debug);
        assert_eq!(resolve_level(Some("nope"), Some("nope")), Level::Info);
    }
}
