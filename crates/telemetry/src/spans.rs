//! Hierarchical span tracing with lock-free aggregation.
//!
//! A *span* is a named, timed region of the run: entering pushes onto a
//! per-thread span stack, dropping the guard records elapsed time into an
//! aggregation node keyed by `(parent node, name)`. The set of nodes
//! therefore forms a tree mirroring the dynamic call structure (`cycle.total
//! → cycle.wake → wake.search → enumeration.run_time`), and each node
//! accumulates call count, total time, child time (so self-time is
//! `total - child`), and max — all in relaxed atomics, so recording never
//! takes a lock once a node exists.
//!
//! ## Cost model
//!
//! * telemetry disabled: one relaxed load and a predictable branch;
//! * telemetry enabled, node already interned: a read-locked hash lookup on
//!   entry plus a handful of relaxed atomic adds on drop — cheap enough to
//!   leave on at per-task granularity (the bench harness asserts the
//!   enumeration workload stays within 5% of the uninstrumented wall);
//! * first entry of a new `(parent, name)` pair: one write-locked insert.
//!
//! Spans additionally feed the [`crate::histogram`] of the same name, so
//! quantiles (p50/p99 of per-task search time, say) come for free and the
//! flat histogram section of `telemetry.json` stays populated.
//!
//! ## Crossing thread boundaries
//!
//! The span stack is thread-local, and the vendored rayon fans work out to
//! plain `std::thread::scope` workers whose stacks start empty. Capture
//! [`current_span`] *before* the fan-out and open worker spans with
//! [`span_under`]:
//!
//! ```
//! let parent = dc_telemetry::current_span();
//! // inside a rayon worker closure:
//! let _s = dc_telemetry::span_under(parent, "wake.search");
//! ```
//!
//! Node identity is `(parent node, name)`, never the thread, so the
//! aggregated tree *shape* (paths and call counts) is identical at any
//! `DC_THREADS` — asserted by `crates/wakesleep/tests/span_determinism.rs`.
//! With parallel children the per-node child time can exceed the parent's
//! wall-clock total (children overlap); self-time saturates at zero.
//!
//! ## Chrome trace export
//!
//! When collection is switched on ([`enable_trace_collection`], the CLI's
//! `--trace-out`), every span drop also appends one complete ("ph":"X")
//! trace event to a bounded in-memory buffer; [`export_chrome_trace`]
//! writes the standard `{"traceEvents": [...]}` JSON that
//! `chrome://tracing` and Perfetto load directly.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use serde::Serialize;

use crate::events::FieldValue;
use crate::is_enabled;

/// One aggregation node: a distinct `(parent, name)` pair in the span tree.
struct SpanNode {
    /// Node id (1-based; 0 is the implicit root).
    id: u64,
    /// Span name as passed to [`span`].
    name: &'static str,
    /// Parent node id (0 for top-level spans).
    parent: u64,
    calls: AtomicU64,
    total_ns: AtomicU64,
    child_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanNode {
    fn record(&self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Interned span nodes: map for lookup, list for export (index = id - 1).
struct SpanRegistry {
    by_key: HashMap<(u64, &'static str), &'static SpanNode>,
    nodes: Vec<&'static SpanNode>,
}

fn registry() -> &'static RwLock<SpanRegistry> {
    static REGISTRY: OnceLock<RwLock<SpanRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(SpanRegistry {
            by_key: HashMap::new(),
            nodes: Vec::new(),
        })
    })
}

/// Find or create the node for `(parent, name)`.
fn intern(parent: u64, name: &'static str) -> &'static SpanNode {
    if let Some(node) = registry().read().by_key.get(&(parent, name)) {
        return node;
    }
    let mut reg = registry().write();
    if let Some(node) = reg.by_key.get(&(parent, name)) {
        return node;
    }
    let id = reg.nodes.len() as u64 + 1;
    let node: &'static SpanNode = Box::leak(Box::new(SpanNode {
        id,
        name,
        parent,
        calls: AtomicU64::new(0),
        total_ns: AtomicU64::new(0),
        child_ns: AtomicU64::new(0),
        max_ns: AtomicU64::new(0),
    }));
    reg.by_key.insert((parent, name), node);
    reg.nodes.push(node);
    node
}

fn node_by_id(id: u64) -> Option<&'static SpanNode> {
    if id == 0 {
        return None;
    }
    registry().read().nodes.get(id as usize - 1).copied()
}

thread_local! {
    /// This thread's stack of open spans: `(token, node)`. Tokens let a
    /// guard remove *its own* entry even under out-of-order drops.
    static STACK: RefCell<Vec<(u64, &'static SpanNode)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread token source (tokens only need uniqueness per thread).
    static NEXT_TOKEN: Cell<u64> = const { Cell::new(1) };
    /// Small stable id for trace-event `tid` fields.
    static TRACE_TID: u64 = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        NEXT_TID.fetch_add(1, Ordering::Relaxed)
    };
}

/// A position in the span tree that can be carried into worker closures
/// (the propagated parent-span id of DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle(u64);

impl SpanHandle {
    /// The root handle: spans opened under it are top-level.
    pub const ROOT: SpanHandle = SpanHandle(0);
}

/// Capture the calling thread's innermost open span (or the root when no
/// span is open) for use with [`span_under`] inside worker closures.
pub fn current_span() -> SpanHandle {
    if !is_enabled() {
        return SpanHandle::ROOT;
    }
    SpanHandle(STACK.with(|s| s.borrow().last().map_or(0, |(_, n)| n.id)))
}

/// RAII guard for one open span; records on drop. Inert (and free) while
/// telemetry is disabled.
#[must_use = "the span records when dropped; binding to _ drops immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    node: &'static SpanNode,
    start: Instant,
    token: u64,
    /// Fields attached to the Chrome trace event (empty ⇒ no `args`).
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Elapsed time so far (zero for an inert guard).
    pub fn elapsed(&self) -> std::time::Duration {
        self.active
            .as_ref()
            .map_or(std::time::Duration::ZERO, |a| a.start.elapsed())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        active.node.record(ns);
        if let Some(parent) = node_by_id(active.node.parent) {
            parent.child_ns.fetch_add(ns, Ordering::Relaxed);
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|(t, _)| *t == active.token) {
                stack.remove(pos);
            }
        });
        // Spans double as timers: same-named histogram gets the sample.
        crate::histogram(active.node.name).record_ns(ns);
        record_trace_event(active.node.name, &active, ns);
    }
}

fn open(parent: u64, name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
    let node = intern(parent, name);
    let token = NEXT_TOKEN.with(|t| {
        let v = t.get();
        t.set(v.wrapping_add(1));
        v
    });
    STACK.with(|s| s.borrow_mut().push((token, node)));
    SpanGuard {
        active: Some(ActiveSpan {
            node,
            start: Instant::now(),
            token,
            fields,
        }),
    }
}

/// Open a span named `name` under the calling thread's innermost open span.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    let parent = STACK.with(|s| s.borrow().last().map_or(0, |(_, n)| n.id));
    open(parent, name, Vec::new())
}

/// Open a span under an explicitly captured parent — the bridge that
/// carries the span tree across rayon fan-outs (see module docs).
#[inline]
pub fn span_under(parent: SpanHandle, name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    open(parent.0, name, Vec::new())
}

/// [`span`] with trace-event fields. Fields only ever reach the Chrome
/// trace `args`, never the aggregation key, and are not even materialized
/// unless trace collection is on — use the [`crate::span!`] macro.
#[inline]
pub fn span_with_fields(name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    let parent = STACK.with(|s| s.borrow().last().map_or(0, |(_, n)| n.id));
    let fields = if trace_collection_enabled() {
        fields.to_vec()
    } else {
        Vec::new()
    };
    open(parent, name, fields)
}

/// [`span_under`] with trace-event fields (see [`span_with_fields`]).
#[inline]
pub fn span_under_with_fields(
    parent: SpanHandle,
    name: &'static str,
    fields: &[(&'static str, FieldValue)],
) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    let fields = if trace_collection_enabled() {
        fields.to_vec()
    } else {
        Vec::new()
    };
    open(parent.0, name, fields)
}

/// Open a span, optionally with trace-event fields:
/// `span!("wake.search")` or `span!("wake.search", task = idx)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span_with_fields(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

// ---------------------------------------------------------------------------
// Aggregated export
// ---------------------------------------------------------------------------

/// One node of the aggregated span tree, as exported in `telemetry.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed calls.
    pub calls: u64,
    /// Total wall-clock across calls, ms.
    pub total_ms: f64,
    /// Self time: total minus time attributed to child spans, ms
    /// (saturating at zero — parallel children can overlap the parent).
    pub self_ms: f64,
    /// Longest single call, ms.
    pub max_ms: f64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanSnapshot>,
}

const NS_PER_MS: f64 = 1e6;

fn snapshot_subtree(
    children_of: &BTreeMap<u64, Vec<&'static SpanNode>>,
    id: u64,
) -> Vec<SpanSnapshot> {
    let Some(kids) = children_of.get(&id) else {
        return Vec::new();
    };
    kids.iter()
        .map(|node| {
            let total = node.total_ns.load(Ordering::Relaxed);
            let child = node.child_ns.load(Ordering::Relaxed);
            SpanSnapshot {
                name: node.name.to_owned(),
                calls: node.calls.load(Ordering::Relaxed),
                total_ms: total as f64 / NS_PER_MS,
                self_ms: total.saturating_sub(child) as f64 / NS_PER_MS,
                max_ms: node.max_ns.load(Ordering::Relaxed) as f64 / NS_PER_MS,
                children: snapshot_subtree(children_of, node.id),
            }
        })
        .collect()
}

/// The aggregated span tree, children sorted by name at every level (so the
/// export is deterministic regardless of interning order).
pub fn span_tree() -> Vec<SpanSnapshot> {
    let reg = registry().read();
    let mut children_of: BTreeMap<u64, Vec<&'static SpanNode>> = BTreeMap::new();
    for node in &reg.nodes {
        children_of.entry(node.parent).or_default().push(node);
    }
    drop(reg);
    for kids in children_of.values_mut() {
        kids.sort_by_key(|n| n.name);
    }
    snapshot_subtree(&children_of, 0)
}

/// Flat shape view for determinism tests: `(slash-joined path, calls)`
/// pairs, sorted — everything about the tree except the timings.
pub fn span_shape() -> Vec<(String, u64)> {
    fn walk(prefix: &str, spans: &[SpanSnapshot], out: &mut Vec<(String, u64)>) {
        for s in spans {
            let path = if prefix.is_empty() {
                s.name.clone()
            } else {
                format!("{prefix}/{}", s.name)
            };
            out.push((path.clone(), s.calls));
            walk(&path, &s.children, out);
        }
    }
    let mut out = Vec::new();
    walk("", &span_tree(), &mut out);
    out.sort();
    out
}

/// Drop every interned span node and buffered trace event. Test-only: the
/// registry is process-global, so comparative runs (thread-count
/// determinism, overhead checks) need a clean slate between legs. Callers
/// must ensure no span guards are live.
#[doc(hidden)]
pub fn reset_spans() {
    let mut reg = registry().write();
    reg.by_key.clear();
    reg.nodes.clear();
    drop(reg);
    trace_buffer().events.lock().clear();
}

// ---------------------------------------------------------------------------
// Chrome trace-event collection
// ---------------------------------------------------------------------------

/// Keep at most this many trace events in memory; extras are counted in
/// the `trace.events_dropped` counter instead of growing without bound.
const TRACE_CAPACITY: usize = 1 << 20;

struct TraceEvent {
    name: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

struct TraceBuffer {
    enabled: AtomicBool,
    epoch: OnceLock<Instant>,
    events: Mutex<Vec<TraceEvent>>,
}

fn trace_buffer() -> &'static TraceBuffer {
    static BUF: OnceLock<TraceBuffer> = OnceLock::new();
    BUF.get_or_init(|| TraceBuffer {
        enabled: AtomicBool::new(false),
        epoch: OnceLock::new(),
        events: Mutex::new(Vec::new()),
    })
}

/// Start collecting Chrome trace events for every completed span (the
/// CLI's `--trace-out`). Collection costs one short lock per span drop.
pub fn enable_trace_collection() {
    let buf = trace_buffer();
    buf.epoch.get_or_init(Instant::now);
    buf.enabled.store(true, Ordering::Release);
}

/// Stop collecting trace events (the buffer is kept for export).
pub fn disable_trace_collection() {
    trace_buffer().enabled.store(false, Ordering::Release);
}

/// Is trace-event collection currently on?
#[inline]
pub fn trace_collection_enabled() -> bool {
    trace_buffer().enabled.load(Ordering::Relaxed)
}

fn record_trace_event(name: &'static str, active: &ActiveSpan, ns: u64) {
    let buf = trace_buffer();
    if !buf.enabled.load(Ordering::Relaxed) {
        return;
    }
    let epoch = buf.epoch.get_or_init(Instant::now);
    // End timestamp is "now"; subtract the duration for the start.
    let end_us = epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let dur_us = ns / 1_000;
    let ts_us = end_us.saturating_sub(dur_us);
    let tid = TRACE_TID.with(|t| *t);
    let mut events = buf.events.lock();
    if events.len() >= TRACE_CAPACITY {
        drop(events);
        crate::incr("trace.events_dropped");
        return;
    }
    events.push(TraceEvent {
        name,
        ts_us,
        dur_us,
        tid,
        fields: active.fields.clone(),
    });
}

/// Render every collected trace event as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` / Perfetto.
pub fn chrome_trace_json() -> String {
    use serde_json::{Number, Value};
    let events = trace_buffer().events.lock();
    let rendered: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut obj = BTreeMap::new();
            obj.insert("name".to_owned(), Value::String(e.name.to_owned()));
            obj.insert("ph".to_owned(), Value::String("X".to_owned()));
            obj.insert("ts".to_owned(), Value::Number(Number::U64(e.ts_us)));
            obj.insert("dur".to_owned(), Value::Number(Number::U64(e.dur_us)));
            obj.insert("pid".to_owned(), Value::Number(Number::U64(1)));
            obj.insert("tid".to_owned(), Value::Number(Number::U64(e.tid)));
            if !e.fields.is_empty() {
                let args: BTreeMap<String, Value> = e
                    .fields
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.to_json()))
                    .collect();
                obj.insert("args".to_owned(), Value::Object(args));
            }
            Value::Object(obj)
        })
        .collect();
    drop(events);
    let mut root = BTreeMap::new();
    root.insert("traceEvents".to_owned(), Value::Array(rendered));
    root.insert("displayTimeUnit".to_owned(), Value::String("ms".to_owned()));
    serde_json::to_string(&Value::Object(root)).unwrap_or_else(|_| "{}".to_owned())
}

/// Write the collected Chrome trace to `path`.
///
/// # Errors
/// When the file cannot be written.
pub fn export_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span state is process-global; tests that toggle the enable flag or
    /// reset the registry must not interleave.
    fn serial() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        LOCK.lock()
    }

    fn find<'a>(spans: &'a [SpanSnapshot], name: &str) -> Option<&'a SpanSnapshot> {
        spans.iter().find(|s| s.name == name)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = serial();
        crate::disable();
        reset_spans();
        {
            let _s = span("test.disabled_root");
        }
        assert!(span_tree().is_empty());
    }

    #[test]
    fn nesting_aggregates_self_and_child_time() {
        let _guard = serial();
        crate::enable();
        reset_spans();
        {
            let _outer = span("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _inner = span("test.inner");
            }
        }
        let tree = span_tree();
        let outer = find(&tree, "test.outer").expect("outer node");
        assert_eq!(outer.calls, 1);
        let inner = find(&outer.children, "test.inner").expect("inner nested");
        assert_eq!(inner.calls, 2);
        assert!(outer.total_ms >= inner.total_ms);
        // Self time excludes the inner span's share.
        assert!(outer.self_ms <= outer.total_ms);
        // Spans also feed the same-named histogram.
        assert!(crate::histogram("test.outer").count() >= 1);
        crate::disable();
    }

    #[test]
    fn handles_carry_parentage_across_threads() {
        let _guard = serial();
        crate::enable();
        reset_spans();
        {
            let _outer = span("test.fanout");
            let parent = current_span();
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(move || {
                        let _s = span_under(parent, "test.worker");
                    });
                }
            });
        }
        let tree = span_tree();
        let outer = find(&tree, "test.fanout").expect("fanout node");
        let worker = find(&outer.children, "test.worker").expect("workers nested under fanout");
        assert_eq!(worker.calls, 3);
        crate::disable();
    }

    #[test]
    fn shape_is_paths_and_calls_only() {
        let _guard = serial();
        crate::enable();
        reset_spans();
        {
            let _a = span("test.shape_a");
            let _b = span("test.shape_b");
        }
        let shape = span_shape();
        assert!(shape.contains(&("test.shape_a".to_owned(), 1)));
        assert!(shape.contains(&("test.shape_a/test.shape_b".to_owned(), 1)));
        crate::disable();
    }

    #[test]
    fn trace_events_round_trip_as_json() {
        let _guard = serial();
        crate::enable();
        reset_spans();
        enable_trace_collection();
        {
            let _s = span!("test.traced", task = 7u64);
        }
        disable_trace_collection();
        let json = chrome_trace_json();
        let value: serde_json::Value = serde_json::from_str(&json).expect("trace parses");
        let events = value["traceEvents"].as_array().expect("traceEvents array");
        let ev = events
            .iter()
            .find(|e| e["name"].as_str() == Some("test.traced"))
            .expect("traced span present");
        assert_eq!(ev["ph"].as_str(), Some("X"));
        assert!(ev["ts"].as_u64().is_some());
        assert!(ev["dur"].as_u64().is_some());
        assert_eq!(ev["args"]["task"].as_u64(), Some(7));
        crate::disable();
    }

    #[test]
    fn out_of_order_drops_leave_a_clean_stack() {
        let _guard = serial();
        crate::enable();
        reset_spans();
        let a = span("test.ooo_a");
        let b = span("test.ooo_b");
        drop(a); // dropped before b, out of LIFO order
        {
            // New span must still parent under the (still-open) b.
            let _c = span("test.ooo_c");
        }
        drop(b);
        let tree = span_tree();
        let a_node = find(&tree, "test.ooo_a").expect("a at top level");
        assert_eq!(a_node.calls, 1);
        let b_node = find(&a_node.children, "test.ooo_b").expect("b under a");
        assert!(find(&b_node.children, "test.ooo_c").is_some(), "c under b");
        crate::disable();
    }
}
