//! Graceful-interruption plumbing: make sure an aborted run still
//! leaves its telemetry on disk.
//!
//! Two mechanisms, both opt-in from the binary:
//!
//! * [`install_sigint_handler`] turns the *first* Ctrl-C into a
//!   cooperative interrupt: it only sets an atomic flag which the run
//!   loop polls at phase boundaries, finishing the current phase,
//!   writing a final checkpoint/summary, and flushing telemetry before
//!   exiting. The handler immediately re-arms the default disposition,
//!   so a *second* Ctrl-C force-kills as usual — the escape hatch stays.
//! * [`install_abort_flush`] chains a panic hook that flushes the JSONL
//!   event tail and exports `telemetry.json` (and the Chrome trace, when
//!   collection is on) before unwinding continues. Without it, a panic
//!   on the main thread loses everything buffered since the last flush.
//!
//! The signal handler is registered through libc's `signal` (declared
//! locally — `std` already links libc, so no new dependency) and does
//! nothing but store to an `AtomicBool` and re-arm: both are
//! async-signal-safe.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGINT handler (or [`request_interrupt`]); polled by the
/// run loop at phase boundaries.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Has an interrupt (Ctrl-C or programmatic) been requested?
#[inline]
pub fn interrupt_requested() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Request a cooperative interrupt, as the SIGINT handler does (public
/// so tests can exercise the interrupted-run path without signals).
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::Release);
}

/// Clear a previously requested interrupt (test isolation).
#[doc(hidden)]
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::Release);
}

#[cfg(unix)]
mod sigint {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    // std already links libc; declaring the one symbol we need avoids
    // pulling in a libc crate the vendor tree doesn't have.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: one store, one re-register. Re-arming the
        // default disposition makes the second Ctrl-C terminate.
        INTERRUPTED.store(true, Ordering::Release);
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

/// Install the cooperative SIGINT handler (first Ctrl-C sets the
/// interrupt flag, second force-kills). No-op on non-unix targets.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    sigint::install();
}

/// Chain a panic hook that flushes buffered JSONL events and writes the
/// telemetry snapshot to `telemetry_json` (and the Chrome trace to
/// `trace_out`, when given) before the previous hook runs. Idempotent
/// writes: a panic caught by an isolation boundary (per-task
/// `catch_unwind`) just refreshes the files.
pub fn install_abort_flush(telemetry_json: Option<PathBuf>, trace_out: Option<PathBuf>) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        crate::flush_events();
        if let Some(path) = &telemetry_json {
            let _ = crate::export_to_file(path);
        }
        if let Some(path) = &trace_out {
            if crate::trace_collection_enabled() {
                let _ = crate::export_chrome_trace(path);
            }
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_flag_round_trips() {
        clear_interrupt();
        assert!(!interrupt_requested());
        request_interrupt();
        assert!(interrupt_requested());
        clear_interrupt();
        assert!(!interrupt_requested());
    }

    #[test]
    fn abort_flush_writes_snapshot_on_panic() {
        let dir = std::env::temp_dir().join(format!("dc-telemetry-abort-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let snap_path = dir.join("telemetry.json");
        install_abort_flush(Some(snap_path.clone()), None);
        let caught = std::panic::catch_unwind(|| panic!("boom"));
        assert!(caught.is_err());
        // Restore the default hook so later test panics print normally.
        let _ = std::panic::take_hook();
        assert!(
            snap_path.exists(),
            "panic hook exported the telemetry snapshot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
