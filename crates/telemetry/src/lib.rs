//! # dc-telemetry
//!
//! Lightweight, thread-safe metrics and structured events for the
//! wake-sleep loop. Three primitives:
//!
//! * [`Counter`] — monotonic event counts (programs enumerated,
//!   evaluations run, …), sharded across cache lines so rayon wake
//!   workers increment without contending;
//! * [`Gauge`] — last-write-wins values (library size, current loss);
//! * [`Histogram`] — log-bucketed timing distributions (per-candidate
//!   refactor time, per-phase wall-clock).
//!
//! Plus a leveled JSONL [`event`] sink replacing ad-hoc `eprintln!`.
//!
//! ## Near-zero overhead when disabled
//!
//! Telemetry is off until [`enable`] is called. Every recording call
//! first checks one relaxed atomic load and branches out, so
//! instrumented hot paths (the enumeration inner loop, the evaluator)
//! pay roughly a nanosecond when the subsystem is off. Handles returned
//! by [`counter`]/[`gauge`]/[`histogram`] are `&'static`, so call sites
//! can look up once and record many times.
//!
//! ## Snapshots
//!
//! [`snapshot`] captures every metric into a serializable
//! [`TelemetrySnapshot`]; [`export_json`] renders it as the
//! `telemetry.json` the run loop writes next to its report output.
//!
//! ## Live introspection
//!
//! Beyond the flat metrics, the crate carries the run's observability
//! layer (DESIGN.md §10): hierarchical [`span`] tracing with
//! flame-style aggregation and Chrome trace-event export
//! ([`export_chrome_trace`]), a hand-rolled HTTP status server
//! ([`start_status_server`]) exposing `/metrics`, `/status`, and
//! `/healthz`, and shutdown plumbing ([`install_sigint_handler`],
//! [`install_abort_flush`]) so interrupted runs still flush what they
//! measured.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use serde::Serialize;

mod counters;
mod events;
mod histogram;
mod server;
mod shutdown;
mod spans;

pub use counters::{Counter, Gauge};
pub use events::{resolve_level, FieldValue, Level};
pub use histogram::Histogram;
pub use server::{
    clear_status, prometheus_text, set_status, start_status_server, status_json, unix_time_ms,
    StatusServer,
};
pub use shutdown::{
    clear_interrupt, install_abort_flush, install_sigint_handler, interrupt_requested,
    request_interrupt,
};
pub use spans::{
    chrome_trace_json, current_span, disable_trace_collection, enable_trace_collection,
    export_chrome_trace, reset_spans, span, span_shape, span_tree, span_under,
    span_under_with_fields, span_with_fields, trace_collection_enabled, SpanGuard, SpanHandle,
    SpanSnapshot,
};

/// Process-wide on/off switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn telemetry on.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Turn telemetry off (recording becomes a load + branch again).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Is telemetry currently on?
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Registry of named metrics. Lookup takes a read lock; the returned
/// handles are `&'static` (leaked once per distinct name) so hot paths
/// look up once and then touch only atomics.
struct Registry {
    counters: RwLock<Vec<(&'static str, &'static Counter)>>,
    gauges: RwLock<Vec<(&'static str, &'static Gauge)>>,
    histograms: RwLock<Vec<(&'static str, &'static Histogram)>>,
    events: events::EventSink,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(Vec::new()),
        gauges: RwLock::new(Vec::new()),
        histograms: RwLock::new(Vec::new()),
        events: events::EventSink::new(),
    })
}

/// The metric tables, for in-crate exporters (the Prometheus endpoint
/// walks raw histograms rather than pre-summarized snapshots).
pub(crate) fn registry_for_export() -> &'static Registry {
    registry()
}

fn lookup<T>(
    table: &RwLock<Vec<(&'static str, &'static T)>>,
    name: &'static str,
    make: impl FnOnce() -> T,
) -> &'static T {
    if let Some((_, existing)) = table.read().iter().find(|(n, _)| *n == name) {
        return existing;
    }
    let mut write = table.write();
    // Double-check: another thread may have registered between locks.
    if let Some((_, existing)) = write.iter().find(|(n, _)| *n == name) {
        return existing;
    }
    let leaked: &'static T = Box::leak(Box::new(make()));
    write.push((name, leaked));
    leaked
}

/// Get (or register) the counter called `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    lookup(&registry().counters, name, Counter::new)
}

/// Get (or register) the gauge called `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lookup(&registry().gauges, name, Gauge::new)
}

/// Get (or register) the histogram called `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lookup(&registry().histograms, name, Histogram::new)
}

/// Add `n` to the named counter (no-op while disabled).
#[inline]
pub fn add(name: &'static str, n: u64) {
    if is_enabled() {
        counter(name).add(n);
    }
}

/// Add one to the named counter (no-op while disabled).
#[inline]
pub fn incr(name: &'static str) {
    add(name, 1);
}

/// A call-site cache for a counter handle, for hot paths that record on
/// every invocation: [`add`] takes the registry read lock and scans the
/// name table each time, which shows up once a loop runs millions of
/// times per second. A `static CachedCounter` resolves the handle on
/// first use and thereafter costs one acquire load before the sharded
/// atomic add. Recording while disabled is still just a relaxed load
/// and a branch — the handle is not even resolved.
pub struct CachedCounter {
    name: &'static str,
    slot: OnceLock<&'static Counter>,
}

impl CachedCounter {
    /// A cache for the counter called `name`. `const`, so it can sit in
    /// a `static` right next to the loop that records into it.
    pub const fn new(name: &'static str) -> CachedCounter {
        CachedCounter {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Add `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.slot.get_or_init(|| counter(self.name)).add(n);
        }
    }

    /// Add one (no-op while disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// Set the named gauge (no-op while disabled).
#[inline]
pub fn set_gauge(name: &'static str, value: f64) {
    if is_enabled() {
        gauge(name).set(value);
    }
}

/// Record a duration into the named histogram (no-op while disabled).
#[inline]
pub fn record_duration(name: &'static str, duration: Duration) {
    if is_enabled() {
        histogram(name).record(duration);
    }
}

/// Time a scope: records into the named histogram when the guard drops.
/// While telemetry is disabled the guard does nothing on drop.
#[must_use = "the timer records when dropped; binding to _ drops immediately"]
pub struct TimerGuard {
    name: &'static str,
    start: Instant,
}

impl TimerGuard {
    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        record_duration(self.name, self.start.elapsed());
    }
}

/// Start a timer guard for the named histogram.
pub fn time(name: &'static str) -> TimerGuard {
    TimerGuard {
        name,
        start: Instant::now(),
    }
}

/// Install a JSONL event sink writing to `writer`, keeping events at
/// `min_level` and above.
pub fn set_event_sink(writer: Box<dyn std::io::Write + Send>, min_level: Level) {
    registry().events.install(writer, min_level);
}

/// Install a JSONL event sink writing to the file at `path` (truncating
/// it), keeping events at `min_level` and above.
///
/// # Errors
/// When the file cannot be created.
pub fn set_event_file(path: &std::path::Path, min_level: Level) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    set_event_sink(Box::new(std::io::BufWriter::new(file)), min_level);
    Ok(())
}

/// Remove the event sink, flushing buffered lines.
pub fn clear_event_sink() {
    registry().events.uninstall();
}

/// Flush the event sink without removing it.
pub fn flush_events() {
    registry().events.flush();
}

/// Emit a structured event (no-op while disabled or below the sink's
/// level; the filter check is a pair of atomic loads).
#[inline]
pub fn event(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    if is_enabled() {
        registry().events.emit(level, name, fields);
    }
}

/// Would an event at `level` currently be written? Lets call sites skip
/// building expensive field values.
#[inline]
pub fn event_enabled(level: Level) -> bool {
    is_enabled() && registry().events.enabled(level)
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of samples in milliseconds.
    pub total_ms: f64,
    /// Mean sample in milliseconds.
    pub mean_ms: f64,
    /// Median (upper bucket bound) in milliseconds.
    pub p50_ms: f64,
    /// 90th percentile (upper bucket bound) in milliseconds.
    pub p90_ms: f64,
    /// 99th percentile (upper bucket bound) in milliseconds.
    pub p99_ms: f64,
    /// Largest sample in milliseconds.
    pub max_ms: f64,
}

/// Point-in-time capture of every registered metric.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySnapshot {
    /// Counter totals by name.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: std::collections::BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: std::collections::BTreeMap<String, HistogramSnapshot>,
    /// Aggregated span tree (flame-style profile), children by name.
    pub spans: Vec<SpanSnapshot>,
}

const NS_PER_MS: f64 = 1e6;

/// Capture all registered metrics right now.
pub fn snapshot() -> TelemetrySnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .read()
        .iter()
        .map(|(name, c)| ((*name).to_owned(), c.value()))
        .collect();
    let gauges = reg
        .gauges
        .read()
        .iter()
        .map(|(name, g)| ((*name).to_owned(), g.value()))
        .collect();
    let histograms = reg
        .histograms
        .read()
        .iter()
        .map(|(name, h)| {
            (
                (*name).to_owned(),
                HistogramSnapshot {
                    count: h.count(),
                    total_ms: h.sum_ns() as f64 / NS_PER_MS,
                    mean_ms: h.mean_ns() / NS_PER_MS,
                    p50_ms: h.quantile_ns(0.5) as f64 / NS_PER_MS,
                    p90_ms: h.quantile_ns(0.9) as f64 / NS_PER_MS,
                    p99_ms: h.quantile_ns(0.99) as f64 / NS_PER_MS,
                    max_ms: h.max_ns() as f64 / NS_PER_MS,
                },
            )
        })
        .collect();
    TelemetrySnapshot {
        counters,
        gauges,
        histograms,
        spans: span_tree(),
    }
}

/// Render the current snapshot as pretty JSON (the `telemetry.json`
/// payload).
pub fn export_json() -> String {
    serde_json::to_string_pretty(&snapshot()).unwrap_or_else(|_| "{}".to_owned())
}

/// Write the current snapshot to `path` as `telemetry.json`.
///
/// # Errors
/// When the file cannot be written.
pub fn export_to_file(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, export_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag is process-global, so tests that toggle it must
    /// not interleave.
    fn flag_lock() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        LOCK.lock()
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _serial = flag_lock();
        disable();
        add("test.disabled", 10);
        incr("test.disabled");
        // The counter was never even registered.
        assert!(!snapshot().counters.contains_key("test.disabled"));
    }

    #[test]
    fn handles_are_stable() {
        let a = counter("test.stable");
        let b = counter("test.stable");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn cached_counter_shares_the_named_counter() {
        let _serial = flag_lock();
        static CACHED: CachedCounter = CachedCounter::new("test.cached");
        disable();
        CACHED.add(99);
        // Disabled adds neither record nor resolve the handle.
        assert!(!snapshot().counters.contains_key("test.cached"));
        enable();
        CACHED.add(3);
        CACHED.incr();
        assert_eq!(counter("test.cached").value(), 4);
        disable();
    }

    #[test]
    fn snapshot_reflects_metrics() {
        let _serial = flag_lock();
        enable();
        add("test.snapshot.count", 7);
        set_gauge("test.snapshot.gauge", 1.5);
        record_duration("test.snapshot.hist", Duration::from_millis(2));
        let snap = snapshot();
        assert_eq!(snap.counters["test.snapshot.count"], 7);
        assert_eq!(snap.gauges["test.snapshot.gauge"], 1.5);
        assert_eq!(snap.histograms["test.snapshot.hist"].count, 1);
        let json = export_json();
        assert!(json.contains("test.snapshot.count"));
        disable();
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let _serial = flag_lock();
        enable();
        {
            let _guard = time("test.timer");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(histogram("test.timer").count() >= 1);
        disable();
    }
}
