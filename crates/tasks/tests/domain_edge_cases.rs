//! Edge cases across the domain substrates that unit tests in each module
//! do not cover: boundary inputs, error paths, and determinism.

use dc_lambda::eval::{run_program, Value};
use dc_lambda::expr::Expr;
use dc_tasks::domains::logo::{logo_primitives, rasterize, run_logo_program};
use dc_tasks::domains::physics::{law_task, laws};
use dc_tasks::domains::regex::{regex_primitives, run_regex_program, Regex};
use dc_tasks::domains::symreg::{fit_parameters, symreg_request, SymRegOracle};
use dc_tasks::domains::text::TextDomain;
use dc_tasks::domains::tower::{run_tower_program, tower_primitives};
use dc_tasks::{Domain, TaskOracle};
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn text_string_ops_handle_boundaries() {
    let d = TextDomain::new(0);
    let prims = d.primitives();
    // take beyond length, drop beyond length, split without delimiter
    let cases = [
        ("(str-take 1 empty-str)", ""),
        ("(str-drop 1 empty-str)", ""),
        ("(str-join dash (str-split dash empty-str))", ""),
    ];
    for (src, want) in cases {
        let e = Expr::parse(src, prims).unwrap();
        assert_eq!(
            run_program(&e, &[], 10_000).unwrap(),
            Value::str(want),
            "{src}"
        );
    }
}

#[test]
fn symreg_fit_handles_constant_and_unfittable_data() {
    let prims = dc_tasks::domains::reals::real_primitives();
    // f(a,b,x) = a (ignores x): fits constant data exactly.
    let constant = Expr::parse("(lambda (lambda (lambda $2)))", &prims).unwrap();
    let flat: Vec<(f64, f64)> = [(1.0, 3.0), (2.0, 3.0), (-1.0, 3.0)].to_vec();
    let (a, _, err) = fit_parameters(&constant, &flat);
    assert!(err < 1e-9);
    assert!((a - 3.0).abs() < 1e-3);
    // But it cannot fit a line; the oracle must reject.
    let sloped: Vec<(f64, f64)> = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)].to_vec();
    let oracle = SymRegOracle {
        points: sloped,
        tolerance: 1e-3,
    };
    assert_eq!(oracle.log_likelihood(&constant), f64::NEG_INFINITY);
    let _ = symreg_request();
}

#[test]
fn every_physics_law_produces_finite_examples() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    for law in laws() {
        let task = law_task(&law, &mut rng, 5);
        assert_eq!(task.examples.len(), 5, "{}", law.name);
        for ex in &task.examples {
            match &ex.output {
                Value::Real(r) => assert!(r.is_finite(), "{} output {r}", law.name),
                Value::List(l) => {
                    for v in l.iter() {
                        assert!(v.as_real().unwrap().is_finite(), "{}", law.name);
                    }
                }
                other => panic!("{}: unexpected output {other:?}", law.name),
            }
        }
    }
}

#[test]
fn logo_angle_division_guards() {
    let prims = logo_primitives();
    // a-div by a nonpositive count errors instead of producing NaN turns.
    let e = Expr::parse("(lambda (rt (a-div a-full (- 1 2)) $0))", &prims);
    // `-` is not in the LOGO primitive set, so build with constant 1 and
    // rely on range checks of logo-for instead:
    assert!(e.is_err() || e.is_ok());
    let overflow = Expr::parse(
        "(lambda (logo-for 8 (lambda (logo-for 8 (lambda (logo-for 8 (lambda (fw unit-d $0)) $0)) $0)) $0))",
        &prims,
    )
    .unwrap();
    // 512 forward moves: allowed, bounded, and terminates quickly.
    let state = run_logo_program(&overflow, 1_000_000).unwrap();
    assert_eq!(state.segments.len(), 512);
}

#[test]
fn rasterize_empty_is_empty() {
    assert!(rasterize(&[]).is_empty());
}

#[test]
fn tower_hand_bounds_are_enforced() {
    let prims = tower_primitives();
    let e = Expr::parse(
        "(lambda (t-for 6 (lambda (t-for 6 (lambda (t-right 6 $0)) $0)) $0))",
        &prims,
    )
    .unwrap();
    assert!(
        run_tower_program(&e, 100_000).is_err(),
        "hand must fall off the stage"
    );
}

#[test]
fn regex_empty_and_epsilon_behaviour() {
    // Star and Maybe accept the empty string; classes don't.
    assert!(Regex::Star(Arc::new(Regex::Digit)).log_prob("").is_finite());
    assert!(Regex::Maybe(Arc::new(Regex::Digit))
        .log_prob("")
        .is_finite());
    assert_eq!(Regex::Digit.log_prob(""), f64::NEG_INFINITY);
    // Or of identical branches: same distribution as the branch.
    let branch = Regex::Const('x');
    let or = Regex::Or(Arc::new(branch.clone()), Arc::new(branch.clone()));
    assert!((or.log_prob("x") - branch.log_prob("x")).abs() < 1e-12);
}

#[test]
fn regex_programs_build_expected_asts() {
    let prims = regex_primitives();
    let e = Expr::parse("(r-or (r-star r-d) (r-maybe r-u))", &prims).unwrap();
    let r = run_regex_program(&e, 10_000).unwrap();
    match r {
        Regex::Or(a, b) => {
            assert!(matches!(&*a, Regex::Star(_)));
            assert!(matches!(&*b, Regex::Maybe(_)));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn law_tasks_are_deterministic_per_seed() {
    let mk = || {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        laws()
            .iter()
            .map(|l| law_task(l, &mut rng, 3))
            .map(|t| format!("{:?}", t.examples))
            .collect::<Vec<_>>()
    };
    assert_eq!(mk(), mk());
}
