//! The [`Domain`] trait: everything wake/sleep needs to run on one of the
//! paper's eight problem-solving domains — base primitives, train/test
//! task corpora, a featurizer, and a way to turn dreamed programs into
//! dreamed tasks.

use std::sync::Arc;

use dc_grammar::library::Library;
use dc_lambda::eval::{EvalCtx, Value};
use dc_lambda::expr::Expr;
use dc_lambda::primitives::PrimitiveSet;
use dc_lambda::types::Type;
use rand::RngCore;

use crate::task::Task;

/// A problem-solving domain (§5 of the paper).
pub trait Domain: Send + Sync {
    /// Short name, e.g. `"list"`.
    fn name(&self) -> &str;

    /// The base language the learner starts with.
    fn primitives(&self) -> &PrimitiveSet;

    /// The initial library over those primitives.
    fn initial_library(&self) -> Arc<Library> {
        Arc::new(Library::from_primitives(self.primitives().iter().cloned()))
    }

    /// Training tasks (the corpus solved during waking).
    fn train_tasks(&self) -> &[Task];

    /// Held-out test tasks (Fig 7 reports accuracy on these).
    fn test_tasks(&self) -> &[Task];

    /// Dimensionality of task feature vectors.
    fn feature_dim(&self) -> usize {
        64
    }

    /// The request types dreams should be sampled at.
    fn dream_requests(&self) -> Vec<Type>;

    /// Turn a dreamed program into a task by executing it on sampled
    /// inputs (§4 "Fantasies"). `None` when the program crashes or its
    /// outputs are degenerate.
    fn dream(&self, program: &Expr, request: &Type, rng: &mut dyn RngCore) -> Option<Task>;
}

/// Run `program` on each input tuple, failing fast. A shared helper for
/// building dreamed I/O tasks.
pub fn run_on_inputs(
    program: &Expr,
    inputs: &[Vec<Value>],
    fuel: u64,
) -> Option<Vec<crate::task::Example>> {
    let mut out = Vec::with_capacity(inputs.len());
    for ins in inputs {
        let mut ctx = EvalCtx::with_fuel(fuel);
        let v = ctx.run(program, ins).ok()?;
        out.push(crate::task::Example {
            inputs: ins.clone(),
            output: v,
        });
    }
    Some(out)
}

/// Are the outputs degenerate (all identical, ignoring inputs)? Dreams
/// like these teach the recognition model nothing and are dropped.
pub fn degenerate_outputs(examples: &[crate::task::Example]) -> bool {
    examples.len() > 1 && examples.windows(2).all(|w| w[0].output == w[1].output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Example;
    use dc_lambda::primitives::base_primitives;

    #[test]
    fn run_on_inputs_collects_examples() {
        let prims = base_primitives();
        let e = Expr::parse("(lambda (+ $0 1))", &prims).unwrap();
        let examples =
            run_on_inputs(&e, &[vec![Value::Int(1)], vec![Value::Int(5)]], 1_000).unwrap();
        assert_eq!(examples.len(), 2);
        assert_eq!(examples[1].output, Value::Int(6));
    }

    #[test]
    fn run_on_inputs_fails_on_crash() {
        let prims = base_primitives();
        let e = Expr::parse("(lambda (car nil))", &prims).unwrap();
        assert!(run_on_inputs(&e, &[vec![Value::Int(1)]], 1_000).is_none());
    }

    #[test]
    fn degenerate_detection() {
        let same = vec![
            Example {
                inputs: vec![Value::Int(1)],
                output: Value::Int(0),
            },
            Example {
                inputs: vec![Value::Int(2)],
                output: Value::Int(0),
            },
        ];
        assert!(degenerate_outputs(&same));
        let diff = vec![
            Example {
                inputs: vec![Value::Int(1)],
                output: Value::Int(1),
            },
            Example {
                inputs: vec![Value::Int(2)],
                output: Value::Int(0),
            },
        ];
        assert!(!degenerate_outputs(&diff));
    }
}
