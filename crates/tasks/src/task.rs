//! Synthesis tasks: a request type plus a likelihood oracle `P[x|ρ]`.
//!
//! For I/O domains the likelihood is 1 iff the program reproduces every
//! output (footnote 1 of the paper); probabilistic domains (generative
//! regexes) return real log-likelihoods; symbolic regression fits
//! continuous parameters in an inner loop before scoring.

use std::fmt;
use std::sync::Arc;

use dc_lambda::eval::{EvalCtx, Value};
use dc_lambda::expr::Expr;
use dc_lambda::types::Type;

/// One input/output example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Arguments fed to the program, in order.
    pub inputs: Vec<Value>,
    /// The required output.
    pub output: Value,
}

/// Scores how well a program explains a task: `log P[x | ρ]`.
pub trait TaskOracle: Send + Sync {
    /// Log-likelihood of the task given the program; `-inf` when the
    /// program fails the task.
    fn log_likelihood(&self, program: &Expr) -> f64;
}

/// The standard oracle: exact match on every I/O example.
#[derive(Debug, Clone)]
pub struct IoOracle {
    /// The examples to reproduce.
    pub examples: Vec<Example>,
    /// Evaluation fuel per example.
    pub fuel: u64,
}

impl TaskOracle for IoOracle {
    fn log_likelihood(&self, program: &Expr) -> f64 {
        for ex in &self.examples {
            let mut ctx = EvalCtx::with_fuel(self.fuel);
            match ctx.run(program, &ex.inputs) {
                Ok(v) if v == ex.output => {}
                _ => return f64::NEG_INFINITY,
            }
        }
        0.0
    }
}

/// A synthesis task.
#[derive(Clone)]
pub struct Task {
    /// Human-readable name, e.g. `"double every element"`.
    pub name: String,
    /// The type of the program being sought.
    pub request: Type,
    /// Scores candidate programs.
    pub oracle: Arc<dyn TaskOracle>,
    /// Cached feature vector for the recognition model.
    pub features: Vec<f64>,
    /// The observable examples (may be empty for non-I/O domains).
    pub examples: Vec<Example>,
}

impl Task {
    /// Build an exact-match I/O task, featurized by `features`.
    pub fn io(name: &str, request: Type, examples: Vec<Example>, features: Vec<f64>) -> Task {
        Task {
            name: name.to_owned(),
            request,
            oracle: Arc::new(IoOracle {
                examples: examples.clone(),
                fuel: 50_000,
            }),
            features,
            examples,
        }
    }

    /// Does `program` solve this task (log-likelihood above `-inf`)?
    pub fn check(&self, program: &Expr) -> bool {
        self.oracle.log_likelihood(program).is_finite()
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("request", &self.request.to_string())
            .field("examples", &self.examples.len())
            .finish()
    }
}

/// Feature hashing over example values: a fixed-dimension featurization
/// usable by every I/O domain. Each scalar observation contributes ±1 to a
/// hashed bucket; vectors are ℓ2-normalized at the end.
pub fn io_features(examples: &[Example], dim: usize) -> Vec<f64> {
    let mut out = vec![0.0; dim];
    let mut hasher = |tag: u64, payload: u64, weight: f64, out: &mut Vec<f64>| {
        // splitmix-style mixing
        let mut z = tag
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(payload);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let bucket = (z % dim as u64) as usize;
        let sign = if (z >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        out[bucket] += sign * weight;
    };
    for (i, ex) in examples.iter().enumerate() {
        for (j, v) in ex.inputs.iter().enumerate() {
            hash_value(v, (i as u64) << 8 | (j as u64) << 4, &mut hasher, &mut out);
        }
        hash_value(&ex.output, (i as u64) << 8 | 0xf, &mut hasher, &mut out);
        // Relational features: does output equal an input? lengths?
        for v in &ex.inputs {
            if v == &ex.output {
                hasher(0xeeee, 1, 1.0, &mut out);
            }
        }
    }
    let norm = out.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in &mut out {
            *v /= norm;
        }
    }
    out
}

fn hash_value(
    v: &Value,
    tag: u64,
    hasher: &mut impl FnMut(u64, u64, f64, &mut Vec<f64>),
    out: &mut Vec<f64>,
) {
    match v {
        Value::Int(i) => hasher(tag ^ 0x1, *i as u64, 1.0, out),
        Value::Real(r) => hasher(tag ^ 0x2, r.to_bits() >> 40, 1.0, out),
        Value::Bool(b) => hasher(tag ^ 0x3, *b as u64, 1.0, out),
        Value::Char(c) => hasher(tag ^ 0x4, *c as u64, 1.0, out),
        Value::Str(s) => {
            hasher(tag ^ 0x5, s.len() as u64, 1.0, out);
            for (k, c) in s.chars().enumerate().take(16) {
                hasher(tag ^ 0x50, (k as u64) << 32 | c as u64, 0.5, out);
            }
            // character-class counts
            let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
            let alpha = s.chars().filter(|c| c.is_alphabetic()).count();
            hasher(tag ^ 0x51, digits as u64, 1.0, out);
            hasher(tag ^ 0x52, alpha as u64, 1.0, out);
        }
        Value::List(l) => {
            hasher(tag ^ 0x6, l.len() as u64, 1.0, out);
            for (k, item) in l.iter().enumerate().take(16) {
                hash_value(item, tag ^ 0x60 ^ ((k as u64) << 16), hasher, out);
            }
        }
        _ => hasher(tag ^ 0x7, 0, 0.25, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::primitives::base_primitives;
    use dc_lambda::types::{tint, tlist};

    fn list(vals: &[i64]) -> Value {
        Value::list(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn io_oracle_accepts_correct_program() {
        let prims = base_primitives();
        let double = Expr::parse("(lambda (map (lambda (+ $0 $0)) $0))", &prims).unwrap();
        let task = Task::io(
            "double",
            Type::arrow(tlist(tint()), tlist(tint())),
            vec![
                Example {
                    inputs: vec![list(&[1, 2])],
                    output: list(&[2, 4]),
                },
                Example {
                    inputs: vec![list(&[0])],
                    output: list(&[0]),
                },
            ],
            vec![],
        );
        assert!(task.check(&double));
        let wrong = Expr::parse("(lambda $0)", &prims).unwrap();
        assert!(!task.check(&wrong));
    }

    #[test]
    fn io_oracle_rejects_crashing_program() {
        let prims = base_primitives();
        let crashy = Expr::parse("(lambda (car nil))", &prims).unwrap();
        let task = Task::io(
            "anything",
            Type::arrow(tlist(tint()), tint()),
            vec![Example {
                inputs: vec![list(&[1])],
                output: Value::Int(1),
            }],
            vec![],
        );
        assert!(!task.check(&crashy));
    }

    #[test]
    fn features_have_fixed_dim_and_unit_norm() {
        let ex = vec![Example {
            inputs: vec![list(&[1, 2, 3])],
            output: list(&[2, 4, 6]),
        }];
        let f = io_features(&ex, 64);
        assert_eq!(f.len(), 64);
        let norm: f64 = f.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_tasks_have_different_features() {
        let a = vec![Example {
            inputs: vec![list(&[1, 2])],
            output: list(&[2, 4]),
        }];
        let b = vec![Example {
            inputs: vec![list(&[5])],
            output: Value::Int(5).clone(),
        }];
        assert_ne!(io_features(&a, 64), io_features(&b, 64));
    }

    #[test]
    fn empty_examples_featurize_to_zeros() {
        let f = io_features(&[], 16);
        assert!(f.iter().all(|v| *v == 0.0));
    }
}
