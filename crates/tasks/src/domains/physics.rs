//! The physics-law discovery domain (§5.2, Fig 11A): 60 physical laws and
//! mathematical identities from AP/MCAT-level physics, specified by
//! numerical examples, to be explained starting from a generic basis of
//! recursive sequence operations plus arithmetic (vectors are lists of
//! numbers; constants are in natural units, as the paper's Planck-unit
//! convention).

use std::sync::Arc;

use dc_lambda::eval::Value;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::{
    prim_car, prim_cdr, prim_cons, prim_fold, prim_map, prim_nil, prim_zip, PrimitiveSet,
};
use dc_lambda::types::{tlist, treal, Type};
use rand::{Rng, RngCore, SeedableRng};

use crate::domain::Domain;
use crate::domains::reals::{real_primitives, RealOracle};
use crate::task::{io_features, Example, Task};

/// Argument kinds for a law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arg {
    /// A positive scalar.
    Scalar,
    /// A 3-vector (list of reals).
    Vector,
}

/// Output kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Out {
    /// A real number.
    Scalar,
    /// A list of reals.
    Vector,
}

/// The ground-truth implementation of a law.
pub type LawFn = dyn Fn(&[LawInput]) -> Vec<f64> + Send + Sync;

/// One law: name, signature, and ground-truth function.
pub struct Law {
    /// Conventional name, e.g. `"F = m a"`.
    pub name: &'static str,
    /// Argument kinds.
    pub args: Vec<Arg>,
    /// Output kind.
    pub out: Out,
    /// Ground truth.
    pub f: Box<LawFn>,
}

/// A sampled law input.
#[derive(Debug, Clone)]
pub enum LawInput {
    /// Scalar value.
    S(f64),
    /// Vector value.
    V(Vec<f64>),
}

impl LawInput {
    fn s(&self) -> f64 {
        match self {
            LawInput::S(v) => *v,
            LawInput::V(_) => panic!("expected scalar"),
        }
    }
    fn v(&self) -> &[f64] {
        match self {
            LawInput::V(v) => v,
            LawInput::S(_) => panic!("expected vector"),
        }
    }
}

fn dot(u: &[f64], v: &[f64]) -> f64 {
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// The 60-law dataset (mechanics, electromagnetism, vector algebra).
pub fn laws() -> Vec<Law> {
    fn s1(name: &'static str, f: impl Fn(f64) -> f64 + Send + Sync + 'static) -> Law {
        Law {
            name,
            args: vec![Arg::Scalar],
            out: Out::Scalar,
            f: Box::new(move |a| vec![f(a[0].s())]),
        }
    }
    fn s2(name: &'static str, f: impl Fn(f64, f64) -> f64 + Send + Sync + 'static) -> Law {
        Law {
            name,
            args: vec![Arg::Scalar, Arg::Scalar],
            out: Out::Scalar,
            f: Box::new(move |a| vec![f(a[0].s(), a[1].s())]),
        }
    }
    fn s3(name: &'static str, f: impl Fn(f64, f64, f64) -> f64 + Send + Sync + 'static) -> Law {
        Law {
            name,
            args: vec![Arg::Scalar; 3],
            out: Out::Scalar,
            f: Box::new(move |a| vec![f(a[0].s(), a[1].s(), a[2].s())]),
        }
    }
    fn v1s(name: &'static str, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Law {
        Law {
            name,
            args: vec![Arg::Vector],
            out: Out::Scalar,
            f: Box::new(move |a| vec![f(a[0].v())]),
        }
    }
    fn v2s(name: &'static str, f: impl Fn(&[f64], &[f64]) -> f64 + Send + Sync + 'static) -> Law {
        Law {
            name,
            args: vec![Arg::Vector, Arg::Vector],
            out: Out::Scalar,
            f: Box::new(move |a| vec![f(a[0].v(), a[1].v())]),
        }
    }
    fn v2v(
        name: &'static str,
        f: impl Fn(&[f64], &[f64]) -> Vec<f64> + Send + Sync + 'static,
    ) -> Law {
        Law {
            name,
            args: vec![Arg::Vector, Arg::Vector],
            out: Out::Vector,
            f: Box::new(move |a| f(a[0].v(), a[1].v())),
        }
    }
    fn sv(name: &'static str, f: impl Fn(f64, &[f64]) -> Vec<f64> + Send + Sync + 'static) -> Law {
        Law {
            name,
            args: vec![Arg::Scalar, Arg::Vector],
            out: Out::Vector,
            f: Box::new(move |a| f(a[0].s(), a[1].v())),
        }
    }

    vec![
        // --- mechanics, scalar ---
        s2("F = m a", |m, a| m * a),
        s2("p = m v", |m, v| m * v),
        s2("KE = 1/2 m v^2", |m, v| 0.5 * m * v * v),
        s3("U = m g h", |m, g, h| m * g * h),
        s2("W = F d", |f, d| f * d),
        s2("P = W / t", |w, t| w / t),
        s2("v = d / t", |d, t| d / t),
        s3("a = (v2 - v1) / t", |v2, v1, t| (v2 - v1) / t),
        s3("v = v0 + a t", |v0, a, t| v0 + a * t),
        s3("x = v0 t + 1/2 a t^2", |v0, a, t| v0 * t + 0.5 * a * t * t),
        s2("F = k x (spring)", |k, x| k * x),
        s2("U = 1/2 k x^2 (spring)", |k, x| 0.5 * k * x * x),
        s2("tau = r F", |r, f| r * f),
        s2("omega = v / r", |v, r| v / r),
        s2("a_c = v^2 / r", |v, r| v * v / r),
        s3("F_c = m v^2 / r", |m, v, r| m * v * v / r),
        s2("rho = m / V", |m, v| m / v),
        s2("P = F / A", |f, a| f / a),
        s3("P = rho g h", |rho, g, h| rho * g * h),
        s2("Q = A v (flow)", |a, v| a * v),
        s2("w = m g", |m, g| m * g),
        s2("F = mu N", |mu, n| mu * n),
        s2("g = F / m", |f, m| f / m),
        s2("J = F t (impulse)", |f, t| f * t),
        s1("f = 1 / T", |t| 1.0 / t),
        s2("v2 = 2 a x (squared speed)", |a, x| 2.0 * a * x),
        s2("KE ratio = (v2/v1)^2", |v2, v1| (v2 / v1) * (v2 / v1)),
        s2("reduced mass = m1 m2/(m1+m2)", |a, b| a * b / (a + b)),
        s2("average = (a + b) / 2", |a, b| 0.5 * (a + b)),
        // --- gravity & electrostatics (natural units) ---
        s3("F = m1 m2 / r^2 (gravity)", |m1, m2, r| m1 * m2 / (r * r)),
        s3("F = q1 q2 / r^2 (Coulomb)", |q1, q2, r| q1 * q2 / (r * r)),
        s2("U = m1 m2 / r (grav potential)", |m, r| m / r),
        s1("inverse square of distance", |r| 1.0 / (r * r)),
        s2("field = F / q", |f, q| f / q),
        // --- circuits ---
        s2("V = I R", |i, r| i * r),
        s2("P = I V", |i, v| i * v),
        s2("P = I^2 R", |i, r| i * i * r),
        s2("P = V^2 / R", |v, r| v * v / r),
        s2("R series = R1 + R2", |a, b| a + b),
        s2("R parallel = R1 R2/(R1+R2)", |a, b| a * b / (a + b)),
        s2("C = Q / V", |q, v| q / v),
        s2("U = 1/2 C V^2", |c, v| 0.5 * c * v * v),
        s2("E = Q V", |q, v| q * v),
        s2("Q = I t", |i, t| i * t),
        // --- waves & optics ---
        s2("lambda = v / f", |v, f| v / f),
        s2("n = c / v (refraction)", |c, v| c / v),
        s2("E = h f (photon)", |h, f| h * f),
        s2("thin lens f = ab/(a+b)", |a, b| a * b / (a + b)),
        s1("period ratio = sqrt(L)", |l| l.sqrt()),
        s2("v = sqrt(T/mu) (string)", |t, mu| (t / mu).sqrt()),
        // --- vector algebra ---
        v2s("dot product", dot),
        v2v("vector sum", |u, v| {
            u.iter().zip(v).map(|(a, b)| a + b).collect()
        }),
        v2v("vector difference", |u, v| {
            u.iter().zip(v).map(|(a, b)| a - b).collect()
        }),
        sv("scalar multiply", |a, v| v.iter().map(|x| a * x).collect()),
        v1s("norm", |v| dot(v, v).sqrt()),
        v1s("norm squared", |v| dot(v, v)),
        v1s("sum of components", |v| v.iter().sum()),
        v2s("distance between points", |u, v| {
            u.iter()
                .zip(v)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        }),
        v2v("midpoint", |u, v| {
            u.iter().zip(v).map(|(a, b)| 0.5 * (a + b)).collect()
        }),
        v2s("work = F . d", dot),
    ]
}

/// The basis the learner starts from: recursive sequence operations plus
/// real arithmetic — *not* vector algebra, which must be invented.
pub fn physics_primitives() -> PrimitiveSet {
    let mut s = real_primitives();
    s.add(prim_map())
        .add(prim_fold())
        .add(prim_zip())
        .add(prim_car())
        .add(prim_cdr())
        .add(prim_cons())
        .add(prim_nil());
    s
}

fn law_request(law: &Law) -> Type {
    let args = law
        .args
        .iter()
        .map(|a| match a {
            Arg::Scalar => treal(),
            Arg::Vector => tlist(treal()),
        })
        .collect();
    let out = match law.out {
        Out::Scalar => treal(),
        Out::Vector => tlist(treal()),
    };
    Type::arrows(args, out)
}

fn sample_input<R: Rng + ?Sized>(kind: Arg, rng: &mut R) -> LawInput {
    match kind {
        Arg::Scalar => LawInput::S(rng.gen_range(0.5..3.0)),
        Arg::Vector => LawInput::V((0..3).map(|_| rng.gen_range(0.5..3.0)).collect()),
    }
}

fn input_value(i: &LawInput) -> Value {
    match i {
        LawInput::S(v) => Value::Real(*v),
        LawInput::V(v) => Value::list(v.iter().map(|&x| Value::Real(x)).collect()),
    }
}

fn output_value(out: Out, vals: Vec<f64>) -> Value {
    match out {
        Out::Scalar => Value::Real(vals[0]),
        Out::Vector => Value::list(vals.into_iter().map(Value::Real).collect()),
    }
}

/// Build the task for one law with `n` random numerical examples.
pub fn law_task<R: Rng + ?Sized>(law: &Law, rng: &mut R, n: usize) -> Task {
    let mut examples = Vec::with_capacity(n);
    for _ in 0..n {
        let inputs: Vec<LawInput> = law.args.iter().map(|&k| sample_input(k, rng)).collect();
        let outputs = (law.f)(&inputs);
        examples.push(Example {
            inputs: inputs.iter().map(input_value).collect(),
            output: output_value(law.out, outputs),
        });
    }
    let features = io_features(&examples, 64);
    Task {
        name: law.name.to_owned(),
        request: law_request(law),
        oracle: Arc::new(RealOracle {
            examples: examples.clone(),
            rel_tol: 1e-3,
            fuel: 20_000,
        }),
        features,
        examples,
    }
}

/// The physics domain. Unlike the I/O domains there is no held-out split:
/// the paper reports the fraction of all 60 laws solved (Fig 11A), so
/// `test_tasks` is empty and evaluation reads `train_tasks`.
pub struct PhysicsDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
    test: Vec<Task>,
}

impl PhysicsDomain {
    /// Build all 60 law tasks.
    pub fn new(seed: u64) -> PhysicsDomain {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let primitives = physics_primitives();
        let train = laws()
            .iter()
            .map(|law| law_task(law, &mut rng, 5))
            .collect();
        PhysicsDomain {
            primitives,
            train,
            test: Vec::new(),
        }
    }
}

impl Domain for PhysicsDomain {
    fn name(&self) -> &str {
        "physics"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &self.test
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![
            Type::arrows(vec![treal(), treal()], treal()),
            Type::arrows(vec![tlist(treal()), tlist(treal())], treal()),
        ]
    }
    fn dream(&self, program: &Expr, request: &Type, rng: &mut dyn RngCore) -> Option<Task> {
        let arg_kinds: Vec<Arg> = request
            .arguments()
            .iter()
            .map(|t| {
                if t.is_arrow() || **t == tlist(treal()) {
                    Arg::Vector
                } else {
                    Arg::Scalar
                }
            })
            .collect();
        let inputs: Vec<Vec<Value>> = (0..5)
            .map(|_| {
                arg_kinds
                    .iter()
                    .map(|&k| input_value(&sample_input(k, rng)))
                    .collect()
            })
            .collect();
        let examples = crate::domain::run_on_inputs(program, &inputs, 20_000)?;
        if crate::domain::degenerate_outputs(&examples) {
            return None;
        }
        let features = io_features(&examples, 64);
        Some(Task {
            name: "dream".to_owned(),
            request: request.clone(),
            oracle: Arc::new(RealOracle {
                examples: examples.clone(),
                rel_tol: 1e-3,
                fuel: 20_000,
            }),
            features,
            examples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_sixty_laws() {
        assert_eq!(laws().len(), 60);
        let d = PhysicsDomain::new(0);
        assert_eq!(d.train_tasks().len(), 60);
    }

    #[test]
    fn newton_second_law_solved_by_multiplication() {
        let d = PhysicsDomain::new(1);
        let prims = d.primitives();
        let p = Expr::parse("(lambda (lambda (*. $1 $0)))", prims).unwrap();
        let t = d
            .train_tasks()
            .iter()
            .find(|t| t.name == "F = m a")
            .unwrap();
        assert!(t.check(&p));
        // and division does not solve it
        let q = Expr::parse("(lambda (lambda (/. $1 $0)))", prims).unwrap();
        assert!(!t.check(&q));
    }

    #[test]
    fn dot_product_solved_by_zip_fold() {
        let d = PhysicsDomain::new(2);
        let prims = d.primitives();
        let dot = Expr::parse(
            "(lambda (lambda (fold (zip $1 $0 (lambda (lambda (*. $1 $0)))) (-. 1r 1r) (lambda (lambda (+. $1 $0))))))",
            prims,
        )
        .unwrap();
        let t = d
            .train_tasks()
            .iter()
            .find(|t| t.name == "dot product")
            .unwrap();
        assert!(t.check(&dot), "zip/fold dot product rejected");
    }

    #[test]
    fn inverse_square_law_solved() {
        let d = PhysicsDomain::new(3);
        let prims = d.primitives();
        let p = Expr::parse(
            "(lambda (lambda (lambda (/. (*. $2 $1) (*. $0 $0)))))",
            prims,
        )
        .unwrap();
        let t = d
            .train_tasks()
            .iter()
            .find(|t| t.name == "F = m1 m2 / r^2 (gravity)")
            .unwrap();
        assert!(t.check(&p));
    }

    #[test]
    fn vector_sum_solved_by_zip() {
        let d = PhysicsDomain::new(4);
        let prims = d.primitives();
        let p = Expr::parse(
            "(lambda (lambda (zip $1 $0 (lambda (lambda (+. $1 $0))))))",
            prims,
        )
        .unwrap();
        let t = d
            .train_tasks()
            .iter()
            .find(|t| t.name == "vector sum")
            .unwrap();
        assert!(t.check(&p));
    }

    #[test]
    fn norm_solved_with_sqrt_of_dot() {
        let d = PhysicsDomain::new(5);
        let prims = d.primitives();
        let p = Expr::parse(
            "(lambda (sqrt. (fold (map (lambda (*. $0 $0)) $0) (-. 1r 1r) (lambda (lambda (+. $1 $0))))))",
            prims,
        )
        .unwrap();
        let t = d.train_tasks().iter().find(|t| t.name == "norm").unwrap();
        assert!(t.check(&p));
    }
}
