//! The eight evaluation domains of the paper (§5), each with any
//! simulator substrate it needs.

pub mod list;
pub mod logo;
pub mod origami;
pub mod physics;
pub mod reals;
pub mod regex;
pub mod symreg;
pub mod text;
pub mod tower;
