//! The list-processing domain (§5): functional-programming problems over
//! lists of small integers, in the style of the EC2 corpus the paper
//! trains on. Tasks are generated programmatically from ~40 templates
//! spanning the difficulty spectrum, split into train and test.

use dc_lambda::eval::Value;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::{base_primitives, PrimitiveSet};
use dc_lambda::types::{tbool, tint, tlist, Type};
use rand::{Rng, RngCore, SeedableRng};

use crate::domain::{degenerate_outputs, run_on_inputs, Domain};
use crate::task::{io_features, Example, Task};

/// The list-processing domain.
pub struct ListDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
    test: Vec<Task>,
}

fn ints(vals: &[i64]) -> Value {
    Value::list(vals.iter().map(|&v| Value::Int(v)).collect())
}

fn random_list<R: Rng + ?Sized>(rng: &mut R, max_len: usize, max_val: i64) -> Vec<i64> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0..=max_val)).collect()
}

/// Request type `list(int) -> list(int)`.
fn ll() -> Type {
    Type::arrow(tlist(tint()), tlist(tint()))
}
/// Request type `list(int) -> int`.
fn li() -> Type {
    Type::arrow(tlist(tint()), tint())
}
/// Request type `list(int) -> bool`.
fn lb() -> Type {
    Type::arrow(tlist(tint()), tbool())
}

type ListFn = dyn Fn(&[i64]) -> Option<Value> + Send + Sync;

struct Template {
    name: &'static str,
    request: Type,
    /// Compute the output for a random input list; `None` = skip input.
    f: Box<ListFn>,
    /// Minimum input length the template needs.
    min_len: usize,
}

fn templates() -> Vec<Template> {
    fn t(
        name: &'static str,
        request: Type,
        min_len: usize,
        f: impl Fn(&[i64]) -> Option<Value> + Send + Sync + 'static,
    ) -> Template {
        Template {
            name,
            request,
            f: Box::new(f),
            min_len,
        }
    }
    let is_prime = |n: i64| n >= 2 && (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0);
    let is_square = |n: i64| (0..=n).any(|r| r * r == n);
    vec![
        t("add1 to each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x + 1).collect::<Vec<_>>()))
        }),
        t("add2 to each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x + 2).collect::<Vec<_>>()))
        }),
        t("double each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x * 2).collect::<Vec<_>>()))
        }),
        t("triple each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x * 3).collect::<Vec<_>>()))
        }),
        t("subtract1 each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x - 1).collect::<Vec<_>>()))
        }),
        t("square each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x * x).collect::<Vec<_>>()))
        }),
        t("length", li(), 0, |l| Some(Value::Int(l.len() as i64))),
        t("sum", li(), 0, |l| Some(Value::Int(l.iter().sum()))),
        t("product", li(), 0, |l| {
            Some(Value::Int(l.iter().take(5).product()))
        }),
        t("maximum", li(), 1, |l| {
            l.iter().max().map(|&m| Value::Int(m))
        }),
        t("minimum", li(), 1, |l| {
            l.iter().min().map(|&m| Value::Int(m))
        }),
        t("head", li(), 1, |l| l.first().map(|&h| Value::Int(h))),
        t("last", li(), 1, |l| l.last().map(|&h| Value::Int(h))),
        t("second element", li(), 2, |l| {
            l.get(1).map(|&h| Value::Int(h))
        }),
        t("third element", li(), 3, |l| {
            l.get(2).map(|&h| Value::Int(h))
        }),
        t("tail", ll(), 1, |l| Some(ints(&l[1..]))),
        t("drop first two", ll(), 2, |l| Some(ints(&l[2..]))),
        t("take first two", ll(), 2, |l| Some(ints(&l[..2]))),
        t("reverse", ll(), 0, |l| {
            Some(ints(&l.iter().rev().copied().collect::<Vec<_>>()))
        }),
        t("sort", ll(), 0, |l| {
            let mut v = l.to_vec();
            v.sort_unstable();
            Some(ints(&v))
        }),
        t("keep evens", ll(), 0, |l| {
            Some(ints(
                &l.iter()
                    .filter(|x| *x % 2 == 0)
                    .copied()
                    .collect::<Vec<_>>(),
            ))
        }),
        t("keep odds", ll(), 0, |l| {
            Some(ints(
                &l.iter()
                    .filter(|x| *x % 2 == 1)
                    .copied()
                    .collect::<Vec<_>>(),
            ))
        }),
        t("keep greater than 3", ll(), 0, |l| {
            Some(ints(
                &l.iter().filter(|x| **x > 3).copied().collect::<Vec<_>>(),
            ))
        }),
        t("remove zeros", ll(), 0, |l| {
            Some(ints(
                &l.iter().filter(|x| **x != 0).copied().collect::<Vec<_>>(),
            ))
        }),
        t("count zeros", li(), 0, |l| {
            Some(Value::Int(l.iter().filter(|x| **x == 0).count() as i64))
        }),
        t("count evens", li(), 0, |l| {
            Some(Value::Int(l.iter().filter(|x| *x % 2 == 0).count() as i64))
        }),
        t("prepend zero", ll(), 0, |l| {
            let mut v = vec![0];
            v.extend_from_slice(l);
            Some(ints(&v))
        }),
        t("append zero", ll(), 0, |l| {
            let mut v = l.to_vec();
            v.push(0);
            Some(ints(&v))
        }),
        t("duplicate each element", ll(), 0, |l| {
            Some(ints(&l.iter().flat_map(|&x| [x, x]).collect::<Vec<_>>()))
        }),
        t("repeat list twice", ll(), 0, |l| {
            let mut v = l.to_vec();
            v.extend_from_slice(l);
            Some(ints(&v))
        }),
        t("is empty", lb(), 0, |l| Some(Value::Bool(l.is_empty()))),
        t("is singleton", lb(), 0, |l| Some(Value::Bool(l.len() == 1))),
        t("contains zero", lb(), 0, |l| {
            Some(Value::Bool(l.contains(&0)))
        }),
        t("is sorted", lb(), 0, |l| {
            Some(Value::Bool(l.windows(2).all(|w| w[0] <= w[1])))
        }),
        t("all even", lb(), 0, |l| {
            Some(Value::Bool(l.iter().all(|x| x % 2 == 0)))
        }),
        t("replace each with zero", ll(), 0, |l| {
            Some(ints(&vec![0; l.len()]))
        }),
        t("range of head", ll(), 1, |l| {
            let n = l[0].min(8);
            Some(ints(&(0..n).collect::<Vec<_>>()))
        }),
        t("halve each (integer)", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x / 2).collect::<Vec<_>>()))
        }),
        t("mod2 each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x % 2).collect::<Vec<_>>()))
        }),
        t("keep squares", ll(), 0, move |l| {
            Some(ints(
                &l.iter()
                    .filter(|&&x| is_square(x))
                    .copied()
                    .collect::<Vec<_>>(),
            ))
        }),
        t("keep primes", ll(), 0, move |l| {
            Some(ints(
                &l.iter()
                    .filter(|&&x| is_prime(x))
                    .copied()
                    .collect::<Vec<_>>(),
            ))
        }),
        t("sum of doubles", li(), 0, |l| {
            Some(Value::Int(l.iter().map(|x| 2 * x).sum()))
        }),
        t("max minus min", li(), 1, |l| {
            Some(Value::Int(
                l.iter().max().unwrap() - l.iter().min().unwrap(),
            ))
        }),
        t("second largest", li(), 2, |l| {
            let mut v = l.to_vec();
            v.sort_unstable();
            v.get(v.len() - 2).map(|&x| Value::Int(x))
        }),
        t("add index to each", ll(), 0, |l| {
            Some(ints(
                &l.iter()
                    .enumerate()
                    .map(|(i, x)| x + i as i64)
                    .collect::<Vec<_>>(),
            ))
        }),
        t("pairwise sums with next", ll(), 1, |l| {
            Some(ints(&l.windows(2).map(|w| w[0] + w[1]).collect::<Vec<_>>()))
        }),
    ]
}

fn build_task<R: Rng + ?Sized>(tpl: &Template, rng: &mut R, dim: usize) -> Task {
    let mut examples = Vec::new();
    let mut guard = 0;
    while examples.len() < 5 && guard < 200 {
        guard += 1;
        let mut input = random_list(rng, 7, 9);
        while input.len() < tpl.min_len {
            input.push(rng.gen_range(0..=9));
        }
        if let Some(output) = (tpl.f)(&input) {
            examples.push(Example {
                inputs: vec![ints(&input)],
                output,
            });
        }
    }
    let features = io_features(&examples, dim);
    Task::io(tpl.name, tpl.request.clone(), examples, features)
}

impl ListDomain {
    /// Build the domain with a deterministic corpus (seeded by `seed`).
    /// Even-indexed templates train, odd-indexed test (a 50/50 split like
    /// the paper's).
    pub fn new(seed: u64) -> ListDomain {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let primitives = base_primitives();
        let dim = 64;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, tpl) in templates().iter().enumerate() {
            let task = build_task(tpl, &mut rng, dim);
            if i % 2 == 0 {
                train.push(task);
            } else {
                test.push(task);
            }
            // A second instance (fresh random examples) of each train
            // template keeps the corpus at the paper's 100-200 task scale.
            if i % 2 == 0 {
                train.push(build_task(tpl, &mut rng, dim));
            }
        }
        ListDomain {
            primitives,
            train,
            test,
        }
    }
}

impl Domain for ListDomain {
    fn name(&self) -> &str {
        "list"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &self.test
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![ll(), li(), lb()]
    }
    fn dream(&self, program: &Expr, request: &Type, rng: &mut dyn RngCore) -> Option<Task> {
        let inputs: Vec<Vec<Value>> = (0..5)
            .map(|_| vec![ints(&random_list(rng, 7, 9))])
            .collect();
        let examples = run_on_inputs(program, &inputs, 20_000)?;
        if degenerate_outputs(&examples) {
            return None;
        }
        let features = io_features(&examples, self.feature_dim());
        let _ = request;
        Some(Task::io("dream", request.clone(), examples, features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_paper_scale() {
        let d = ListDomain::new(0);
        assert!(
            d.train_tasks().len() >= 40,
            "train = {}",
            d.train_tasks().len()
        );
        assert!(d.test_tasks().len() >= 20);
        for task in d.train_tasks().iter().chain(d.test_tasks()) {
            assert_eq!(task.examples.len(), 5, "{} lacks examples", task.name);
            assert_eq!(task.features.len(), 64);
        }
    }

    #[test]
    fn ground_truth_programs_solve_their_tasks() {
        let d = ListDomain::new(1);
        let prims = d.primitives();
        let solutions = [
            ("add1 to each", "(lambda (map (lambda (+ $0 1)) $0))"),
            ("double each", "(lambda (map (lambda (+ $0 $0)) $0))"),
            ("length", "(lambda (length $0))"),
            ("sum", "(lambda (fold $0 0 (lambda (lambda (+ $0 $1)))))"),
            ("head", "(lambda (car $0))"),
            ("tail", "(lambda (cdr $0))"),
            ("is empty", "(lambda (is-nil $0))"),
            ("prepend zero", "(lambda (cons 0 $0))"),
        ];
        for (name, src) in solutions {
            let program = Expr::parse(src, prims).unwrap();
            for task in d.train_tasks().iter().chain(d.test_tasks()) {
                if task.name == name {
                    assert!(task.check(&program), "{src} fails task {name}");
                }
            }
        }
    }

    #[test]
    fn tasks_reject_wrong_programs() {
        let d = ListDomain::new(2);
        let prims = d.primitives();
        let identity = Expr::parse("(lambda $0)", prims).unwrap();
        let t = d
            .train_tasks()
            .iter()
            .find(|t| t.name == "double each")
            .expect("double task");
        assert!(!t.check(&identity));
    }

    #[test]
    fn dreams_execute_sampled_programs() {
        let d = ListDomain::new(3);
        let prims = d.primitives();
        let program = Expr::parse("(lambda (map (lambda (* $0 $0)) $0))", prims).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let task = d.dream(&program, &ll(), &mut rng).expect("dream task");
        assert_eq!(task.examples.len(), 5);
        assert!(
            task.check(&program),
            "the dreamed program must solve its own dream"
        );
    }

    #[test]
    fn degenerate_dreams_are_rejected() {
        let d = ListDomain::new(4);
        let prims = d.primitives();
        let constant = Expr::parse("(lambda nil)", prims).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        assert!(d.dream(&constant, &ll(), &mut rng).is_none());
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = ListDomain::new(7);
        let b = ListDomain::new(7);
        for (x, y) in a.train_tasks().iter().zip(b.train_tasks()) {
            assert_eq!(x.examples, y.examples);
        }
    }
}
