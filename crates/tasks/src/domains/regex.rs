//! The generative-regex domain (§5): probabilistic programming, where
//! each program *is* a generative model over strings, and tasks supply
//! only positive example strings (crawled CSV columns in the paper; a
//! synthetic mirror of those concepts here — phone numbers, prices,
//! dates, decimals).
//!
//! Substrate built here: the probabilistic regex language with exact
//! string log-likelihood via dynamic programming, and ancestral sampling.

use std::collections::HashMap;
use std::sync::Arc;

use dc_lambda::error::EvalError;
use dc_lambda::eval::{EvalCtx, Value};
use dc_lambda::expr::{Expr, Primitive};
use dc_lambda::primitives::PrimitiveSet;
use dc_lambda::types::Type;
use rand::{Rng, RngCore, SeedableRng};

use crate::domain::Domain;
use crate::task::{Example, Task, TaskOracle};

/// A probabilistic regular expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// A literal character.
    Const(char),
    /// `d`: a uniformly random ASCII digit.
    Digit,
    /// `u`: a uniformly random uppercase letter.
    Upper,
    /// `l`: a uniformly random lowercase letter.
    Lower,
    /// Any letter.
    Alpha,
    /// Concatenation.
    Concat(Arc<Regex>, Arc<Regex>),
    /// Kleene star with geometric(1/2) repetition count.
    Star(Arc<Regex>),
    /// Optional (probability 1/2 present).
    Maybe(Arc<Regex>),
    /// Uniform choice between two branches.
    Or(Arc<Regex>, Arc<Regex>),
}

impl Regex {
    fn class_chars(&self) -> Option<Vec<char>> {
        match self {
            Regex::Digit => Some(('0'..='9').collect()),
            Regex::Upper => Some(('A'..='Z').collect()),
            Regex::Lower => Some(('a'..='z').collect()),
            Regex::Alpha => Some(('a'..='z').chain('A'..='Z').collect()),
            _ => None,
        }
    }

    /// Sample a string from the generative model.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut String, budget: &mut usize) {
        if *budget == 0 {
            return;
        }
        match self {
            Regex::Const(c) => {
                out.push(*c);
                *budget -= 1;
            }
            Regex::Digit | Regex::Upper | Regex::Lower | Regex::Alpha => {
                let chars = self.class_chars().expect("class");
                out.push(chars[rng.gen_range(0..chars.len())]);
                *budget -= 1;
            }
            Regex::Concat(a, b) => {
                a.sample(rng, out, budget);
                b.sample(rng, out, budget);
            }
            Regex::Star(inner) => {
                while rng.gen_bool(0.5) && *budget > 0 {
                    inner.sample(rng, out, budget);
                }
            }
            Regex::Maybe(inner) => {
                if rng.gen_bool(0.5) {
                    inner.sample(rng, out, budget);
                }
            }
            Regex::Or(a, b) => {
                if rng.gen_bool(0.5) {
                    a.sample(rng, out, budget)
                } else {
                    b.sample(rng, out, budget)
                }
            }
        }
    }

    /// Exact log-probability that the generative model emits `s`.
    ///
    /// Dynamic program over substrings: `inner(r, i, j)` is the log-prob
    /// that `r` generates exactly `s[i..j]`.
    pub fn log_prob(&self, s: &str) -> f64 {
        let chars: Vec<char> = s.chars().collect();
        let mut memo: HashMap<(*const Regex, usize, usize), f64> = HashMap::new();
        self.lp(&chars, 0, chars.len(), &mut memo)
    }

    fn lp(
        &self,
        s: &[char],
        i: usize,
        j: usize,
        memo: &mut HashMap<(*const Regex, usize, usize), f64>,
    ) -> f64 {
        let key = (self as *const Regex, i, j);
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        // Pre-insert -inf to make accidental cycles finite (Star recursion
        // on empty spans is handled explicitly below).
        memo.insert(key, f64::NEG_INFINITY);
        let v = match self {
            Regex::Const(c) => {
                if j == i + 1 && s[i] == *c {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            }
            Regex::Digit | Regex::Upper | Regex::Lower | Regex::Alpha => {
                let chars = self.class_chars().expect("class");
                if j == i + 1 && chars.contains(&s[i]) {
                    -(chars.len() as f64).ln()
                } else {
                    f64::NEG_INFINITY
                }
            }
            Regex::Concat(a, b) => {
                let mut terms = Vec::new();
                for k in i..=j {
                    let la = a.lp(s, i, k, memo);
                    if la.is_finite() {
                        let lb = b.lp(s, k, j, memo);
                        if lb.is_finite() {
                            terms.push(la + lb);
                        }
                    }
                }
                dc_grammar::library::logsumexp(&terms)
            }
            Regex::Star(inner) => {
                // P(stop) = 1/2 at each round: s[i..j] split into 1+ chunks,
                // each nonempty (empty-generating inner would loop; treat
                // zero-length inner matches as contributing only via the
                // immediate stop).
                let mut terms = Vec::new();
                if i == j {
                    terms.push(0.5f64.ln()); // stop immediately
                } else {
                    for k in (i + 1)..=j {
                        let li = inner.lp(s, i, k, memo);
                        if li.is_finite() {
                            let rest = self.lp(s, k, j, memo);
                            if rest.is_finite() {
                                terms.push(0.5f64.ln() + li + rest);
                            }
                        }
                    }
                }
                dc_grammar::library::logsumexp(&terms)
            }
            Regex::Maybe(inner) => {
                let mut terms = Vec::new();
                if i == j {
                    terms.push(0.5f64.ln());
                }
                let li = inner.lp(s, i, j, memo);
                if li.is_finite() {
                    terms.push(0.5f64.ln() + li);
                }
                dc_grammar::library::logsumexp(&terms)
            }
            Regex::Or(a, b) => {
                let la = 0.5f64.ln() + a.lp(s, i, j, memo);
                let lb = 0.5f64.ln() + b.lp(s, i, j, memo);
                dc_grammar::library::logsumexp(&[la, lb])
            }
        };
        memo.insert(key, v);
        v
    }

    /// Render in the paper's display style (`(dd(d)*)`, `$d.d0`, ...).
    pub fn display(&self) -> String {
        match self {
            Regex::Const(c) => c.to_string(),
            Regex::Digit => "d".into(),
            Regex::Upper => "u".into(),
            Regex::Lower => "l".into(),
            Regex::Alpha => "a".into(),
            Regex::Concat(a, b) => format!("{}{}", a.display(), b.display()),
            Regex::Star(r) => format!("({})*", r.display()),
            Regex::Maybe(r) => format!("({})?", r.display()),
            Regex::Or(a, b) => format!("({}|{})", a.display(), b.display()),
        }
    }
}

/// The `regex` type.
pub fn tregex() -> Type {
    Type::con0("regex")
}

fn rv(r: Regex) -> Value {
    Value::opaque("regex", r)
}

fn get_regex(v: &Value) -> Result<Regex, EvalError> {
    Ok(v.as_opaque::<Regex>("regex")?.clone())
}

/// The regex base language: character classes, punctuation constants,
/// concat / star / maybe / or.
pub fn regex_primitives() -> PrimitiveSet {
    let mut s = PrimitiveSet::new();
    s.add(Primitive::constant("r-d", tregex(), rv(Regex::Digit)))
        .add(Primitive::constant("r-u", tregex(), rv(Regex::Upper)))
        .add(Primitive::constant("r-l", tregex(), rv(Regex::Lower)))
        .add(Primitive::constant("r-a", tregex(), rv(Regex::Alpha)));
    for (name, c) in [
        ("r-dot", '.'),
        ("r-dash", '-'),
        ("r-colon", ':'),
        ("r-comma", ','),
        ("r-dollar", '$'),
        ("r-lparen", '('),
        ("r-rparen", ')'),
        ("r-space", ' '),
        ("r-zero", '0'),
        ("r-slash", '/'),
    ] {
        s.add(Primitive::constant(name, tregex(), rv(Regex::Const(c))));
    }
    s.add(Primitive::function(
        "r-concat",
        Type::arrows(vec![tregex(), tregex()], tregex()),
        |args, _| {
            Ok(rv(Regex::Concat(
                Arc::new(get_regex(&args[0])?),
                Arc::new(get_regex(&args[1])?),
            )))
        },
    ))
    .add(Primitive::function(
        "r-star",
        Type::arrow(tregex(), tregex()),
        |args, _| Ok(rv(Regex::Star(Arc::new(get_regex(&args[0])?)))),
    ))
    .add(Primitive::function(
        "r-maybe",
        Type::arrow(tregex(), tregex()),
        |args, _| Ok(rv(Regex::Maybe(Arc::new(get_regex(&args[0])?)))),
    ))
    .add(Primitive::function(
        "r-or",
        Type::arrows(vec![tregex(), tregex()], tregex()),
        |args, _| {
            Ok(rv(Regex::Or(
                Arc::new(get_regex(&args[0])?),
                Arc::new(get_regex(&args[1])?),
            )))
        },
    ));
    s
}

/// Evaluate a program of type `regex` to its regex value.
///
/// # Errors
/// Propagates evaluation failures.
pub fn run_regex_program(program: &Expr, fuel: u64) -> Result<Regex, EvalError> {
    let mut ctx = EvalCtx::with_fuel(fuel);
    let v = ctx.eval(program, &dc_lambda::eval::Env::new())?;
    get_regex(&v)
}

/// Oracle: total log-likelihood of the observed strings under the
/// program-as-generative-model, thresholded per character so that
/// degenerate catch-all programs don't count as solutions.
#[derive(Debug, Clone)]
pub struct RegexOracle {
    /// The observed positive examples.
    pub strings: Vec<String>,
    /// Minimum average per-character log-likelihood to count as solved.
    pub per_char_threshold: f64,
}

impl TaskOracle for RegexOracle {
    fn log_likelihood(&self, program: &Expr) -> f64 {
        let Ok(regex) = run_regex_program(program, 50_000) else {
            return f64::NEG_INFINITY;
        };
        let mut total = 0.0;
        let mut chars = 0usize;
        for s in &self.strings {
            let ll = regex.log_prob(s);
            if !ll.is_finite() {
                return f64::NEG_INFINITY;
            }
            total += ll;
            chars += s.chars().count().max(1);
        }
        if total / (chars as f64) < self.per_char_threshold {
            return f64::NEG_INFINITY;
        }
        total
    }
}

/// Concepts mirroring the paper's crawled text columns (Fig 10).
pub fn concepts() -> Vec<(&'static str, Regex)> {
    use Regex::*;
    fn c(ch: char) -> Arc<Regex> {
        Arc::new(Const(ch))
    }
    fn conc(parts: Vec<Arc<Regex>>) -> Regex {
        let mut it = parts.into_iter().rev();
        let last = it.next().expect("nonempty");
        it.fold((*last).clone(), |acc, r| Concat(r, Arc::new(acc)))
    }
    let d = || Arc::new(Digit);
    vec![
        (
            "parenthesized count",
            conc(vec![
                c('('),
                d(),
                d(),
                Arc::new(Star(Arc::new(Digit))),
                c(')'),
            ]),
        ),
        ("price", conc(vec![c('$'), d(), c('.'), d(), c('0')])),
        (
            "phone number",
            conc(vec![
                c('('),
                d(),
                d(),
                d(),
                c(')'),
                c(' '),
                d(),
                d(),
                d(),
                c('-'),
                d(),
                d(),
                d(),
                d(),
            ]),
        ),
        (
            "negative decimal",
            conc(vec![
                c('-'),
                d(),
                Arc::new(Maybe(Arc::new(conc(vec![
                    c('.'),
                    d(),
                    Arc::new(Star(Arc::new(Digit))),
                ])))),
            ]),
        ),
        (
            "timestamp",
            conc(vec![
                c('-'),
                c('0'),
                c('0'),
                c(':'),
                d(),
                d(),
                c(':'),
                d(),
                d(),
                c('.'),
                d(),
            ]),
        ),
        (
            "integer list entry",
            conc(vec![d(), Arc::new(Star(Arc::new(Digit)))]),
        ),
        (
            "ratio",
            conc(vec![d(), c('/'), d(), Arc::new(Star(Arc::new(Digit)))]),
        ),
        (
            "uppercase code",
            conc(vec![Arc::new(Upper), Arc::new(Upper), d(), d()]),
        ),
        (
            "lowercase word",
            conc(vec![
                Arc::new(Lower),
                Arc::new(Lower),
                Arc::new(Star(Arc::new(Lower))),
            ]),
        ),
        (
            "money range",
            conc(vec![c('$'), d(), c('-'), c('$'), d(), d()]),
        ),
    ]
}

/// The generative-regex domain.
pub struct RegexDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
    test: Vec<Task>,
}

fn concept_task<R: Rng + ?Sized>(
    name: &str,
    regex: &Regex,
    rng: &mut R,
    n_examples: usize,
) -> Task {
    let mut strings = Vec::new();
    let mut guard = 0;
    while strings.len() < n_examples && guard < 500 {
        guard += 1;
        let mut s = String::new();
        let mut budget = 30usize;
        regex.sample(rng, &mut s, &mut budget);
        if !s.is_empty() && s.len() <= 25 {
            strings.push(s);
        }
    }
    let examples: Vec<Example> = strings
        .iter()
        .map(|s| Example {
            inputs: vec![],
            output: Value::str(s),
        })
        .collect();
    let features = crate::task::io_features(&examples, 64);
    Task {
        name: name.to_owned(),
        request: tregex(),
        oracle: Arc::new(RegexOracle {
            strings,
            per_char_threshold: -3.0,
        }),
        features,
        examples,
    }
}

impl RegexDomain {
    /// Build the domain: each concept yields train instances (even
    /// concept indices) or held-out test instances (odd).
    pub fn new(seed: u64) -> RegexDomain {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let primitives = regex_primitives();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, (name, regex)) in concepts().iter().enumerate() {
            let t1 = concept_task(name, regex, &mut rng, 5);
            let t2 = concept_task(name, regex, &mut rng, 5);
            if i % 2 == 0 {
                train.push(t1);
                train.push(t2);
            } else {
                test.push(t1);
            }
        }
        RegexDomain {
            primitives,
            train,
            test,
        }
    }
}

impl Domain for RegexDomain {
    fn name(&self) -> &str {
        "regex"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &self.test
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![tregex()]
    }
    fn dream(&self, program: &Expr, request: &Type, rng: &mut dyn RngCore) -> Option<Task> {
        let regex = run_regex_program(program, 20_000).ok()?;
        let task = concept_task("dream", &regex, rng, 5);
        if task.examples.len() < 5 {
            return None;
        }
        let _ = request;
        Some(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_prob_of_single_digit() {
        let r = Regex::Digit;
        assert!((r.log_prob("7") - (-(10.0f64).ln())).abs() < 1e-9);
        assert_eq!(r.log_prob("a"), f64::NEG_INFINITY);
        assert_eq!(r.log_prob("77"), f64::NEG_INFINITY);
    }

    #[test]
    fn star_probabilities_sum_geometrically() {
        let r = Regex::Star(Arc::new(Regex::Const('x')));
        // P("") = 1/2, P("x") = 1/4, P("xx") = 1/8.
        assert!((r.log_prob("").exp() - 0.5).abs() < 1e-9);
        assert!((r.log_prob("x").exp() - 0.25).abs() < 1e-9);
        assert!((r.log_prob("xx").exp() - 0.125).abs() < 1e-9);
        assert_eq!(r.log_prob("y"), f64::NEG_INFINITY);
    }

    #[test]
    fn concat_splits_correctly() {
        let r = Regex::Concat(
            Arc::new(Regex::Star(Arc::new(Regex::Const('a')))),
            Arc::new(Regex::Const('b')),
        );
        assert!(r.log_prob("aab").is_finite());
        assert!(r.log_prob("b").is_finite());
        assert_eq!(r.log_prob("a"), f64::NEG_INFINITY);
    }

    #[test]
    fn samples_score_finitely_under_their_own_model() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for (_, regex) in concepts() {
            for _ in 0..10 {
                let mut s = String::new();
                let mut budget = 30;
                regex.sample(&mut rng, &mut s, &mut budget);
                if budget > 0 {
                    assert!(
                        regex.log_prob(&s).is_finite(),
                        "sample {s:?} of {} scored -inf",
                        regex.display()
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_accepts_true_concept_and_rejects_wrong_one() {
        let d = RegexDomain::new(0);
        let prims = d.primitives();
        // price concept: $d.d0
        let price = Expr::parse(
            "(r-concat r-dollar (r-concat r-d (r-concat r-dot (r-concat r-d r-zero))))",
            prims,
        )
        .unwrap();
        let price_task = d
            .train_tasks()
            .iter()
            .chain(d.test_tasks())
            .find(|t| t.name == "price")
            .expect("price task");
        assert!(price_task.check(&price), "true price regex rejected");
        let digits = Expr::parse("(r-star r-d)", prims).unwrap();
        assert!(
            !price_task.check(&digits),
            "digit-star shouldn't explain prices"
        );
    }

    #[test]
    fn display_matches_paper_style() {
        let (_, phone) = &concepts()[2];
        assert_eq!(phone.display(), "(ddd) ddd-dddd");
        let (_, count) = &concepts()[0];
        assert_eq!(count.display(), "(dd(d)*)");
    }

    #[test]
    fn dream_from_regex_program() {
        let d = RegexDomain::new(1);
        let prims = d.primitives();
        let p = Expr::parse("(r-concat r-d (r-star r-d))", prims).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let task = d.dream(&p, &tregex(), &mut rng).expect("dream");
        assert!(task.check(&p), "program should explain its own samples");
    }
}
