//! The "origami programming" domain (§5.2, Fig 11B): 20 basic
//! list-programming tasks solved from a minimal 1959-Lisp basis —
//! `if, =, >, +, -, 0, 1, cons, car, cdr, nil, is-nil` plus primitive
//! recursion via the fixed-point combinator. DreamCoder must *invent*
//! fold, unfold, map, length, etc. The paper runs this without a
//! recognition model, as do we.

use dc_lambda::eval::Value;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::{lisp_1959_primitives, PrimitiveSet};
use dc_lambda::types::{tbool, tint, tlist, Type};
use rand::{Rng, RngCore, SeedableRng};

use crate::domain::{degenerate_outputs, run_on_inputs, Domain};
use crate::task::{io_features, Example, Task};

/// The origami domain.
pub struct OrigamiDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
}

fn ints(vals: &[i64]) -> Value {
    Value::list(vals.iter().map(|&v| Value::Int(v)).collect())
}

fn ll() -> Type {
    Type::arrow(tlist(tint()), tlist(tint()))
}
fn li() -> Type {
    Type::arrow(tlist(tint()), tint())
}

type ListFn = dyn Fn(&[i64]) -> Option<Value> + Send + Sync;

struct Template {
    name: &'static str,
    request: Type,
    f: Box<ListFn>,
    min_len: usize,
}

/// The 20 introductory tasks ("like those used in introductory computer
/// science classes").
fn templates() -> Vec<Template> {
    fn t(
        name: &'static str,
        request: Type,
        min_len: usize,
        f: impl Fn(&[i64]) -> Option<Value> + Send + Sync + 'static,
    ) -> Template {
        Template {
            name,
            request,
            f: Box::new(f),
            min_len,
        }
    }
    vec![
        t("length", li(), 0, |l| Some(Value::Int(l.len() as i64))),
        t("sum", li(), 0, |l| Some(Value::Int(l.iter().sum()))),
        t("increment each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x + 1).collect::<Vec<_>>()))
        }),
        t("double each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x + x).collect::<Vec<_>>()))
        }),
        t("decrement each", ll(), 0, |l| {
            Some(ints(&l.iter().map(|x| x - 1).collect::<Vec<_>>()))
        }),
        t("last element", li(), 1, |l| {
            l.last().map(|&x| Value::Int(x))
        }),
        t("maximum", li(), 1, |l| {
            l.iter().max().map(|&x| Value::Int(x))
        }),
        t("count down from head", ll(), 1, |l| {
            let n = l[0].min(8);
            Some(ints(&(1..=n).rev().collect::<Vec<_>>()))
        }),
        t("range of head", ll(), 1, |l| {
            let n = l[0].min(8);
            Some(ints(&(0..n).collect::<Vec<_>>()))
        }),
        t("append zero", ll(), 0, |l| {
            let mut v = l.to_vec();
            v.push(0);
            Some(ints(&v))
        }),
        t("stutter", ll(), 0, |l| {
            Some(ints(&l.iter().flat_map(|&x| [x, x]).collect::<Vec<_>>()))
        }),
        t("reverse", ll(), 0, |l| {
            Some(ints(&l.iter().rev().copied().collect::<Vec<_>>()))
        }),
        t("keep positives", ll(), 0, |l| {
            Some(ints(
                &l.iter().filter(|&&x| x > 0).copied().collect::<Vec<_>>(),
            ))
        }),
        t("count positives", li(), 0, |l| {
            Some(Value::Int(l.iter().filter(|&&x| x > 0).count() as i64))
        }),
        t("member zero", Type::arrow(tlist(tint()), tbool()), 0, |l| {
            Some(Value::Bool(l.contains(&0)))
        }),
        t("take while positive", ll(), 0, |l| {
            Some(ints(
                &l.iter()
                    .take_while(|&&x| x > 0)
                    .copied()
                    .collect::<Vec<_>>(),
            ))
        }),
        t("drop last", ll(), 1, |l| Some(ints(&l[..l.len() - 1]))),
        t("pairwise sum with reverse", ll(), 0, |l| {
            Some(ints(
                &l.iter()
                    .zip(l.iter().rev())
                    .map(|(a, b)| a + b)
                    .collect::<Vec<_>>(),
            ))
        }),
        t("zip add consecutive pairs", ll(), 1, |l| {
            Some(ints(&l.windows(2).map(|w| w[0] + w[1]).collect::<Vec<_>>()))
        }),
        t("nth element (head-indexed)", li(), 2, |l| {
            let n = (l[0].unsigned_abs() as usize) % (l.len() - 1);
            l.get(n + 1).map(|&x| Value::Int(x))
        }),
    ]
}

impl OrigamiDomain {
    /// Build the 20-task corpus (no held-out split: the paper reports
    /// solving all 20 training problems).
    pub fn new(seed: u64) -> OrigamiDomain {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let primitives = lisp_1959_primitives();
        let mut train = Vec::new();
        for tpl in templates() {
            let mut examples = Vec::new();
            let mut guard = 0;
            while examples.len() < 5 && guard < 200 {
                guard += 1;
                let len = rng.gen_range(tpl.min_len..=6.max(tpl.min_len));
                let input: Vec<i64> = (0..len).map(|_| rng.gen_range(0..=6)).collect();
                if let Some(output) = (tpl.f)(&input) {
                    examples.push(Example {
                        inputs: vec![ints(&input)],
                        output,
                    });
                }
            }
            let features = io_features(&examples, 64);
            train.push(Task::io(tpl.name, tpl.request.clone(), examples, features));
        }
        OrigamiDomain { primitives, train }
    }
}

impl Domain for OrigamiDomain {
    fn name(&self) -> &str {
        "origami"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &[]
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![ll(), li()]
    }
    fn dream(&self, program: &Expr, request: &Type, rng: &mut dyn RngCore) -> Option<Task> {
        let inputs: Vec<Vec<Value>> = (0..5)
            .map(|_| {
                let len = rng.gen_range(0..=6);
                vec![ints(
                    &(0..len).map(|_| rng.gen_range(0..=6)).collect::<Vec<_>>(),
                )]
            })
            .collect();
        let examples = run_on_inputs(program, &inputs, 20_000)?;
        if degenerate_outputs(&examples) {
            return None;
        }
        let features = io_features(&examples, 64);
        Some(Task::io("dream", request.clone(), examples, features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::expr::PrimitiveLookup;

    #[test]
    fn twenty_tasks() {
        let d = OrigamiDomain::new(0);
        assert_eq!(d.train_tasks().len(), 20);
        assert!(d.test_tasks().is_empty());
    }

    #[test]
    fn fix_based_solutions_solve_tasks() {
        let d = OrigamiDomain::new(1);
        let prims = d.primitives();
        let cases = [
            (
                "length",
                "(lambda (fix (lambda (lambda (if (is-nil $0) 0 (+ 1 ($1 (cdr $0)))))) $0))",
            ),
            (
                "sum",
                "(lambda (fix (lambda (lambda (if (is-nil $0) 0 (+ (car $0) ($1 (cdr $0)))))) $0))",
            ),
            (
                "increment each",
                "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) 1) ($1 (cdr $0)))))) $0))",
            ),
            (
                "double each",
                "(lambda (fix (lambda (lambda (if (is-nil $0) nil (cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))",
            ),
            (
                "keep positives",
                "(lambda (fix (lambda (lambda (if (is-nil $0) nil (if (> (car $0) 0) (cons (car $0) ($1 (cdr $0))) ($1 (cdr $0)))))) $0))",
            ),
            (
                "append zero",
                "(lambda (fix (lambda (lambda (if (is-nil $0) (cons 0 nil) (cons (car $0) ($1 (cdr $0)))))) $0))",
            ),
        ];
        for (name, src) in cases {
            let p = Expr::parse(src, prims).unwrap_or_else(|e| panic!("{name}: {e}"));
            let task = d.train_tasks().iter().find(|t| t.name == name).unwrap();
            assert!(task.check(&p), "{name} rejected its fix solution");
        }
    }

    #[test]
    fn basis_is_truly_minimal() {
        let d = OrigamiDomain::new(2);
        assert!(d.primitives().primitive("map").is_none());
        assert!(d.primitives().primitive("fold").is_none());
        assert!(d.primitives().primitive("fix").is_some());
    }
}
