//! The block-towers domain (§5): planning problems where programs steer a
//! simulated hand that drops blocks onto a stage (the classic AI "copy
//! demo" — see Fig 9). Substrate built here: the stage simulator with
//! drop-to-rest stacking physics, hand movement, and `t-embed`
//! save/restore of the hand position.

use std::collections::BTreeSet;
use std::sync::Arc;

use dc_lambda::error::EvalError;
use dc_lambda::eval::{EvalCtx, Value};
use dc_lambda::expr::{Expr, Primitive};
use dc_lambda::primitives::{prim_int, PrimitiveSet};
use dc_lambda::types::{tint, Type};
use rand::RngCore;

use crate::domain::Domain;
use crate::task::{Task, TaskOracle};

/// A placed block: x position of its left edge, orientation, and the
/// height its bottom rests at (computed by the drop physics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Block {
    /// Left edge of the block.
    pub x: i64,
    /// Bottom height.
    pub y: i64,
    /// `true` = horizontal (3 wide × 1 tall); `false` = vertical (1 × 3).
    pub horizontal: bool,
}

impl Block {
    /// Width of the block.
    pub fn width(&self) -> i64 {
        if self.horizontal {
            3
        } else {
            1
        }
    }
    /// Height of the block.
    pub fn height(&self) -> i64 {
        if self.horizontal {
            1
        } else {
            3
        }
    }
}

/// The tower-building machine state.
#[derive(Debug, Clone, Default)]
pub struct TowerState {
    /// Hand x position.
    pub hand: i64,
    /// Blocks placed so far.
    pub blocks: Vec<Block>,
}

impl TowerState {
    /// Empty stage with the hand at the origin.
    pub fn new() -> TowerState {
        TowerState::default()
    }

    /// Drop a block at the hand: it rests on the ground or the highest
    /// block whose footprint overlaps.
    pub fn drop_block(&mut self, horizontal: bool) -> Result<(), EvalError> {
        if self.blocks.len() > 200 {
            return Err(EvalError::runtime("too many blocks"));
        }
        let mut b = Block {
            x: self.hand,
            y: 0,
            horizontal,
        };
        let (l, r) = (b.x, b.x + b.width());
        let rest = self
            .blocks
            .iter()
            .filter(|other| {
                let (ol, or) = (other.x, other.x + other.width());
                l < or && ol < r
            })
            .map(|other| other.y + other.height())
            .max()
            .unwrap_or(0);
        b.y = rest;
        self.blocks.push(b);
        Ok(())
    }

    /// The canonical (order-independent) block set.
    pub fn block_set(&self) -> BTreeSet<Block> {
        self.blocks.iter().copied().collect()
    }
}

fn tower_value(t: TowerState) -> Value {
    Value::opaque("tower", t)
}

fn get_tower(v: &Value) -> Result<TowerState, EvalError> {
    Ok(v.as_opaque::<TowerState>("tower")?.clone())
}

/// The `tower` machine-state type.
pub fn ttower() -> Type {
    Type::con0("tower")
}

fn apply_tower(ctx: &mut EvalCtx, f: &Value, state: TowerState) -> Result<TowerState, EvalError> {
    let out = ctx.apply(f.clone(), tower_value(state))?;
    get_tower(&out)
}

/// The towers base language: place-h/place-v, hand moves, loop, embed,
/// small integers (the same control flow as LOGO, per §5).
pub fn tower_primitives() -> PrimitiveSet {
    let mut s = PrimitiveSet::new();
    s.add(Primitive::function(
        "place-h",
        Type::arrow(ttower(), ttower()),
        |args, _| {
            let mut t = get_tower(&args[0])?;
            t.drop_block(true)?;
            Ok(tower_value(t))
        },
    ))
    .add(Primitive::function(
        "place-v",
        Type::arrow(ttower(), ttower()),
        |args, _| {
            let mut t = get_tower(&args[0])?;
            t.drop_block(false)?;
            Ok(tower_value(t))
        },
    ))
    .add(Primitive::function(
        "t-right",
        Type::arrows(vec![tint(), ttower()], ttower()),
        |args, _| {
            let n = args[0].as_int()?;
            let mut t = get_tower(&args[1])?;
            t.hand += n;
            if t.hand.abs() > 100 {
                return Err(EvalError::runtime("hand off stage"));
            }
            Ok(tower_value(t))
        },
    ))
    .add(Primitive::function(
        "t-left",
        Type::arrows(vec![tint(), ttower()], ttower()),
        |args, _| {
            let n = args[0].as_int()?;
            let mut t = get_tower(&args[1])?;
            t.hand -= n;
            if t.hand.abs() > 100 {
                return Err(EvalError::runtime("hand off stage"));
            }
            Ok(tower_value(t))
        },
    ))
    .add(Primitive::function(
        "t-for",
        Type::arrows(
            vec![tint(), Type::arrow(ttower(), ttower()), ttower()],
            ttower(),
        ),
        |args, ctx| {
            let n = args[0].as_int()?;
            if !(0..=32).contains(&n) {
                return Err(EvalError::runtime("t-for count out of range"));
            }
            let mut t = get_tower(&args[2])?;
            for _ in 0..n {
                ctx.burn(1)?;
                t = apply_tower(ctx, &args[1], t)?;
            }
            Ok(tower_value(t))
        },
    ))
    .add(Primitive::function(
        "t-embed",
        Type::arrows(vec![Type::arrow(ttower(), ttower()), ttower()], ttower()),
        |args, ctx| {
            let t = get_tower(&args[1])?;
            let hand = t.hand;
            let mut t2 = apply_tower(ctx, &args[0], t)?;
            t2.hand = hand;
            Ok(tower_value(t2))
        },
    ));
    for n in [1, 2, 3, 4, 5, 6] {
        s.add(prim_int(n));
    }
    s
}

/// Execute a `tower -> tower` program on the empty stage.
///
/// # Errors
/// Propagates evaluation failures.
pub fn run_tower_program(program: &Expr, fuel: u64) -> Result<TowerState, EvalError> {
    let mut ctx = EvalCtx::with_fuel(fuel);
    let f = ctx.eval(program, &dc_lambda::eval::Env::new())?;
    apply_tower(&mut ctx, &f, TowerState::new())
}

/// Oracle: exact match of the resulting block configuration (the paper's
/// tower "copy task").
#[derive(Debug, Clone)]
pub struct TowerOracle {
    /// Target block configuration.
    pub target: BTreeSet<Block>,
}

impl TaskOracle for TowerOracle {
    fn log_likelihood(&self, program: &Expr) -> f64 {
        match run_tower_program(program, 100_000) {
            Ok(state) if state.block_set() == self.target => 0.0,
            _ => f64::NEG_INFINITY,
        }
    }
}

/// Coarse occupancy-grid featurization of a block configuration.
pub fn tower_features(target: &BTreeSet<Block>) -> Vec<f64> {
    let mut grid = vec![0.0; 64];
    for b in target {
        for dx in 0..b.width() {
            for dy in 0..b.height() {
                let gx = ((b.x + dx + 16).clamp(0, 31) / 4) as usize;
                let gy = ((b.y + dy).clamp(0, 31) / 4) as usize;
                grid[gy * 8 + gx] += 0.25;
            }
        }
    }
    grid
}

/// Ground-truth tower plans: walls, arches, bridges, staircases (Fig 9).
pub fn ground_truth_programs() -> Vec<(&'static str, String)> {
    let arch = "(t-embed (lambda (place-h (t-left 2 (place-v (t-right 2 (place-v $0)))))) $0)";
    vec![
        ("single block", "(lambda (place-h $0))".into()),
        ("two stacked", "(lambda (place-h (place-h $0)))".into()),
        ("tower of four", "(lambda (t-for 4 (lambda (place-h $0)) $0))".into()),
        ("vertical post", "(lambda (place-v $0))".into()),
        ("arch", format!("(lambda {arch})")),
        (
            "two arches",
            format!(
                "(lambda (t-for 2 (lambda (t-right 4 {arch})) $0))"
            ),
        ),
        (
            "three arches",
            format!(
                "(lambda (t-for 3 (lambda (t-right 4 {arch})) $0))"
            ),
        ),
        (
            "wall 2 high",
            "(lambda (t-for 2 (lambda (t-embed (lambda (t-for 3 (lambda (place-h (t-right 3 $0))) $0)) $0)) $0))".into(),
        ),
        (
            "wall 3 high",
            "(lambda (t-for 3 (lambda (t-embed (lambda (t-for 3 (lambda (place-h (t-right 3 $0))) $0)) $0)) $0))".into(),
        ),
        (
            "staircase",
            "(lambda (t-for 3 (lambda (place-h (place-h (t-right 3 $0)))) $0))".into(),
        ),
        (
            "row of posts",
            "(lambda (t-for 4 (lambda (place-v (t-right 2 $0))) $0))".into(),
        ),
        (
            "bridge",
            "(lambda (place-v (t-right 2 (place-v (t-left 1 (place-h (place-h $0)))))))".into(),
        ),
        (
            "tall tower",
            "(lambda (t-for 6 (lambda (place-h $0)) $0))".into(),
        ),
        (
            "twin towers",
            "(lambda (t-embed (lambda (t-for 3 (lambda (place-h $0)) $0)) (t-right 4 (t-for 3 (lambda (place-h $0)) $0))))".into(),
        ),
    ]
}

/// The towers domain.
pub struct TowerDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
    test: Vec<Task>,
}

impl TowerDomain {
    /// Build the domain from ground-truth plans; even indices train.
    pub fn new(_seed: u64) -> TowerDomain {
        let primitives = tower_primitives();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, (name, src)) in ground_truth_programs().iter().enumerate() {
            let program = Expr::parse(src, &primitives)
                .unwrap_or_else(|e| panic!("bad ground-truth tower program {name}: {e}"));
            let state = run_tower_program(&program, 200_000)
                .unwrap_or_else(|e| panic!("tower program {name} crashed: {e}"));
            let target = state.block_set();
            if target.is_empty() {
                continue;
            }
            let features = tower_features(&target);
            let task = Task {
                name: (*name).to_owned(),
                request: Type::arrow(ttower(), ttower()),
                oracle: Arc::new(TowerOracle { target }),
                features,
                examples: Vec::new(),
            };
            if i % 2 == 0 {
                train.push(task);
            } else {
                test.push(task);
            }
        }
        TowerDomain {
            primitives,
            train,
            test,
        }
    }
}

impl Domain for TowerDomain {
    fn name(&self) -> &str {
        "tower"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &self.test
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![Type::arrow(ttower(), ttower())]
    }
    fn dream(&self, program: &Expr, request: &Type, _rng: &mut dyn RngCore) -> Option<Task> {
        let state = run_tower_program(program, 50_000).ok()?;
        let target = state.block_set();
        if target.is_empty() || target.len() > 100 {
            return None;
        }
        let features = tower_features(&target);
        Some(Task {
            name: "dream".to_owned(),
            request: request.clone(),
            oracle: Arc::new(TowerOracle { target }),
            features,
            examples: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_stack_on_each_other() {
        let prims = tower_primitives();
        let p = Expr::parse("(lambda (place-h (place-h $0)))", &prims).unwrap();
        let state = run_tower_program(&p, 10_000).unwrap();
        assert_eq!(state.blocks.len(), 2);
        assert_eq!(state.blocks[0].y, 0);
        assert_eq!(state.blocks[1].y, 1);
    }

    #[test]
    fn blocks_apart_rest_on_ground() {
        let prims = tower_primitives();
        let p = Expr::parse("(lambda (place-v (t-right 5 (place-v $0))))", &prims).unwrap();
        let state = run_tower_program(&p, 10_000).unwrap();
        assert!(state.blocks.iter().all(|b| b.y == 0));
    }

    #[test]
    fn arch_shape_is_correct() {
        let prims = tower_primitives();
        let (_, src) = &ground_truth_programs()[4];
        let p = Expr::parse(src, &prims).unwrap();
        let state = run_tower_program(&p, 10_000).unwrap();
        // Two vertical legs on the ground and one horizontal lintel on top.
        let legs: Vec<&Block> = state.blocks.iter().filter(|b| !b.horizontal).collect();
        let lintels: Vec<&Block> = state.blocks.iter().filter(|b| b.horizontal).collect();
        assert_eq!(legs.len(), 2);
        assert_eq!(lintels.len(), 1);
        assert!(legs.iter().all(|b| b.y == 0));
        assert_eq!(lintels[0].y, 3, "lintel must rest atop the legs");
    }

    #[test]
    fn embed_restores_hand() {
        let prims = tower_primitives();
        let p = Expr::parse(
            "(lambda (place-v (t-embed (lambda (place-v (t-right 5 $0))) (place-v $0))))",
            &prims,
        )
        .unwrap();
        let state = run_tower_program(&p, 10_000).unwrap();
        // Two blocks at hand=0 stacked, one at x=5 on the ground.
        let at0: Vec<&Block> = state.blocks.iter().filter(|b| b.x == 0).collect();
        assert_eq!(at0.len(), 2);
    }

    #[test]
    fn domain_tasks_accept_ground_truth_and_reject_wrong_plans() {
        let d = TowerDomain::new(0);
        assert!(d.train_tasks().len() + d.test_tasks().len() >= 10);
        let all: Vec<&Task> = d.train_tasks().iter().chain(d.test_tasks()).collect();
        let prims = d.primitives();
        for (name, src) in ground_truth_programs() {
            if let Some(task) = all.iter().find(|t| t.name == name) {
                let program = Expr::parse(&src, prims).unwrap();
                assert!(task.check(&program), "{name} rejects its ground truth");
            }
        }
        let single = Expr::parse("(lambda (place-h $0))", prims).unwrap();
        let arch_task = all.iter().find(|t| t.name == "arch").unwrap();
        assert!(!arch_task.check(&single));
    }

    #[test]
    fn features_distinguish_configurations() {
        let d = TowerDomain::new(0);
        let all: Vec<&Task> = d.train_tasks().iter().chain(d.test_tasks()).collect();
        let a = &all[0].features;
        let b = &all[1].features;
        assert_ne!(a, b);
    }
}
