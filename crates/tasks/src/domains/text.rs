//! The text-editing domain (§5): FlashFill-style string transformations,
//! in the shape of the SyGuS 2017 PBE-strings benchmarks the paper tests
//! on. The original benchmark files are not redistributable; a synthetic
//! generator mirrors their structure (names, dates, phone numbers).

use dc_lambda::eval::Value;
use dc_lambda::expr::Expr;
use dc_lambda::primitives::{text_primitives, PrimitiveSet};
use dc_lambda::types::{tstr, Type};
use rand::{Rng, RngCore, SeedableRng};

use crate::domain::{degenerate_outputs, run_on_inputs, Domain};
use crate::task::{io_features, Example, Task};

/// The text-editing domain.
pub struct TextDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
    test: Vec<Task>,
}

const FIRST_NAMES: &[&str] = &[
    "john", "mary", "alice", "bob", "carol", "dave", "erin", "frank", "grace", "henry",
];
const LAST_NAMES: &[&str] = &[
    "smith", "jones", "miller", "davis", "brown", "wilson", "moore", "taylor", "clark", "lewis",
];

fn random_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

fn random_date<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "{:04}-{:02}-{:02}",
        rng.gen_range(1990..2026),
        rng.gen_range(1..13),
        rng.gen_range(1..29)
    )
}

fn random_phone<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "{}{}{}-{}{}{}{}",
        rng.gen_range(2..10),
        rng.gen_range(0..10),
        rng.gen_range(0..10),
        rng.gen_range(0..10),
        rng.gen_range(0..10),
        rng.gen_range(0..10),
        rng.gen_range(0..10)
    )
}

enum Source {
    Name,
    Date,
    Phone,
}

type TextFn = dyn Fn(&str) -> Option<String> + Send + Sync;

struct Template {
    name: &'static str,
    source: Source,
    f: Box<TextFn>,
}

fn templates() -> Vec<Template> {
    fn t(
        name: &'static str,
        source: Source,
        f: impl Fn(&str) -> Option<String> + Send + Sync + 'static,
    ) -> Template {
        Template {
            name,
            source,
            f: Box::new(f),
        }
    }
    vec![
        t("uppercase", Source::Name, |s| Some(s.to_uppercase())),
        t("identity", Source::Name, |s| Some(s.to_owned())),
        t("first word", Source::Name, |s| {
            s.split(' ').next().map(str::to_owned)
        }),
        t("last word", Source::Name, |s| {
            s.split(' ').next_back().map(str::to_owned)
        }),
        t("first word uppercased", Source::Name, |s| {
            s.split(' ').next().map(str::to_uppercase)
        }),
        t("drop first character", Source::Name, |s| {
            Some(s.chars().skip(1).collect())
        }),
        t("first character", Source::Name, |s| {
            s.chars().next().map(|c| c.to_string())
        }),
        t("first two characters", Source::Name, |s| {
            Some(s.chars().take(2).collect())
        }),
        t("swap words", Source::Name, |s| {
            let mut it = s.split(' ');
            let a = it.next()?;
            let b = it.next()?;
            Some(format!("{b} {a}"))
        }),
        t("join words with dash", Source::Name, |s| {
            Some(s.split(' ').collect::<Vec<_>>().join("-"))
        }),
        t("year of date", Source::Date, |s| {
            s.split('-').next().map(str::to_owned)
        }),
        t("month of date", Source::Date, |s| {
            s.split('-').nth(1).map(str::to_owned)
        }),
        t("day of date", Source::Date, |s| {
            s.split('-').nth(2).map(str::to_owned)
        }),
        t("date with dots", Source::Date, |s| {
            Some(s.split('-').collect::<Vec<_>>().join("."))
        }),
        t("prefix of phone", Source::Phone, |s| {
            s.split('-').next().map(str::to_owned)
        }),
        t("line of phone", Source::Phone, |s| {
            s.split('-').nth(1).map(str::to_owned)
        }),
        t("phone without dash", Source::Phone, |s| {
            Some(s.split('-').collect::<Vec<_>>().concat())
        }),
        t("double the string", Source::Name, |s| {
            Some(format!("{s}{s}"))
        }),
        t("last word uppercased", Source::Name, |s| {
            s.split(' ').next_back().map(str::to_uppercase)
        }),
        t("drop first two characters", Source::Name, |s| {
            Some(s.chars().skip(2).collect())
        }),
    ]
}

fn build_task<R: Rng + ?Sized>(tpl: &Template, rng: &mut R, dim: usize) -> Task {
    let mut examples = Vec::new();
    let mut guard = 0;
    while examples.len() < 5 && guard < 100 {
        guard += 1;
        let input = match tpl.source {
            Source::Name => random_name(rng),
            Source::Date => random_date(rng),
            Source::Phone => random_phone(rng),
        };
        if let Some(output) = (tpl.f)(&input) {
            examples.push(Example {
                inputs: vec![Value::str(&input)],
                output: Value::str(&output),
            });
        }
    }
    let features = io_features(&examples, dim);
    Task::io(tpl.name, Type::arrow(tstr(), tstr()), examples, features)
}

impl TextDomain {
    /// Build the domain; even templates train, odd templates test.
    pub fn new(seed: u64) -> TextDomain {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let primitives = text_primitives();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, tpl) in templates().iter().enumerate() {
            let task = build_task(tpl, &mut rng, 64);
            if i % 2 == 0 {
                train.push(task);
                train.push(build_task(tpl, &mut rng, 64));
            } else {
                test.push(task);
            }
        }
        TextDomain {
            primitives,
            train,
            test,
        }
    }
}

impl Domain for TextDomain {
    fn name(&self) -> &str {
        "text"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &self.test
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![Type::arrow(tstr(), tstr())]
    }
    fn dream(&self, program: &Expr, request: &Type, rng: &mut dyn RngCore) -> Option<Task> {
        let inputs: Vec<Vec<Value>> = (0..5)
            .map(|_| {
                let s = match rng.gen_range(0..3u8) {
                    0 => random_name(rng),
                    1 => random_date(rng),
                    _ => random_phone(rng),
                };
                vec![Value::str(&s)]
            })
            .collect();
        let examples = run_on_inputs(program, &inputs, 20_000)?;
        if degenerate_outputs(&examples) {
            return None;
        }
        let features = io_features(&examples, self.feature_dim());
        Some(Task::io("dream", request.clone(), examples, features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds() {
        let d = TextDomain::new(0);
        assert!(d.train_tasks().len() >= 15);
        assert!(d.test_tasks().len() >= 8);
    }

    #[test]
    fn ground_truth_programs_solve_tasks() {
        let d = TextDomain::new(1);
        let prims = d.primitives();
        let cases = [
            ("uppercase", "(lambda (str-upper $0))"),
            ("first word", "(lambda (car (str-split space $0)))"),
            ("drop first character", "(lambda (str-drop 1 $0))"),
            ("first character", "(lambda (str-take 1 $0))"),
            ("year of date", "(lambda (car (str-split dash $0)))"),
            ("double the string", "(lambda (str-append $0 $0))"),
            (
                "date with dots",
                "(lambda (str-join dot (str-split dash $0)))",
            ),
            (
                "first word uppercased",
                "(lambda (str-upper (car (str-split space $0))))",
            ),
        ];
        for (name, src) in cases {
            let program =
                Expr::parse(src, prims).unwrap_or_else(|e| panic!("parse failure for {name}: {e}"));
            let task = d
                .train_tasks()
                .iter()
                .chain(d.test_tasks())
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("missing task {name}"));
            assert!(task.check(&program), "{src} fails task {name}");
        }
    }

    #[test]
    fn dream_executes_text_program() {
        let d = TextDomain::new(2);
        let prims = d.primitives();
        let program = Expr::parse("(lambda (str-upper $0))", prims).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let task = d
            .dream(&program, &Type::arrow(tstr(), tstr()), &mut rng)
            .expect("dream");
        assert!(task.check(&program));
    }
}
