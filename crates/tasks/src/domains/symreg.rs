//! The symbolic-regression domain (§5): synthesize programs with
//! real-valued parameters from input/output examples of polynomials and
//! rational functions, fitting the continuous parameters in an inner
//! optimization loop (the paper uses gradient descent; we use a coarse
//! grid plus coordinate-descent refinement, which is robust for the 2-D
//! parameter spaces here).
//!
//! Programs have type `real -> real -> real -> real`: the first two
//! arguments are the free parameters `a, b`; the third is `x`.

use std::sync::Arc;

use dc_lambda::eval::{EvalCtx, Value};
use dc_lambda::expr::Expr;
use dc_lambda::primitives::PrimitiveSet;
use dc_lambda::types::{treal, Type};
use rand::{Rng, RngCore, SeedableRng};

use crate::domain::Domain;
use crate::domains::reals::real_primitives;
use crate::task::{Example, Task, TaskOracle};

/// Request type of every symbolic-regression program.
pub fn symreg_request() -> Type {
    Type::arrows(vec![treal(), treal(), treal()], treal())
}

/// Evaluate `program(a, b, x)`.
fn eval_at(program: &Expr, a: f64, b: f64, x: f64) -> Option<f64> {
    let mut ctx = EvalCtx::with_fuel(3_000);
    let v = ctx
        .run(program, &[Value::Real(a), Value::Real(b), Value::Real(x)])
        .ok()?;
    v.as_real().ok().filter(|r| r.is_finite())
}

fn mse(program: &Expr, a: f64, b: f64, points: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    for &(x, y) in points {
        match eval_at(program, a, b, x) {
            Some(p) => total += (p - y) * (p - y),
            None => return f64::INFINITY,
        }
    }
    total / points.len() as f64
}

/// Fit `(a, b)` minimizing mean squared error: coarse grid over
/// `[-4, 4]²` followed by shrinking coordinate descent.
pub fn fit_parameters(program: &Expr, points: &[(f64, f64)]) -> (f64, f64, f64) {
    let mut best = (0.0, 0.0, f64::INFINITY);
    let grid: Vec<f64> = (-4..=4).map(|i| i as f64).collect();
    for &a in &grid {
        for &b in &grid {
            let e = mse(program, a, b, points);
            if e < best.2 {
                best = (a, b, e);
            }
        }
    }
    let (mut a, mut b, mut e) = best;
    let mut step = 0.5;
    for _ in 0..40 {
        let mut improved = false;
        for (da, db) in [(step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step)] {
            let e2 = mse(program, a + da, b + db, points);
            if e2 < e {
                a += da;
                b += db;
                e = e2;
                improved = true;
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-6 {
                break;
            }
        }
    }
    (a, b, e)
}

/// Oracle: solved when the best-fit MSE falls below `tolerance`.
#[derive(Debug, Clone)]
pub struct SymRegOracle {
    /// The `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
    /// MSE threshold for success.
    pub tolerance: f64,
}

impl TaskOracle for SymRegOracle {
    fn log_likelihood(&self, program: &Expr) -> f64 {
        let (_, _, e) = fit_parameters(program, &self.points);
        if e < self.tolerance {
            // Gaussian-likelihood-style score: better fits score higher.
            -e
        } else {
            f64::NEG_INFINITY
        }
    }
}

struct Template {
    name: &'static str,
    f: Box<dyn Fn(f64, f64, f64) -> f64 + Send + Sync>,
}

fn templates() -> Vec<Template> {
    fn t(name: &'static str, f: impl Fn(f64, f64, f64) -> f64 + Send + Sync + 'static) -> Template {
        Template {
            name,
            f: Box::new(f),
        }
    }
    vec![
        t("constant", |a, _, _| a),
        t("linear ax", |a, _, x| a * x),
        t("affine ax+b", |a, b, x| a * x + b),
        t("quadratic ax^2", |a, _, x| a * x * x),
        t("quadratic ax^2+b", |a, b, x| a * x * x + b),
        t("quadratic ax^2+bx", |a, b, x| a * x * x + b * x),
        t("cubic ax^3", |a, _, x| a * x * x * x),
        t("cubic ax^3+b", |a, b, x| a * x * x * x + b),
        t("rational a/x", |a, _, x| a / x),
        t("rational a/x+b", |a, b, x| a / x + b),
        t("rational a/(x+b)", |a, b, x| a / (x + b)),
        t("scaled square plus x", |a, _, x| a * x * x + x),
    ]
}

/// The symbolic-regression domain.
pub struct SymRegDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
    test: Vec<Task>,
}

/// x-coordinates used for all tasks (zero avoided for rational functions).
const XS: [f64; 6] = [-2.0, -1.0, -0.5, 0.5, 1.0, 2.0];

fn symreg_features(points: &[(f64, f64)]) -> Vec<f64> {
    // The paper featurizes a rendered graph via CNN; we expose the sampled
    // y-values (clipped & squashed) directly, which carries the same
    // information for the recognition model at this scale.
    let mut f: Vec<f64> = points.iter().map(|(_, y)| (y / 10.0).tanh()).collect();
    f.resize(64, 0.0);
    f
}

fn build_task<R: Rng + ?Sized>(tpl: &Template, rng: &mut R) -> Task {
    let a = rng.gen_range(-3.0..3.0f64).round().max(1.0);
    let b = rng.gen_range(-3.0..3.0f64).round();
    let points: Vec<(f64, f64)> = XS.iter().map(|&x| (x, (tpl.f)(a, b, x))).collect();
    let examples: Vec<Example> = points
        .iter()
        .map(|&(x, y)| Example {
            inputs: vec![Value::Real(x)],
            output: Value::Real(y),
        })
        .collect();
    Task {
        name: tpl.name.to_owned(),
        request: symreg_request(),
        oracle: Arc::new(SymRegOracle {
            points: points.clone(),
            tolerance: 1e-3,
        }),
        features: symreg_features(&points),
        examples,
    }
}

impl SymRegDomain {
    /// Build the domain; even templates train, odd test.
    pub fn new(seed: u64) -> SymRegDomain {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let primitives = real_primitives();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, tpl) in templates().iter().enumerate() {
            if i % 2 == 0 {
                train.push(build_task(tpl, &mut rng));
                train.push(build_task(tpl, &mut rng));
            } else {
                test.push(build_task(tpl, &mut rng));
            }
        }
        SymRegDomain {
            primitives,
            train,
            test,
        }
    }
}

impl Domain for SymRegDomain {
    fn name(&self) -> &str {
        "symreg"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &self.test
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![symreg_request()]
    }
    fn dream(&self, program: &Expr, request: &Type, rng: &mut dyn RngCore) -> Option<Task> {
        let a = rng.gen_range(-3.0..3.0);
        let b = rng.gen_range(-3.0..3.0);
        let points: Vec<(f64, f64)> = XS
            .iter()
            .map(|&x| eval_at(program, a, b, x).map(|y| (x, y)))
            .collect::<Option<Vec<_>>>()?;
        if points.iter().all(|(_, y)| (y - points[0].1).abs() < 1e-9) {
            return None; // constant dream: uninformative
        }
        let examples = points
            .iter()
            .map(|&(x, y)| Example {
                inputs: vec![Value::Real(x)],
                output: Value::Real(y),
            })
            .collect();
        Some(Task {
            name: "dream".to_owned(),
            request: request.clone(),
            oracle: Arc::new(SymRegOracle {
                points: points.clone(),
                tolerance: 1e-3,
            }),
            features: symreg_features(&points),
            examples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_recovers_linear_parameters() {
        let prims = real_primitives();
        // f(a,b,x) = a*x + b
        let p = Expr::parse("(lambda (lambda (lambda (+. (*. $2 $0) $1))))", &prims).unwrap();
        let points: Vec<(f64, f64)> = XS.iter().map(|&x| (x, 2.0 * x - 1.0)).collect();
        let (a, b, e) = fit_parameters(&p, &points);
        assert!(e < 1e-6, "mse = {e}");
        assert!(
            (a - 2.0).abs() < 1e-3 && (b + 1.0).abs() < 1e-3,
            "a={a} b={b}"
        );
    }

    #[test]
    fn oracle_accepts_correct_family_rejects_wrong() {
        let d = SymRegDomain::new(0);
        let prims = d.primitives();
        let linear = Expr::parse("(lambda (lambda (lambda (+. (*. $2 $0) $1))))", prims).unwrap();
        let quad = Expr::parse(
            "(lambda (lambda (lambda (+. (*. $2 (*. $0 $0)) $1))))",
            prims,
        )
        .unwrap();
        let affine = d
            .train_tasks()
            .iter()
            .find(|t| t.name == "affine ax+b")
            .expect("affine task");
        assert!(affine.check(&linear));
        assert!(
            !affine.check(&quad),
            "quadratic family shouldn't fit ax+b data exactly"
        );
    }

    #[test]
    fn rational_tasks_need_division() {
        let d = SymRegDomain::new(1);
        let prims = d.primitives();
        let rational = Expr::parse("(lambda (lambda (lambda (/. $2 $0))))", prims).unwrap();
        if let Some(task) = d
            .train_tasks()
            .iter()
            .chain(d.test_tasks())
            .find(|t| t.name == "rational a/x")
        {
            assert!(task.check(&rational));
        }
    }

    #[test]
    fn dreams_are_fittable_by_their_own_program() {
        let d = SymRegDomain::new(2);
        let prims = d.primitives();
        let p = Expr::parse("(lambda (lambda (lambda (*. $2 $0))))", prims).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let task = d.dream(&p, &symreg_request(), &mut rng).expect("dream");
        assert!(task.check(&p));
    }
}
