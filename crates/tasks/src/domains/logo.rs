//! The LOGO graphics domain (§5): inverse graphics, where each task is an
//! image and programs drive a simulated turtle/pen over a canvas.
//!
//! Substrate built here: the turtle machine (position, heading, pen
//! state, `embed` save/restore — the paper's "stack for saving/restoring
//! the pen state"), a segment rasterizer, and bitmap-exact likelihoods.
//! The paper's CNN image encoder is replaced by a downsampled-bitmap
//! featurizer (see DESIGN.md).

use std::collections::BTreeSet;
use std::sync::Arc;

use dc_lambda::error::EvalError;
use dc_lambda::eval::{EvalCtx, Value};
use dc_lambda::expr::{Expr, Primitive};
use dc_lambda::primitives::{prim_int, PrimitiveSet};
use dc_lambda::types::{tint, Type};
use rand::RngCore;

use crate::domain::Domain;
use crate::task::{Task, TaskOracle};

/// Canvas resolution (pixels per side).
pub const CANVAS: usize = 32;
/// World coordinates covered by the canvas: `[-EXTENT, EXTENT]²`.
pub const EXTENT: f64 = 8.0;

/// A line segment drawn by the turtle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub from: (f64, f64),
    /// End point.
    pub to: (f64, f64),
}

/// The turtle-machine state threaded through LOGO programs.
#[derive(Debug, Clone)]
pub struct TurtleState {
    /// Position.
    pub x: f64,
    /// Position.
    pub y: f64,
    /// Heading in radians (0 = +x axis).
    pub heading: f64,
    /// Is the pen down (drawing)?
    pub pen: bool,
    /// Segments drawn so far.
    pub segments: Vec<Segment>,
}

impl TurtleState {
    /// The initial state: origin, facing +x, pen down, blank canvas.
    pub fn new() -> TurtleState {
        TurtleState {
            x: 0.0,
            y: 0.0,
            heading: 0.0,
            pen: true,
            segments: Vec::new(),
        }
    }
}

impl Default for TurtleState {
    fn default() -> Self {
        TurtleState::new()
    }
}

fn turtle_value(t: TurtleState) -> Value {
    Value::opaque("turtle", t)
}

fn get_turtle(v: &Value) -> Result<TurtleState, EvalError> {
    Ok(v.as_opaque::<TurtleState>("turtle")?.clone())
}

/// Rasterize segments onto the `CANVAS²` bitmap: the set of lit pixels.
pub fn rasterize(segments: &[Segment]) -> BTreeSet<(u8, u8)> {
    let mut pixels = BTreeSet::new();
    let scale = CANVAS as f64 / (2.0 * EXTENT);
    for seg in segments {
        let dx = seg.to.0 - seg.from.0;
        let dy = seg.to.1 - seg.from.1;
        let len = (dx * dx + dy * dy).sqrt();
        let steps = ((len * scale * 2.0).ceil() as usize).max(1);
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let x = seg.from.0 + t * dx;
            let y = seg.from.1 + t * dy;
            let px = ((x + EXTENT) * scale).floor();
            let py = ((y + EXTENT) * scale).floor();
            if px >= 0.0 && py >= 0.0 && (px as usize) < CANVAS && (py as usize) < CANVAS {
                pixels.insert((px as u8, py as u8));
            }
        }
    }
    pixels
}

/// Downsample a pixel set to an 8×8 mean-occupancy grid (the recognition
/// model's view of the image).
pub fn bitmap_features(pixels: &BTreeSet<(u8, u8)>) -> Vec<f64> {
    let cell = CANVAS / 8;
    let mut grid = vec![0.0; 64];
    for &(x, y) in pixels {
        let gx = (x as usize / cell).min(7);
        let gy = (y as usize / cell).min(7);
        grid[gy * 8 + gx] += 1.0;
    }
    let denom = (cell * cell) as f64;
    for g in &mut grid {
        *g /= denom;
    }
    grid
}

/// The `turtle` type.
pub fn tturtle() -> Type {
    Type::con0("turtle")
}
/// The `dist` type (lengths).
pub fn tdist() -> Type {
    Type::con0("dist")
}
/// The `angle` type.
pub fn tangle() -> Type {
    Type::con0("angle")
}

fn dist_value(d: f64) -> Value {
    Value::Real(d)
}

/// Run a `turtle -> turtle` function value on a state.
fn apply_turtle(
    ctx: &mut EvalCtx,
    f: &Value,
    state: TurtleState,
) -> Result<TurtleState, EvalError> {
    let out = ctx.apply(f.clone(), turtle_value(state))?;
    get_turtle(&out)
}

/// The LOGO base language: `fw`, `rt`, `pen-up`, `embed`, `logo-for`,
/// distance/angle constants and halving/doubling, plus small integers for
/// loop counts.
pub fn logo_primitives() -> PrimitiveSet {
    let mut s = PrimitiveSet::new();
    s.add(Primitive::function(
        "fw",
        Type::arrows(vec![tdist(), tturtle()], tturtle()),
        |args, _| {
            let d = args[0].as_real()?;
            let mut t = get_turtle(&args[1])?;
            let nx = t.x + d * t.heading.cos();
            let ny = t.y + d * t.heading.sin();
            if t.pen {
                t.segments.push(Segment {
                    from: (t.x, t.y),
                    to: (nx, ny),
                });
            }
            if t.segments.len() > 10_000 {
                return Err(EvalError::runtime("too many segments"));
            }
            t.x = nx;
            t.y = ny;
            Ok(turtle_value(t))
        },
    ))
    .add(Primitive::function(
        "rt",
        Type::arrows(vec![tangle(), tturtle()], tturtle()),
        |args, _| {
            let a = args[0].as_real()?;
            let mut t = get_turtle(&args[1])?;
            t.heading = (t.heading + a) % (2.0 * std::f64::consts::PI);
            Ok(turtle_value(t))
        },
    ))
    .add(Primitive::function(
        "pen-up",
        Type::arrows(
            vec![Type::arrow(tturtle(), tturtle()), tturtle()],
            tturtle(),
        ),
        |args, ctx| {
            let mut t = get_turtle(&args[1])?;
            let pen = t.pen;
            t.pen = false;
            let mut t2 = apply_turtle(ctx, &args[0], t)?;
            t2.pen = pen;
            Ok(turtle_value(t2))
        },
    ))
    .add(Primitive::function(
        "embed",
        Type::arrows(
            vec![Type::arrow(tturtle(), tturtle()), tturtle()],
            tturtle(),
        ),
        |args, ctx| {
            let t = get_turtle(&args[1])?;
            let (x, y, h, pen) = (t.x, t.y, t.heading, t.pen);
            let mut t2 = apply_turtle(ctx, &args[0], t)?;
            t2.x = x;
            t2.y = y;
            t2.heading = h;
            t2.pen = pen;
            Ok(turtle_value(t2))
        },
    ))
    .add(Primitive::function(
        "logo-for",
        Type::arrows(
            vec![tint(), Type::arrow(tturtle(), tturtle()), tturtle()],
            tturtle(),
        ),
        |args, ctx| {
            let n = args[0].as_int()?;
            if !(0..=64).contains(&n) {
                return Err(EvalError::runtime("logo-for count out of range"));
            }
            let mut t = get_turtle(&args[2])?;
            for _ in 0..n {
                ctx.burn(1)?;
                t = apply_turtle(ctx, &args[1], t)?;
            }
            Ok(turtle_value(t))
        },
    ))
    .add(Primitive::constant("unit-d", tdist(), dist_value(1.0)))
    .add(Primitive::function(
        "d-double",
        Type::arrow(tdist(), tdist()),
        |args, _| Ok(Value::Real(args[0].as_real()? * 2.0)),
    ))
    .add(Primitive::function(
        "d-half",
        Type::arrow(tdist(), tdist()),
        |args, _| Ok(Value::Real(args[0].as_real()? / 2.0)),
    ))
    .add(Primitive::constant(
        "a-quarter",
        tangle(),
        Value::Real(std::f64::consts::FRAC_PI_2),
    ))
    .add(Primitive::constant(
        "a-eighth",
        tangle(),
        Value::Real(std::f64::consts::FRAC_PI_4),
    ))
    .add(Primitive::constant(
        "a-third",
        tangle(),
        Value::Real(2.0 * std::f64::consts::PI / 3.0),
    ))
    .add(Primitive::function(
        "a-double",
        Type::arrow(tangle(), tangle()),
        |args, _| Ok(Value::Real(args[0].as_real()? * 2.0)),
    ))
    .add(Primitive::function(
        "a-half",
        Type::arrow(tangle(), tangle()),
        |args, _| Ok(Value::Real(args[0].as_real()? / 2.0)),
    ))
    .add(Primitive::function(
        "a-div",
        Type::arrows(vec![tangle(), tint()], tangle()),
        |args, _| {
            let n = args[1].as_int()?;
            if n <= 0 {
                return Err(EvalError::runtime("a-div by nonpositive"));
            }
            Ok(Value::Real(args[0].as_real()? / n as f64))
        },
    ))
    .add(Primitive::constant(
        "a-full",
        tangle(),
        Value::Real(2.0 * std::f64::consts::PI),
    ));
    for n in [1, 2, 3, 4, 5, 6, 7, 8] {
        s.add(prim_int(n));
    }
    s
}

/// Execute a `turtle -> turtle` program from the initial state.
///
/// # Errors
/// Propagates evaluation failures (fuel, type confusion).
pub fn run_logo_program(program: &Expr, fuel: u64) -> Result<TurtleState, EvalError> {
    let mut ctx = EvalCtx::with_fuel(fuel);
    let f = ctx.eval(program, &dc_lambda::eval::Env::new())?;
    apply_turtle(&mut ctx, &f, TurtleState::new())
}

/// Oracle comparing rasterized canvases exactly.
#[derive(Debug, Clone)]
pub struct LogoOracle {
    /// The target image.
    pub target: BTreeSet<(u8, u8)>,
}

impl TaskOracle for LogoOracle {
    fn log_likelihood(&self, program: &Expr) -> f64 {
        match run_logo_program(program, 100_000) {
            Ok(state) if rasterize(&state.segments) == self.target => 0.0,
            _ => f64::NEG_INFINITY,
        }
    }
}

/// The LOGO inverse-graphics domain.
pub struct LogoDomain {
    primitives: PrimitiveSet,
    train: Vec<Task>,
    test: Vec<Task>,
}

/// The ground-truth programs whose renders form the task corpus —
/// polygons, lines, staircases, dashed figures, radial arrangements
/// (cf. Fig 8A's task gallery).
pub fn ground_truth_programs() -> Vec<(&'static str, String)> {
    let mut progs: Vec<(&'static str, String)> = vec![
        ("line", "(lambda (fw unit-d $0))".into()),
        ("long line", "(lambda (fw (d-double (d-double unit-d)) $0))".into()),
        ("right angle", "(lambda (fw unit-d (rt a-quarter (fw unit-d $0))))".into()),
        (
            "dashed line",
            "(lambda (logo-for 3 (lambda (fw unit-d (pen-up (lambda (fw unit-d $0)) $0))) $0))"
                .into(),
        ),
        (
            "staircase 3",
            "(lambda (logo-for 3 (lambda (fw unit-d (rt a-quarter (fw unit-d (rt (a-double (a-half a-quarter)) ... $0))))) $0))".into(),
        ),
    ];
    // Regular polygons with n sides: for n (fw 1; rt 2π/n).
    for (name, n) in [
        ("triangle", 3),
        ("square", 4),
        ("pentagon", 5),
        ("hexagon", 6),
        ("octagon", 8),
    ] {
        progs.push((
            name,
            format!("(lambda (logo-for {n} (lambda (rt (a-div a-full {n}) (fw unit-d $0))) $0))"),
        ));
    }
    // Small and double-sized squares.
    progs.push((
        "big square",
        "(lambda (logo-for 4 (lambda (rt (a-div a-full 4) (fw (d-double unit-d) $0))) $0))".into(),
    ));
    // A row of squares (embed + pen-up hop).
    progs.push((
        "two squares in a row",
        "(lambda (logo-for 2 (lambda (pen-up (lambda (fw (d-double unit-d) $0)) (embed (lambda (logo-for 4 (lambda (rt (a-div a-full 4) (fw unit-d $0))) $0)) $0))) $0))".into(),
    ));
    // Radial symmetry: spokes.
    progs.push((
        "four spokes",
        "(lambda (logo-for 4 (lambda (rt a-quarter (embed (lambda (fw unit-d $0)) $0))) $0))"
            .into(),
    ));
    progs.push((
        "eight spokes",
        "(lambda (logo-for 8 (lambda (rt a-eighth (embed (lambda (fw unit-d $0)) $0))) $0))".into(),
    ));
    // Staircase.
    progs.push((
        "staircase",
        "(lambda (logo-for 3 (lambda (fw unit-d (rt a-quarter (fw unit-d (rt (a-div a-full 4) (rt a-quarter (rt a-quarter $0))))))) $0))".into(),
    ));
    // Zigzag.
    progs.push((
        "zigzag",
        "(lambda (logo-for 3 (lambda (rt a-eighth (fw unit-d (rt (a-double (a-double a-eighth)) (fw unit-d (rt a-eighth (rt a-full $0))))))) $0))".into(),
    ));
    // Triangle fan (radially repeated triangles) — Fig 8's flower-like shapes.
    progs.push((
        "triangle fan",
        "(lambda (logo-for 4 (lambda (rt a-quarter (embed (lambda (logo-for 3 (lambda (rt (a-div a-full 3) (fw unit-d $0))) $0)) $0))) $0))".into(),
    ));
    progs.retain(|(_, src)| !src.contains("..."));
    progs
}

impl LogoDomain {
    /// Build the domain: renders each ground-truth program to make its
    /// task; even indices train, odd test.
    pub fn new(_seed: u64) -> LogoDomain {
        let primitives = logo_primitives();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, (name, src)) in ground_truth_programs().iter().enumerate() {
            let program = Expr::parse(src, &primitives)
                .unwrap_or_else(|e| panic!("bad ground-truth LOGO program {name}: {e}"));
            let state = run_logo_program(&program, 200_000)
                .unwrap_or_else(|e| panic!("ground-truth LOGO program {name} crashed: {e}"));
            let target = rasterize(&state.segments);
            if target.is_empty() {
                continue;
            }
            let features = bitmap_features(&target);
            let task = Task {
                name: (*name).to_owned(),
                request: Type::arrow(tturtle(), tturtle()),
                oracle: Arc::new(LogoOracle { target }),
                features,
                examples: Vec::new(),
            };
            if i % 2 == 0 {
                train.push(task);
            } else {
                test.push(task);
            }
        }
        LogoDomain {
            primitives,
            train,
            test,
        }
    }
}

impl Domain for LogoDomain {
    fn name(&self) -> &str {
        "logo"
    }
    fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }
    fn train_tasks(&self) -> &[Task] {
        &self.train
    }
    fn test_tasks(&self) -> &[Task] {
        &self.test
    }
    fn dream_requests(&self) -> Vec<Type> {
        vec![Type::arrow(tturtle(), tturtle())]
    }
    fn dream(&self, program: &Expr, request: &Type, _rng: &mut dyn RngCore) -> Option<Task> {
        let state = run_logo_program(program, 50_000).ok()?;
        let target = rasterize(&state.segments);
        if target.len() < 3 {
            return None;
        }
        let features = bitmap_features(&target);
        Some(Task {
            name: "dream".to_owned(),
            request: request.clone(),
            oracle: Arc::new(LogoOracle { target }),
            features,
            examples: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_draws_four_segments_and_returns_home() {
        let prims = logo_primitives();
        let square = Expr::parse(
            "(lambda (logo-for 4 (lambda (rt (a-div a-full 4) (fw unit-d $0))) $0))",
            &prims,
        )
        .unwrap();
        let state = run_logo_program(&square, 100_000).unwrap();
        assert_eq!(state.segments.len(), 4);
        assert!(
            state.x.abs() < 1e-9 && state.y.abs() < 1e-9,
            "square should close"
        );
    }

    #[test]
    fn pen_up_suppresses_drawing_and_restores_pen() {
        let prims = logo_primitives();
        let p = Expr::parse(
            "(lambda (fw unit-d (pen-up (lambda (fw unit-d $0)) (fw unit-d $0))))",
            &prims,
        )
        .unwrap();
        let state = run_logo_program(&p, 100_000).unwrap();
        // Drawn, hopped, drawn: two segments, displacement three units.
        assert_eq!(state.segments.len(), 2);
        assert!((state.x - 3.0).abs() < 1e-9);
    }

    #[test]
    fn embed_restores_position() {
        let prims = logo_primitives();
        let p = Expr::parse("(lambda (embed (lambda (fw unit-d $0)) $0))", &prims).unwrap();
        let state = run_logo_program(&p, 100_000).unwrap();
        assert_eq!(state.segments.len(), 1);
        assert!(state.x.abs() < 1e-9);
    }

    #[test]
    fn rasterization_is_deterministic_and_nonempty() {
        let segs = [Segment {
            from: (0.0, 0.0),
            to: (3.0, 0.0),
        }];
        let a = rasterize(&segs);
        let b = rasterize(&segs);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let f = bitmap_features(&a);
        assert_eq!(f.len(), 64);
        assert!(f.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn domain_tasks_accept_their_ground_truth() {
        let d = LogoDomain::new(0);
        assert!(d.train_tasks().len() + d.test_tasks().len() >= 10);
        let by_name: std::collections::HashMap<&str, &Task> = d
            .train_tasks()
            .iter()
            .chain(d.test_tasks())
            .map(|t| (t.name.as_str(), t))
            .collect();
        for (name, src) in ground_truth_programs() {
            if let Some(task) = by_name.get(name) {
                let program = Expr::parse(&src, d.primitives()).unwrap();
                assert!(task.check(&program), "{name} rejects its own ground truth");
            }
        }
    }

    #[test]
    fn different_shapes_are_distinguished() {
        let d = LogoDomain::new(0);
        let prims = d.primitives();
        let square = Expr::parse(
            "(lambda (logo-for 4 (lambda (rt (a-div a-full 4) (fw unit-d $0))) $0))",
            prims,
        )
        .unwrap();
        let triangle = Expr::parse(
            "(lambda (logo-for 3 (lambda (rt (a-div a-full 3) (fw unit-d $0))) $0))",
            prims,
        )
        .unwrap();
        let all: Vec<&Task> = d.train_tasks().iter().chain(d.test_tasks()).collect();
        let sq_task = all.iter().find(|t| t.name == "square").unwrap();
        assert!(sq_task.check(&square));
        assert!(!sq_task.check(&triangle));
    }

    #[test]
    fn infinite_logo_programs_fail_cleanly() {
        let prims = logo_primitives();
        // for-loop counts are bounded; a huge repetition is an error, not a hang.
        let p = Expr::parse(
            "(lambda (logo-for 8 (lambda (logo-for 8 (lambda (logo-for 8 (lambda (logo-for 8 (lambda (logo-for 8 (lambda (fw unit-d $0)) $0)) $0)) $0)) $0)) $0))",
            &prims,
        )
        .unwrap();
        // 8^5 = 32768 iterations: must terminate (fuel or segment cap), not hang.
        let r = run_logo_program(&p, 50_000);
        assert!(r.is_err());
    }
}
