//! Real-valued arithmetic primitives shared by the symbolic-regression
//! and physics-law domains, plus an approximate-equality oracle.

use std::sync::Arc;

use dc_lambda::error::EvalError;
use dc_lambda::eval::{EvalCtx, Value};
use dc_lambda::expr::{Expr, Primitive};
use dc_lambda::primitives::PrimitiveSet;
use dc_lambda::types::{treal, Type};

use crate::task::{Example, TaskOracle};

fn real2(
    name: &str,
    f: impl Fn(f64, f64) -> Result<f64, EvalError> + Send + Sync + 'static,
) -> Arc<Primitive> {
    Primitive::function(
        name,
        Type::arrows(vec![treal(), treal()], treal()),
        move |args, _| {
            let r = f(args[0].as_real()?, args[1].as_real()?)?;
            if r.is_finite() {
                Ok(Value::Real(r))
            } else {
                Err(EvalError::runtime("non-finite real"))
            }
        },
    )
}

/// Real arithmetic: `+. -. *. /. sqrt.` and a few constants.
pub fn real_primitives() -> PrimitiveSet {
    let mut s = PrimitiveSet::new();
    s.add(real2("+.", |a, b| Ok(a + b)))
        .add(real2("-.", |a, b| Ok(a - b)))
        .add(real2("*.", |a, b| Ok(a * b)))
        .add(real2("/.", |a, b| {
            if b.abs() < 1e-9 {
                Err(EvalError::runtime("real division by zero"))
            } else {
                Ok(a / b)
            }
        }))
        .add(Primitive::function(
            "sqrt.",
            Type::arrow(treal(), treal()),
            |args, _| {
                let a = args[0].as_real()?;
                if a < 0.0 {
                    Err(EvalError::runtime("sqrt of negative"))
                } else {
                    Ok(Value::Real(a.sqrt()))
                }
            },
        ))
        .add(Primitive::constant("1r", treal(), Value::Real(1.0)))
        .add(Primitive::constant("2r", treal(), Value::Real(2.0)))
        .add(Primitive::constant("half", treal(), Value::Real(0.5)));
    s
}

/// Do two values match approximately (relative tolerance on reals,
/// recursing through lists)?
pub fn approx_eq(a: &Value, b: &Value, rel_tol: f64) -> bool {
    match (a, b) {
        (Value::Real(_) | Value::Int(_), Value::Real(_) | Value::Int(_)) => {
            let (x, y) = (
                a.as_real().unwrap_or(f64::NAN),
                b.as_real().unwrap_or(f64::NAN),
            );
            let scale = x.abs().max(y.abs()).max(1e-6);
            (x - y).abs() <= rel_tol * scale
        }
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|(u, v)| approx_eq(u, v, rel_tol))
        }
        _ => a == b,
    }
}

/// I/O oracle with approximate real comparison.
#[derive(Debug, Clone)]
pub struct RealOracle {
    /// Examples to reproduce.
    pub examples: Vec<Example>,
    /// Relative tolerance.
    pub rel_tol: f64,
    /// Evaluation fuel per example.
    pub fuel: u64,
}

impl TaskOracle for RealOracle {
    fn log_likelihood(&self, program: &Expr) -> f64 {
        for ex in &self.examples {
            let mut ctx = EvalCtx::with_fuel(self.fuel);
            match ctx.run(program, &ex.inputs) {
                Ok(v) if approx_eq(&v, &ex.output, self.rel_tol) => {}
                _ => return f64::NEG_INFINITY,
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_lambda::eval::run_program;

    #[test]
    fn real_arithmetic_works() {
        let prims = real_primitives();
        let e = Expr::parse("(/. (+. 1r 2r) 2r)", &prims).unwrap();
        assert_eq!(run_program(&e, &[], 1_000).unwrap(), Value::Real(1.5));
        let s = Expr::parse("(sqrt. (*. 2r 2r))", &prims).unwrap();
        assert_eq!(run_program(&s, &[], 1_000).unwrap(), Value::Real(2.0));
    }

    #[test]
    fn division_by_zero_and_negative_sqrt_error() {
        let prims = real_primitives();
        let e = Expr::parse("(/. 1r (-. 1r 1r))", &prims).unwrap();
        assert!(run_program(&e, &[], 1_000).is_err());
        let s = Expr::parse("(sqrt. (-. 1r 2r))", &prims).unwrap();
        assert!(run_program(&s, &[], 1_000).is_err());
    }

    #[test]
    fn approx_eq_tolerates_small_errors() {
        assert!(approx_eq(&Value::Real(1.0), &Value::Real(1.0005), 1e-3));
        assert!(!approx_eq(&Value::Real(1.0), &Value::Real(1.1), 1e-3));
        assert!(approx_eq(
            &Value::list(vec![Value::Real(2.0)]),
            &Value::list(vec![Value::Real(2.0000001)]),
            1e-3
        ));
        assert!(!approx_eq(&Value::Real(1.0), &Value::Bool(true), 1e-3));
    }
}
