//! # dc-tasks
//!
//! Synthesis tasks and the eight DreamCoder evaluation domains (§5 of the
//! paper), together with every simulator substrate they require: a LOGO
//! turtle rasterizer, a block-tower stage, a probabilistic regex
//! interpreter, continuous-parameter fitting for symbolic regression, the
//! 60-law physics dataset, and the 1959-Lisp origami corpus.
//!
//! # Example
//!
//! ```
//! use dc_tasks::domain::Domain;
//! use dc_tasks::domains::list::ListDomain;
//!
//! let domain = ListDomain::new(0);
//! assert!(domain.train_tasks().len() >= 40);
//! let prims = domain.primitives();
//! let program = dc_lambda::Expr::parse(
//!     "(lambda (map (lambda (+ $0 1)) $0))", prims).unwrap();
//! let task = domain.train_tasks().iter().find(|t| t.name == "add1 to each").unwrap();
//! assert!(task.check(&program));
//! ```

#![warn(missing_docs)]

pub mod domain;
pub mod domains;
pub mod task;

pub use domain::Domain;
pub use task::{io_features, Example, IoOracle, Task, TaskOracle};
