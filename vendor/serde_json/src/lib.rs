//! Offline, API-compatible subset of `serde_json`.
//!
//! Provides [`to_string`] / [`to_string_pretty`] / [`from_str`] plus a
//! [`Value`] tree, all routed through the vendored `serde` crate's
//! `Content` model. Non-finite floats serialize as `null`, matching
//! upstream's behaviour.

#![allow(clippy::all, clippy::pedantic)]

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, Deserialize, Serialize};

mod parse;
mod value;

pub use value::{Number, Value};

/// Map type used by [`Value::Object`].
pub type Map = BTreeMap<String, Value>;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
///
/// # Errors
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to an indented JSON string.
///
/// # Errors
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse::parse(s)?;
    Ok(T::from_content(&content)?)
}

/// Deserialize a value from JSON bytes.
///
/// # Errors
/// On invalid UTF-8, malformed JSON, or a shape mismatch with `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::msg)?;
    from_str(s)
}

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats recognizably floating-point, as upstream
        // does ("1.0", not "1").
        out.push_str(&format!("{v:.1}"));
    } else {
        // `{}` on f64 prints the shortest string that round-trips.
        out.push_str(&v.to_string());
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1i64).unwrap(), "1");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let v: f64 = from_str("2.0").unwrap();
        assert_eq!(v, 2.0);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
    }

    #[test]
    fn collections_round_trip() {
        let xs = vec![1.0f64, -2.5, 3.25];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(xs, back);

        let pairs = vec![("a".to_owned(), 1u64), ("b".to_owned(), 2)];
        let json = to_string(&pairs).unwrap();
        let back: Vec<(String, u64)> = from_str(&json).unwrap();
        assert_eq!(pairs, back);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode ❄".to_owned();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let value = vec![vec![1i64, 2], vec![3]];
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<i64>> = from_str(&pretty).unwrap();
        assert_eq!(value, back);
    }

    #[test]
    fn value_parses_arbitrary_json() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x", null, true], "b": {"c": -3}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["a"].as_array().unwrap().len(), 5);
        assert_eq!(obj["b"].as_object().unwrap()["c"].as_i64(), Some(-3));
    }
}
