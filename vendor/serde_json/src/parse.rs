//! Recursive-descent JSON parser producing `serde::Content`.

use serde::Content;

use crate::Error;

pub(crate) fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Fast path: copy a run of plain bytes at once.
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !(self.literal("\\u")) {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(Error::msg)?;
        let v = u32::from_str_radix(hex, 16).map_err(Error::msg)?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
