//! A dynamically-typed JSON value, mirroring `serde_json::Value`.

use serde::{Content, Deserialize, Error as SerdeError, Serialize};

use crate::Map;

/// Dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted, like `serde_json`'s `preserve_order`-off default).
    Object(Map),
}

/// JSON number: integer when possible, float otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Fits in `i64`.
    I64(i64),
    /// Positive and exceeds `i64::MAX`.
    U64(u64),
    /// Not an integer.
    F64(f64),
}

impl Value {
    /// Index into an object by key or an array by stringified index.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            Value::Array(items) => key.parse::<usize>().ok().and_then(|i| items.get(i)),
            _ => None,
        }
    }

    /// As a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an `i64`, if this is an integral number that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// As a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// As an `f64`, for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// As a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// As an object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

/// `value["key"]` — yields `Null` for missing keys or non-objects, like
/// upstream `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// `value[i]` — yields `Null` out of bounds or for non-arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, SerdeError> {
        Ok(match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), Value::from_content(v)?)))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }
}
