//! Offline, API-compatible subset of `serde`.
//!
//! Instead of upstream's visitor-based data model, this vendored subset
//! routes serialization through a single self-describing [`Content`]
//! tree: `Serialize` lowers a value into `Content`, `Deserialize` lifts
//! it back. The companion `serde_json` vendored crate renders `Content`
//! as JSON text and parses JSON text back into `Content`. The derive
//! macros (`#[derive(Serialize, Deserialize)]`) are re-exported from the
//! `serde_derive` proc-macro crate and generate field-by-field
//! `Content::Map` conversions for structs with named fields.

#![allow(clippy::all, clippy::pedantic)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate tree all (de)serialization routes
/// through. Maps preserve insertion order so struct fields serialize in
/// declaration order, like upstream serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key/value map in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// View as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// View as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Error produced by (de)serialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can lower itself into [`Content`].
pub trait Serialize {
    /// Lower into the intermediate tree.
    fn to_content(&self) -> Content;
}

/// A value that can lift itself out of [`Content`].
pub trait Deserialize: Sized {
    /// Lift from the intermediate tree.
    ///
    /// # Errors
    /// When the tree's shape does not match `Self`.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Look up a struct field in a `Content::Map`, treating a missing key as
/// `Content::Null` (so `Option` fields tolerate omission). Used by the
/// derive macro.
///
/// # Errors
/// Propagates the field type's deserialization error.
pub fn field<T: Deserialize>(entries: &[(String, Content)], name: &str) -> Result<T, Error> {
    let content = entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Content::Null);
    T::from_content(content).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let err = || Error::custom(concat!("expected ", stringify!($t)));
                match content {
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| err()),
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| err()),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            // Upstream serde_json writes non-finite floats as null.
            Content::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Arc::new)
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected sequence of length {}, got {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}
