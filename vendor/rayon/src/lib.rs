//! Offline, API-compatible subset of `rayon`.
//!
//! Genuinely parallel: sources are random-access (`len`/`at`), and
//! `collect` fans indices out over `std::thread::scope` workers, one
//! contiguous chunk per thread, then concatenates chunks in order so
//! results keep the input ordering exactly like upstream's indexed
//! parallel iterators.

#![allow(clippy::all, clippy::pedantic)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Glob-import surface matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Process-wide worker cap; 0 means "unset" (fall back to the
/// `DC_THREADS` env var, then `available_parallelism`).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads for every subsequent parallel call.
/// `None` restores the default cascade (`DC_THREADS`, then
/// `available_parallelism`). Subset extension: upstream rayon configures
/// this through `ThreadPoolBuilder`; this crate has no pool to build.
pub fn set_max_threads(cap: Option<usize>) {
    MAX_THREADS.store(cap.unwrap_or(0), Ordering::SeqCst);
}

/// Run `f` with the worker cap temporarily set to `cap`, restoring the
/// previous cap afterwards (panic-safe). Subset extension: determinism
/// tests and benches compare a single-thread run against a parallel run
/// of the same workload, and the save/restore dance is easy to get wrong
/// by hand. Note the cap is process-global, so concurrent callers still
/// need external serialization.
pub fn with_max_threads<T>(cap: Option<usize>, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(MAX_THREADS.swap(cap.unwrap_or(0), Ordering::SeqCst));
    f()
}

/// The number of worker threads parallel calls will currently use:
/// [`set_max_threads`] override, else `DC_THREADS`, else
/// `available_parallelism`.
pub fn current_num_threads() -> usize {
    let explicit = MAX_THREADS.load(Ordering::SeqCst);
    let env = std::env::var("DC_THREADS").ok();
    resolve_workers(explicit, env.as_deref())
}

/// Pure worker-count cascade, split out for unit testing.
fn resolve_workers(explicit: usize, env: Option<&str>) -> usize {
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = env.and_then(|s| s.trim().parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

/// Random-access parallel iterator. `at` must be safe to call from many
/// threads at once (hence `Sync`), each index exactly once overall.
pub trait ParallelIterator: Sized + Sync {
    /// Element type produced per index.
    type Item: Send;

    /// Number of elements.
    fn len(&self) -> usize;

    /// Produce the element at `index`.
    fn at(&self, index: usize) -> Self::Item;

    /// Map each element through `f`.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { source: self, f }
    }

    /// Pair elements with another parallel iterator, truncating to the
    /// shorter of the two.
    fn zip<B: ParallelIterator>(self, other: B) -> ParZip<Self, B> {
        ParZip { a: self, b: other }
    }

    /// Execute in parallel and gather results.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Largest element under `compare`. Ties keep the element with the
    /// **lowest index** — selection depends only on input order, never on
    /// thread arrival, which is what deterministic argmax reductions want.
    /// (Subset note: upstream's `max_by` keeps the *last* max; callers
    /// here need the sequential `score > best` semantics instead.)
    fn max_by_stable<F>(self, compare: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync,
    {
        use std::cmp::Ordering::Greater;
        let per_chunk = run_chunked(&self, |start, end| {
            let mut best: Option<Self::Item> = None;
            for i in start..end {
                let item = self.at(i);
                match &best {
                    Some(b) if compare(&item, b) != Greater => {}
                    _ => best = Some(item),
                }
            }
            best
        });
        // Chunks come back in index order, so an in-order fold that only
        // replaces on strictly-greater keeps the earliest maximum.
        let mut best: Option<Self::Item> = None;
        for cand in per_chunk.into_iter().flatten() {
            match &best {
                Some(b) if compare(&cand, b) != Greater => {}
                _ => best = Some(cand),
            }
        }
        best
    }
}

/// Collection buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Drive `par` to completion and collect its items in order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Vec<T> {
        run(&par)
    }
}

fn run<P: ParallelIterator>(par: &P) -> Vec<P::Item> {
    let n = par.len();
    let mut out: Vec<P::Item> = Vec::with_capacity(n);
    for chunk in run_chunked(par, |start, end| {
        (start..end).map(|i| par.at(i)).collect::<Vec<_>>()
    }) {
        out.extend(chunk);
    }
    out
}

/// Split `0..par.len()` into one contiguous chunk per worker, run `work`
/// on each chunk in parallel, and return the per-chunk results **in chunk
/// (= index) order** regardless of which thread finished first.
fn run_chunked<P, R, W>(par: &P, work: W) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    W: Fn(usize, usize) -> R + Sync,
{
    let n = par.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n < 2 {
        return if n == 0 { Vec::new() } else { vec![work(0, n)] };
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                // Deep enumeration/evaluation recursion needs more than
                // the 2 MiB spawn default, especially in debug builds.
                std::thread::Builder::new()
                    .name(format!("par-worker-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || work(start, end))
                    .expect("spawn parallel worker")
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Worker stack size: generous because callers run deeply recursive
/// program enumeration and evaluation inside these threads.
const WORKER_STACK_BYTES: usize = 16 * 1024 * 1024;

/// `par_iter()` — borrow a collection as a parallel iterator.
pub trait IntoParallelRefIterator<'d> {
    /// Borrowed element type.
    type Item: Send + 'd;
    /// Iterator this borrows into.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&self`.
    fn par_iter(&'d self) -> Self::Iter;
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for [T] {
    type Item = &'d T;
    type Iter = ParIter<'d, T>;
    fn par_iter(&'d self) -> ParIter<'d, T> {
        ParIter { slice: self }
    }
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for Vec<T> {
    type Item = &'d T;
    type Iter = ParIter<'d, T>;
    fn par_iter(&'d self) -> ParIter<'d, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'d, T> {
    slice: &'d [T],
}

impl<'d, T: Sync + 'd> ParallelIterator for ParIter<'d, T> {
    type Item = &'d T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn at(&self, index: usize) -> &'d T {
        let slice: &'d [T] = self.slice;
        &slice[index]
    }
}

/// `into_par_iter()` — consume a value into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type produced.
    type Item: Send;
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn at(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Result of [`ParallelIterator::map`].
pub struct ParMap<S, F> {
    source: S,
    f: F,
}

impl<S, R, F> ParallelIterator for ParMap<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.source.len()
    }

    fn at(&self, index: usize) -> R {
        (self.f)(self.source.at(index))
    }
}

/// Result of [`ParallelIterator::zip`].
pub struct ParZip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for ParZip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn at(&self, index: usize) -> (A::Item, B::Item) {
        (self.a.at(index), self.b.at(index))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Serializes tests that write or observe the process-global worker
    /// cap, so they can't race each other's view of it.
    static CAP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let a = vec![1, 2, 3, 4];
        let b = vec![10, 20, 30];
        let pairs: Vec<(i32, i32)> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(x, y)| (*x, *y))
            .collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let _cap = CAP_LOCK.lock().unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let xs: Vec<u32> = (0..4096).collect();
        let _: Vec<u32> = xs
            .par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                *x
            })
            .collect();
        // With >1 resolved workers the scope must have used >1 threads.
        if crate::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn range_into_par_iter_matches_sequential() {
        let squares: Vec<usize> = (3..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (3..100).map(|i| i * i).collect::<Vec<_>>());
        let empty: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn max_by_stable_keeps_earliest_tie() {
        // Two maxima with equal keys: the earlier index must win.
        let xs = vec![(1, 'a'), (9, 'b'), (3, 'c'), (9, 'd'), (2, 'e')];
        let best = xs
            .par_iter()
            .map(|&(k, tag)| (k, tag))
            .max_by_stable(|a, b| a.0.cmp(&b.0));
        assert_eq!(best, Some((9, 'b')));
        let none: Option<usize> = (0..0).into_par_iter().max_by_stable(|a, b| a.cmp(b));
        assert_eq!(none, None);
    }

    #[test]
    fn max_by_stable_matches_sequential_on_large_input() {
        let xs: Vec<i64> = (0..50_000)
            .map(|i| (i * 2_654_435_761_i64) % 10_007)
            .collect();
        let par = xs.par_iter().map(|&v| v).max_by_stable(|a, b| a.cmp(b));
        let seq = xs.iter().copied().max();
        assert_eq!(par, seq);
    }

    #[test]
    fn with_max_threads_restores_previous_cap() {
        let _cap = CAP_LOCK.lock().unwrap();
        crate::set_max_threads(Some(7));
        let inside = crate::with_max_threads(Some(1), crate::current_num_threads);
        assert_eq!(inside, 1);
        assert_eq!(crate::current_num_threads(), 7);
        // Restores even when `f` panics.
        let caught = std::panic::catch_unwind(|| {
            crate::with_max_threads(Some(2), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(crate::current_num_threads(), 7);
        crate::set_max_threads(None);
    }

    #[test]
    fn worker_cascade_prefers_explicit_then_env() {
        assert_eq!(crate::resolve_workers(3, Some("8")), 3);
        assert_eq!(crate::resolve_workers(0, Some("8")), 8);
        assert_eq!(crate::resolve_workers(0, Some(" 2 ")), 2);
        // Unparseable or zero env falls through to available_parallelism.
        let hw = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        assert_eq!(crate::resolve_workers(0, Some("zero")), hw);
        assert_eq!(crate::resolve_workers(0, Some("0")), hw);
        assert_eq!(crate::resolve_workers(0, None), hw);
    }
}
