//! Offline, API-compatible subset of `rayon`.
//!
//! Genuinely parallel: sources are random-access (`len`/`at`), and
//! `collect` fans indices out over `std::thread::scope` workers, one
//! contiguous chunk per thread, then concatenates chunks in order so
//! results keep the input ordering exactly like upstream's indexed
//! parallel iterators.

#![allow(clippy::all, clippy::pedantic)]

/// Glob-import surface matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Random-access parallel iterator. `at` must be safe to call from many
/// threads at once (hence `Sync`), each index exactly once overall.
pub trait ParallelIterator: Sized + Sync {
    /// Element type produced per index.
    type Item: Send;

    /// Number of elements.
    fn len(&self) -> usize;

    /// Produce the element at `index`.
    fn at(&self, index: usize) -> Self::Item;

    /// Map each element through `f`.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { source: self, f }
    }

    /// Pair elements with another parallel iterator, truncating to the
    /// shorter of the two.
    fn zip<B: ParallelIterator>(self, other: B) -> ParZip<Self, B> {
        ParZip { a: self, b: other }
    }

    /// Execute in parallel and gather results.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Drive `par` to completion and collect its items in order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Vec<T> {
        run(&par)
    }
}

fn run<P: ParallelIterator>(par: &P) -> Vec<P::Item> {
    let n = par.len();
    let workers = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n < 2 {
        return (0..n).map(|i| par.at(i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<P::Item> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                // Deep enumeration/evaluation recursion needs more than
                // the 2 MiB spawn default, especially in debug builds.
                std::thread::Builder::new()
                    .name(format!("par-worker-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        (start..end).map(|i| par.at(i)).collect::<Vec<_>>()
                    })
                    .expect("spawn parallel worker")
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Worker stack size: generous because callers run deeply recursive
/// program enumeration and evaluation inside these threads.
const WORKER_STACK_BYTES: usize = 16 * 1024 * 1024;

/// `par_iter()` — borrow a collection as a parallel iterator.
pub trait IntoParallelRefIterator<'d> {
    /// Borrowed element type.
    type Item: Send + 'd;
    /// Iterator this borrows into.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&self`.
    fn par_iter(&'d self) -> Self::Iter;
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for [T] {
    type Item = &'d T;
    type Iter = ParIter<'d, T>;
    fn par_iter(&'d self) -> ParIter<'d, T> {
        ParIter { slice: self }
    }
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for Vec<T> {
    type Item = &'d T;
    type Iter = ParIter<'d, T>;
    fn par_iter(&'d self) -> ParIter<'d, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'d, T> {
    slice: &'d [T],
}

impl<'d, T: Sync + 'd> ParallelIterator for ParIter<'d, T> {
    type Item = &'d T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn at(&self, index: usize) -> &'d T {
        let slice: &'d [T] = self.slice;
        &slice[index]
    }
}

/// Result of [`ParallelIterator::map`].
pub struct ParMap<S, F> {
    source: S,
    f: F,
}

impl<S, R, F> ParallelIterator for ParMap<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.source.len()
    }

    fn at(&self, index: usize) -> R {
        (self.f)(self.source.at(index))
    }
}

/// Result of [`ParallelIterator::zip`].
pub struct ParZip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for ParZip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn at(&self, index: usize) -> (A::Item, B::Item) {
        (self.a.at(index), self.b.at(index))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let a = vec![1, 2, 3, 4];
        let b = vec![10, 20, 30];
        let pairs: Vec<(i32, i32)> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(x, y)| (*x, *y))
            .collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let xs: Vec<u32> = (0..4096).collect();
        let _: Vec<u32> = xs
            .par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                *x
            })
            .collect();
        // With >1 hardware threads the scope must have used >1 workers.
        if std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            > 1
        {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }
}
