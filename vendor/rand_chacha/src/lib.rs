//! Offline, API-compatible subset of `rand_chacha`: [`ChaCha8Rng`].
//!
//! A genuine ChaCha8 keystream generator (the reduced-round variant the
//! original DreamCoder-rs dependency used for reproducible experiments).
//! Deterministic per seed; not stream-compatible with upstream
//! `rand_chacha` (the workspace only relies on per-seed determinism).

#![allow(clippy::all, clippy::pedantic)]

use rand::{RngCore, SeedableRng};

/// A ChaCha keystream generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`.
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A complete snapshot of a [`ChaCha8Rng`]'s state, sufficient to resume
/// the keystream bit-for-bit (used by checkpoint/resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8State {
    /// Key words (seed).
    pub key: [u32; 8],
    /// 64-bit block counter (already advanced past `block`).
    pub counter: u64,
    /// Buffered keystream block.
    pub block: [u32; 16],
    /// Next unread word in `block`.
    pub index: usize,
}

impl ChaCha8Rng {
    /// Snapshot the full generator state.
    pub fn state(&self) -> ChaCha8State {
        ChaCha8State {
            key: self.key,
            counter: self.counter,
            block: self.block,
            index: self.index,
        }
    }

    /// Rebuild a generator from a snapshot; the restored generator
    /// produces exactly the words the snapshotted one would have.
    pub fn from_state(state: &ChaCha8State) -> ChaCha8Rng {
        ChaCha8Rng {
            key: state.key,
            counter: state.counter,
            block: state.block,
            index: state.index.min(16),
        }
    }
}

impl ChaCha8Rng {
    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        input[14] = 0;
        input[15] = 0;
        let mut state = input;
        for _ in 0..4 {
            // One double round = 2 rounds; 4 double rounds = ChaCha8.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_snapshot_resumes_stream_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        // Leave the generator mid-block so the snapshot covers index too.
        for _ in 0..21 {
            rng.next_u32();
        }
        let state = rng.state();
        let ahead: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut resumed = ChaCha8Rng::from_state(&state);
        let replay: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(ahead, replay);
        assert_eq!(resumed.state(), rng.state());
    }

    #[test]
    fn blocks_differ_across_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
