//! The [`Distribution`] trait and the [`Standard`] distribution.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw a sample using `rng` as the source of randomness.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over the full domain for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
