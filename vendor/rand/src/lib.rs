//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace is hermetic (no registry
//! access), so the external crates the code depends on are vendored as
//! minimal reimplementations of exactly the API surface the workspace
//! uses. This crate provides the `RngCore` / `Rng` / `SeedableRng`
//! traits, the `Standard` distribution, and `seq::SliceRandom`.
//!
//! The streams produced are deterministic per seed but are **not**
//! bit-compatible with upstream `rand`; nothing in this workspace
//! depends on upstream's exact streams.

#![allow(clippy::all, clippy::pedantic)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// Panics on empty ranges, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Fill a slice-like buffer with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A 53-bit uniform draw in `[0, 1)`.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // Multiply-shift bounded sampling; bias is negligible for
                // the span sizes used in this workspace.
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a sample from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Build the generator from ambient entropy (time-based; this
    /// workspace only uses explicitly seeded generators in tests).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// SplitMix64, used to expand `u64` seeds.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.gen_range(0.5..3.0);
            assert!((0.5..3.0).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
