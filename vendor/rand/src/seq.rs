//! Sequence helpers: [`SliceRandom`].

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// A uniformly random mutable element, or `None` if empty.
    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            self.get_mut(i)
        }
    }
}
