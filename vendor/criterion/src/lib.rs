//! Offline, API-compatible subset of `criterion`.
//!
//! Keeps the macro/builder surface (`criterion_group!`, `criterion_main!`,
//! `bench_function`, `benchmark_group`, `iter`, `iter_batched`) but
//! replaces the statistics engine with a simple median-of-samples
//! wall-clock measurement printed to stdout. Good enough to run the
//! benches and eyeball regressions; not a statistical harness.

#![allow(clippy::all, clippy::pedantic)]

use std::time::{Duration, Instant};

/// Opaque value barrier, like `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch size hint for `iter_batched`; sizing is ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Benchmark `function_name` at `parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            function: function_name.to_owned(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        self.criterion.bench_function(&label, |b| f(b, input));
        self
    }

    /// Finish the group (upstream emits summary plots; here a no-op).
    pub fn finish(self) {}
}

/// Per-benchmark measurement interface handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed runs so lazy initialization settles.
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup` each sample, excluding
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3.min(self.sample_size) {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{id:<40} median {} (min {}, max {}, n={})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        let mut group = c.benchmark_group("grouped");
        for n in [1usize, 2] {
            group.bench_with_input(BenchmarkId::new("case", n), &n, |b, &n| b.iter(|| n * 2));
        }
        group.finish();
    }

    #[test]
    fn full_surface_runs() {
        let mut criterion = Criterion::default().sample_size(5);
        target(&mut criterion);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
