//! Offline, API-compatible subset of `proptest`.
//!
//! Strategies generate values directly (no value trees, no shrinking):
//! each `proptest!` test derives a deterministic RNG from its own name and
//! runs `ProptestConfig::cases` generated cases. `prop_assert*` macros
//! panic like plain `assert*`, and `prop_assume!` skips the current case
//! instead of re-drawing.

#![allow(clippy::all, clippy::pedantic)]

use std::rc::Rc;

use rand::{Rng, SeedableRng};

/// RNG driving generation; deterministic per test name.
pub type TestRng = rand::rngs::StdRng;

/// Build the deterministic RNG for a named test.
pub fn test_rng(name: &str) -> TestRng {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    TestRng::seed_from_u64(hasher.finish())
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Recursive strategy: `self` is the leaf case, `f` wraps a strategy
    /// for depth `d` into one for depth `d + 1`. The size arguments are
    /// accepted for API compatibility; depth alone bounds generation.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let deeper = f(current.clone()).boxed();
            let shallow = current;
            current = BoxedStrategy::from_fn(move |rng| {
                // Recurse two times out of three so trees get interesting
                // without blowing up (depth still hard-bounds them).
                if rng.gen_range(0u32..3) < 2 {
                    deeper.generate(rng)
                } else {
                    shallow.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: rand::SampleUniform + PartialOrd + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: rand::SampleUniform + PartialOrd + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for any value of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// `any::<bool>()` — fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Character strategies (`proptest::char::range`).
pub mod char {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive character range strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Characters between `lo` and `hi`, inclusive.
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi, "char range start must be <= end");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
            loop {
                if let Some(c) = ::core::primitive::char::from_u32(rng.gen_range(self.lo..=self.hi))
                {
                    return c;
                }
            }
        }
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property; panics (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skip the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Drive one property: generate `config.cases` inputs and run the case
/// closure on each. Exists as a function (rather than macro-expanded
/// loop) so the closure's parameter types are inferred from `S::Value`.
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    strategy: &S,
    rng: &mut TestRng,
    mut case: impl FnMut(S::Value),
) {
    for _ in 0..config.cases {
        case(strategy.generate(rng));
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            $crate::run_cases(&config, &strategy, &mut rng, |($($arg),+ ,)| $body);
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// The glob-import surface matching `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        let strategy = (0i64..8, -6.0f64..6.0);
        for _ in 0..1000 {
            let (i, f) = crate::Strategy::generate(&strategy, &mut rng);
            assert!((0..8).contains(&i));
            assert!((-6.0..6.0).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_rng("oneof");
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::Strategy::generate(&strategy, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate_and_nest() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strategy = Just(Tree::Leaf).prop_recursive(3, 10, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_rng("recursive");
        let mut max_depth = 0;
        for _ in 0..300 {
            let t = crate::Strategy::generate(&strategy, &mut rng);
            let d = depth(&t);
            assert!(d <= 3);
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "recursion never nested (max {max_depth})");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: multiple bindings, assume, and asserts.
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec((0i64..8, any::<bool>()), 1..20),
            c in crate::char::range('a', 'c'),
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!(('a'..='c').contains(&c));
            for (v, _flag) in xs {
                prop_assert!((0..8).contains(&v));
            }
        }
    }
}
