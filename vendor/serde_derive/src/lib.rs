//! Derive macros for the vendored `serde` subset.
//!
//! Hand-rolled over `proc_macro::TokenStream` (the hermetic build has no
//! `syn`/`quote`). Supports what the workspace actually derives:
//!
//! * structs with named fields — `Serialize` and `Deserialize` as
//!   field-by-field `Content::Map` conversions;
//! * enums whose variants are all units — (de)serialized as the variant
//!   name string, matching upstream's external tagging for unit variants.
//!
//! Anything else (tuple structs, generic types, data-carrying enums)
//! produces a compile error naming the limitation.

#![allow(clippy::all, clippy::pedantic)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we managed to parse out of the derive input.
enum Input {
    /// Struct name + named field identifiers.
    Struct(String, Vec<String>),
    /// Enum name + unit variant identifiers.
    UnitEnum(String, Vec<String>),
    /// Unsupported shape, with a reason.
    Unsupported(String),
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Input::Unsupported("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Input::Unsupported("expected a type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Input::Unsupported(format!(
                "`{name}` is generic; the vendored serde derive supports only non-generic types"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Input::Unsupported(format!(
                "`{name}` has no braced body; tuple/unit structs are not supported"
            ))
        }
    };
    match kind.as_str() {
        "struct" => match parse_named_fields(body) {
            Ok(fields) => Input::Struct(name, fields),
            Err(e) => Input::Unsupported(e),
        },
        "enum" => match parse_unit_variants(body) {
            Ok(variants) => Input::UnitEnum(name, variants),
            Err(e) => Input::Unsupported(e),
        },
        other => Input::Unsupported(format!("cannot derive for `{other}` items")),
    }
}

/// Parse `vis? name: Type,` repeatedly, returning the field names. Types
/// are skipped token-by-token, tracking `<`/`>` depth so commas inside
/// generics do not terminate a field early.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err("expected a field name".into());
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "expected `:` after field `{}`",
                    fields.last().expect("field")
                ))
            }
        }
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Parse `Name,` repeatedly; any variant payload is an error.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err("expected a variant name".into());
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{}` carries data; the vendored serde derive supports only unit enums",
                    variants.last().expect("variant")
                ))
            }
            Some(other) => return Err(format!("unexpected token {other} in enum body")),
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid compile_error")
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_input(input) {
        Input::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str(::std::string::String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
        Input::Unsupported(msg) => return compile_error(&msg),
    };
    generated.parse().expect("generated impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_input(input) {
        Input::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let entries = content.as_map().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected map for \", {name:?})))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Unsupported(msg) => return compile_error(&msg),
    };
    generated.parse().expect("generated impl parses")
}
