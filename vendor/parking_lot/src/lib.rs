//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered rather than propagated — parking_lot has no
//! poisoning at all, so recovering matches its semantics.

#![allow(clippy::all, clippy::pedantic)]

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock (usable in `static` initializers).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_counts_across_threads() {
        static COUNTER: Mutex<u64> = Mutex::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        *COUNTER.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*COUNTER.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
        assert_eq!(lock.into_inner(), vec![1, 2, 3, 4]);
    }
}
